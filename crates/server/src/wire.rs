//! The HTTP wire format: JSON request bodies ↔ serving-layer types.
//!
//! Requests and responses reuse `anchors_serve::json` — the same codec
//! that gives model artifacts their bitwise `f64` round-trip — so a
//! client reading loadings off the wire sees exactly the numbers the
//! solver produced. Serialization goes through [`Json::try_write`]:
//! a non-finite number anywhere in a response is a typed error (and a
//! 500), never invalid JSON on the wire.
//!
//! A recommend/classify body looks like
//!
//! ```json
//! {"name": "CS 201", "labels": ["DS"], "tags": ["AL.BA.t1", "SDF.FDS.t2"]}
//! ```
//!
//! and a batch body wraps N of those: `{"queries": [...]}`.

use anchors_core::Recommendation;
use anchors_materials::{CourseLabel, SearchHit};
use anchors_serve::engine::{CourseQuery, QueryResponse};
use anchors_serve::json::{self, Json};
use std::fmt;

/// A request body the wire layer cannot accept (always a 400).
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The body is not a JSON document.
    Malformed {
        /// Parse failure detail.
        detail: String,
    },
    /// The document is JSON but not the expected shape.
    Shape {
        /// What was expected where.
        detail: String,
    },
    /// A course label string no [`CourseLabel`] matches.
    UnknownLabel {
        /// The offending label.
        label: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Malformed { detail } => write!(f, "request body is not JSON: {detail}"),
            WireError::Shape { detail } => write!(f, "unexpected request shape: {detail}"),
            WireError::UnknownLabel { label } => {
                write!(
                    f,
                    "unknown course label {label:?} (expected one of {})",
                    CourseLabel::ALL.map(|l| l.short()).join(", ")
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Parse a UTF-8 JSON body into a document.
pub fn parse_body(body: &[u8]) -> Result<Json, WireError> {
    let text = std::str::from_utf8(body).map_err(|_| WireError::Malformed {
        detail: "body is not UTF-8".into(),
    })?;
    json::parse(text).map_err(|e| WireError::Malformed {
        detail: e.to_string(),
    })
}

/// Decode one course query object: `{"name", "labels", "tags"}`.
/// `name` and `labels` are optional; `tags` is required.
pub fn course_query(doc: &Json) -> Result<CourseQuery, WireError> {
    let shape = |detail: &str| WireError::Shape {
        detail: detail.into(),
    };
    if !matches!(doc, Json::Obj(_)) {
        return Err(shape("query must be an object"));
    }
    let name = match doc.get("name") {
        None => String::new(),
        Some(v) => v
            .as_str()
            .ok_or_else(|| shape("\"name\" must be a string"))?
            .to_string(),
    };
    let labels = match doc.get("labels") {
        None => Vec::new(),
        Some(v) => v
            .as_arr()
            .ok_or_else(|| shape("\"labels\" must be an array"))?
            .iter()
            .map(|l| {
                let text = l.as_str().ok_or_else(|| shape("labels must be strings"))?;
                CourseLabel::parse(text).ok_or_else(|| WireError::UnknownLabel {
                    label: text.to_string(),
                })
            })
            .collect::<Result<Vec<CourseLabel>, WireError>>()?,
    };
    let tags = doc
        .get("tags")
        .ok_or_else(|| shape("missing \"tags\""))?
        .as_arr()
        .ok_or_else(|| shape("\"tags\" must be an array"))?
        .iter()
        .map(|t| t.as_str().map(str::to_string))
        .collect::<Option<Vec<String>>>()
        .ok_or_else(|| shape("tags must be strings"))?;
    Ok(CourseQuery::new(name, labels, tags))
}

/// Decode a `/v1/classify_text` body: `{"name"?, "labels"?, "text"}`.
/// Returns the course name, the parsed labels, and the raw text.
pub fn text_query(doc: &Json) -> Result<(String, Vec<CourseLabel>, String), WireError> {
    let shape = |detail: &str| WireError::Shape {
        detail: detail.into(),
    };
    if !matches!(doc, Json::Obj(_)) {
        return Err(shape("query must be an object"));
    }
    let name = match doc.get("name") {
        None => String::new(),
        Some(v) => v
            .as_str()
            .ok_or_else(|| shape("\"name\" must be a string"))?
            .to_string(),
    };
    let labels = match doc.get("labels") {
        None => Vec::new(),
        Some(v) => v
            .as_arr()
            .ok_or_else(|| shape("\"labels\" must be an array"))?
            .iter()
            .map(|l| {
                let text = l.as_str().ok_or_else(|| shape("labels must be strings"))?;
                CourseLabel::parse(text).ok_or_else(|| WireError::UnknownLabel {
                    label: text.to_string(),
                })
            })
            .collect::<Result<Vec<CourseLabel>, WireError>>()?,
    };
    let text = doc
        .get("text")
        .ok_or_else(|| shape("missing \"text\""))?
        .as_str()
        .ok_or_else(|| shape("\"text\" must be a string"))?
        .to_string();
    Ok((name, labels, text))
}

/// Decode a batch body: `{"queries": [<query>, ...]}`.
pub fn course_queries(doc: &Json) -> Result<Vec<CourseQuery>, WireError> {
    doc.get("queries")
        .ok_or_else(|| WireError::Shape {
            detail: "missing \"queries\"".into(),
        })?
        .as_arr()
        .ok_or_else(|| WireError::Shape {
            detail: "\"queries\" must be an array".into(),
        })?
        .iter()
        .map(course_query)
        .collect()
}

fn num_arr(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
}

fn str_arr<S: AsRef<str>>(values: &[S]) -> Json {
    Json::Arr(
        values
            .iter()
            .map(|v| Json::Str(v.as_ref().to_string()))
            .collect(),
    )
}

fn recommendation_json(rec: &Recommendation) -> Json {
    Json::Obj(vec![
        ("flavor".into(), Json::Str(rec.flavor.as_str().into())),
        ("title".into(), Json::Str(rec.title.clone())),
        ("rationale".into(), Json::Str(rec.rationale.clone())),
        ("activity".into(), Json::Str(rec.activity.clone())),
        ("pdc_topics".into(), str_arr(&rec.pdc_topics)),
        ("anchors".into(), str_arr(&rec.anchors)),
    ])
}

fn hit_json(hit: &SearchHit) -> Json {
    Json::Obj(vec![
        ("material".into(), Json::Num(hit.material.0 as f64)),
        ("score".into(), Json::Num(hit.score)),
        ("exact_matches".into(), Json::Num(hit.exact_matches as f64)),
    ])
}

/// Encode a full `/v1/recommend` response.
pub fn response_json(resp: &QueryResponse) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(resp.name.clone())),
        ("loadings".into(), num_arr(&resp.loadings)),
        ("mixture".into(), num_arr(&resp.mixture)),
        (
            "flavors".into(),
            Json::Arr(
                resp.flavors
                    .iter()
                    .map(|f| Json::Str(f.as_str().into()))
                    .collect(),
            ),
        ),
        (
            "recommendations".into(),
            Json::Arr(
                resp.recommendations
                    .iter()
                    .map(recommendation_json)
                    .collect(),
            ),
        ),
        (
            "nearest".into(),
            Json::Arr(resp.nearest.iter().map(hit_json).collect()),
        ),
    ])
}

/// Encode the composed `/v1/classify_text` response: which tags the
/// text model read out of the raw text (every tag's calibrated score,
/// descending, with its predicted flag), the text-model version that
/// said so, and the full downstream recommendation those predicted tags
/// folded into.
pub fn classify_text_json(
    classification: &anchors_text::TextClassification,
    text_model_version: u64,
    resp: &QueryResponse,
) -> Json {
    let tags = classification
        .scores
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("code".into(), Json::Str(s.code.clone())),
                ("score".into(), Json::Num(s.score)),
                ("predicted".into(), Json::Bool(s.predicted)),
            ])
        })
        .collect();
    let mut members = vec![
        ("name".into(), Json::Str(resp.name.clone())),
        (
            "text_model_version".into(),
            Json::Num(text_model_version as f64),
        ),
        ("tags".into(), Json::Arr(tags)),
    ];
    if let Json::Obj(rest) = response_json(resp) {
        members.extend(rest.into_iter().filter(|(key, _)| key != "name"));
    }
    Json::Obj(members)
}

/// Encode the lighter `/v1/classify` response: flavor signal only.
pub fn classify_json(resp: &QueryResponse) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(resp.name.clone())),
        ("mixture".into(), num_arr(&resp.mixture)),
        (
            "flavors".into(),
            Json::Arr(
                resp.flavors
                    .iter()
                    .map(|f| Json::Str(f.as_str().into()))
                    .collect(),
            ),
        ),
    ])
}

/// The uniform error body: `{"error": "<message>"}`.
pub fn error_body(message: &str) -> String {
    Json::Obj(vec![("error".into(), Json::Str(message.into()))])
        .try_write()
        .expect("error body is finite")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_a_full_query() {
        let doc = json::parse(
            r#"{"name":"CS 201","labels":["DS","cs1"],"tags":["AL.BA.t1","SDF.FDS.t2"]}"#,
        )
        .unwrap();
        let q = course_query(&doc).unwrap();
        assert_eq!(q.name, "CS 201");
        assert_eq!(
            q.labels,
            vec![CourseLabel::DataStructures, CourseLabel::Cs1]
        );
        assert_eq!(q.tag_codes, vec!["AL.BA.t1", "SDF.FDS.t2"]);
    }

    #[test]
    fn name_and_labels_are_optional() {
        let doc = json::parse(r#"{"tags":[]}"#).unwrap();
        let q = course_query(&doc).unwrap();
        assert_eq!(q.name, "");
        assert!(q.labels.is_empty());
    }

    #[test]
    fn rejects_wrong_shapes_with_typed_errors() {
        for (body, want) in [
            (r#"[1,2]"#, "query must be an object"),
            (r#"{"labels":[]}"#, "missing \"tags\""),
            (r#"{"tags":"AL"}"#, "\"tags\" must be an array"),
            (r#"{"tags":[1]}"#, "tags must be strings"),
            (
                r#"{"tags":[],"labels":"DS"}"#,
                "\"labels\" must be an array",
            ),
        ] {
            match course_query(&json::parse(body).unwrap()) {
                Err(WireError::Shape { detail }) => assert_eq!(detail, want, "{body}"),
                other => panic!("{body} -> {other:?}"),
            }
        }
        match course_query(&json::parse(r#"{"tags":[],"labels":["Quantum"]}"#).unwrap()) {
            Err(WireError::UnknownLabel { label }) => assert_eq!(label, "Quantum"),
            other => panic!("expected UnknownLabel, got {other:?}"),
        }
    }

    #[test]
    fn batch_bodies_decode_every_query() {
        let doc = json::parse(r#"{"queries":[{"tags":["AL.BA.t1"]},{"tags":[]}]}"#).unwrap();
        let qs = course_queries(&doc).unwrap();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[0].tag_codes, vec!["AL.BA.t1"]);
        assert!(course_queries(&json::parse(r#"{"queries":{}}"#).unwrap()).is_err());
    }

    #[test]
    fn text_query_decodes_and_rejects() {
        let doc =
            json::parse(r#"{"name":"CS 301","labels":["DS"],"text":"threads and locks"}"#).unwrap();
        let (name, labels, text) = text_query(&doc).unwrap();
        assert_eq!(name, "CS 301");
        assert_eq!(labels, vec![CourseLabel::DataStructures]);
        assert_eq!(text, "threads and locks");
        // name/labels optional, text required.
        let (name, labels, _) = text_query(&json::parse(r#"{"text":"x"}"#).unwrap()).unwrap();
        assert_eq!(name, "");
        assert!(labels.is_empty());
        for (body, want) in [
            (r#"{"name":"CS"}"#, "missing \"text\""),
            (r#"{"text":7}"#, "\"text\" must be a string"),
            (r#"[1]"#, "query must be an object"),
        ] {
            match text_query(&json::parse(body).unwrap()) {
                Err(WireError::Shape { detail }) => assert_eq!(detail, want, "{body}"),
                other => panic!("{body} -> {other:?}"),
            }
        }
    }

    #[test]
    fn error_bodies_are_json() {
        let body = error_body("boom \"quoted\"");
        let doc = json::parse(&body).unwrap();
        assert_eq!(doc.get("error").unwrap().as_str(), Some("boom \"quoted\""));
    }
}
