//! Direct solvers: Cholesky factorization and least squares, plus the
//! Lawson–Hanson non-negative least squares (NNLS) routine used by the
//! ANLS NNMF solver.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::ops::{dot, matmul_at_b, matvec};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix. Returns `None` if the matrix is not (numerically) SPD.
pub fn cholesky(a: &Matrix) -> Option<Matrix> {
    let n = a.rows();
    if n != a.cols() {
        return None;
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Some(l)
}

/// Solve `L y = b` (lower triangular, forward substitution).
///
/// # Panics
/// Panics on dimension mismatch or zero diagonal.
#[allow(clippy::needless_range_loop)] // triangular solves read like the math
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(n, l.cols());
    assert_eq!(n, b.len());
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l.get(i, k) * y[k];
        }
        let d = l.get(i, i);
        assert!(d != 0.0, "singular triangular system");
        y[i] = sum / d;
    }
    y
}

/// Solve `Lᵀ x = y` (backward substitution with the lower factor).
///
/// # Panics
/// Panics on dimension mismatch or zero diagonal.
#[allow(clippy::needless_range_loop)] // triangular solves read like the math
pub fn solve_lower_transpose(l: &Matrix, y: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(n, l.cols());
    assert_eq!(n, y.len());
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l.get(k, i) * x[k];
        }
        let d = l.get(i, i);
        assert!(d != 0.0, "singular triangular system");
        x[i] = sum / d;
    }
    x
}

/// Solve the SPD system `A x = b` via Cholesky. Returns `None` if `A` is
/// not SPD.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let l = cholesky(a)?;
    let y = solve_lower(&l, b);
    Some(solve_lower_transpose(&l, &y))
}

/// Unconstrained linear least squares `min ‖A x − b‖₂` via the normal
/// equations (adequate for the small, well-conditioned systems in this
/// project). Returns `None` when `AᵀA` is singular.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.rows(), b.len(), "lstsq dimension mismatch");
    let ata = matmul_at_b(a, a);
    // Regularize the diagonal a hair for numerical safety.
    let atb: Vec<f64> = (0..a.cols())
        .map(|j| (0..a.rows()).map(|i| a.get(i, j) * b[i]).sum())
        .collect();
    solve_spd(&ata, &atb)
}

/// Lawson–Hanson non-negative least squares: `min ‖A x − b‖₂ s.t. x ≥ 0`.
///
/// Classic active-set method; terminates in finitely many iterations for
/// the modest column counts used here (NNMF rank k ≤ ~20).
///
/// # Panics
/// Panics if `a.rows() != b.len()`.
pub fn nnls(a: &Matrix, b: &[f64], tol: f64) -> Vec<f64> {
    let (m, n) = a.shape();
    assert_eq!(m, b.len(), "nnls dimension mismatch");
    let mut x = vec![0.0; n];
    let mut passive = vec![false; n];
    // w = Aᵀ(b − Ax), the negative gradient.
    let mut resid: Vec<f64> = b.to_vec();
    let max_outer = 3 * n.max(1);
    for _ in 0..max_outer {
        // Gradient over active (zero) set.
        let w: Vec<f64> = (0..n)
            .map(|j| (0..m).map(|i| a.get(i, j) * resid[i]).sum())
            .collect();
        // Pick the most promising active variable.
        let candidate = (0..n)
            .filter(|&j| !passive[j])
            .max_by(|&p, &q| w[p].partial_cmp(&w[q]).expect("finite gradient"));
        match candidate {
            Some(j) if w[j] > tol => passive[j] = true,
            _ => break, // KKT satisfied
        }
        // Inner loop: solve the passive-set LS, trimming negatives.
        loop {
            let pass_idx: Vec<usize> = (0..n).filter(|&j| passive[j]).collect();
            if pass_idx.is_empty() {
                break;
            }
            let ap = a.select_cols(&pass_idx);
            let z = match lstsq(&ap, b) {
                Some(z) => z,
                None => {
                    // Degenerate subproblem: drop the most recent variable.
                    if let Some(&last) = pass_idx.last() {
                        passive[last] = false;
                    }
                    break;
                }
            };
            if z.iter().all(|&v| v > tol) {
                for (k, &j) in pass_idx.iter().enumerate() {
                    x[j] = z[k];
                }
                break;
            }
            // Step toward z until the first variable hits zero.
            let mut alpha = f64::INFINITY;
            for (k, &j) in pass_idx.iter().enumerate() {
                if z[k] <= tol {
                    let denom = x[j] - z[k];
                    if denom > 0.0 {
                        alpha = alpha.min(x[j] / denom);
                    }
                }
            }
            if !alpha.is_finite() {
                alpha = 0.0;
            }
            for (k, &j) in pass_idx.iter().enumerate() {
                x[j] += alpha * (z[k] - x[j]);
                if x[j] <= tol {
                    x[j] = 0.0;
                    passive[j] = false;
                }
            }
        }
        // Refresh the residual.
        let ax = matvec(a, &x);
        for i in 0..m {
            resid[i] = b[i] - ax[i];
        }
    }
    x
}

/// Checked Cholesky: distinguishes the shape, finiteness, and SPD failure
/// modes that [`cholesky`]'s `Option` return collapses into `None`.
pub fn try_cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare {
            op: "cholesky",
            shape: a.shape(),
        });
    }
    if let Some((row, col, value)) = a.find_non_finite() {
        return Err(LinalgError::NotFinite {
            op: "cholesky",
            row,
            col,
            value,
        });
    }
    cholesky(a).ok_or(LinalgError::NotSpd { op: "cholesky" })
}

/// Checked SPD solve with typed diagnostics; see [`solve_spd`].
pub fn try_solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if a.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_spd",
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    let l = try_cholesky(a)?;
    let y = solve_lower(&l, b);
    Ok(solve_lower_transpose(&l, &y))
}

/// Checked least squares with typed diagnostics; see [`lstsq`].
pub fn try_lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if a.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "lstsq",
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    if let Some((row, col, value)) = a.find_non_finite() {
        return Err(LinalgError::NotFinite {
            op: "lstsq",
            row,
            col,
            value,
        });
    }
    if let Some(idx) = b.iter().position(|v| !v.is_finite()) {
        return Err(LinalgError::NotFinite {
            op: "lstsq",
            row: idx,
            col: 0,
            value: b[idx],
        });
    }
    lstsq(a, b).ok_or(LinalgError::Singular { op: "lstsq" })
}

/// Checked NNLS: validates shapes and finiteness before delegating to the
/// panicking [`nnls`] routine.
pub fn try_nnls(a: &Matrix, b: &[f64], tol: f64) -> Result<Vec<f64>, LinalgError> {
    if a.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "nnls",
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    if let Some((row, col, value)) = a.find_non_finite() {
        return Err(LinalgError::NotFinite {
            op: "nnls",
            row,
            col,
            value,
        });
    }
    if let Some(idx) = b.iter().position(|v| !v.is_finite()) {
        return Err(LinalgError::NotFinite {
            op: "nnls",
            row: idx,
            col: 0,
            value: b[idx],
        });
    }
    Ok(nnls(a, b, tol))
}

/// Residual norm of an NNLS/LS solution (test helper; exact definition
/// `‖A x − b‖₂`).
pub fn residual_norm(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = matvec(a, x);
    let diff: Vec<f64> = ax.iter().zip(b).map(|(p, q)| p - q).collect();
    dot(&diff, &diff).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd() -> Matrix {
        // A = Mᵀ M + I is SPD.
        let m = Matrix::from_fn(4, 4, |i, j| ((i * 3 + j) % 5) as f64);
        let mut a = crate::ops::gram(&m);
        for i in 0..4 {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd();
        let l = cholesky(&a).expect("SPD");
        let rec = crate::ops::matmul_a_bt(&l, &l);
        assert!(rec.approx_eq(&a, 1e-9));
        // Lower triangular.
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_eq!(l.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // indefinite
        assert!(cholesky(&a).is_none());
        assert!(cholesky(&Matrix::zeros(2, 3)).is_none(), "non-square");
    }

    #[test]
    fn spd_solve_roundtrip() {
        let a = spd();
        let x_true = [1.0, -2.0, 3.0, 0.5];
        let b = matvec(&a, &x_true);
        let x = solve_spd(&a, &b).expect("solvable");
        for (xs, xt) in x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-8);
        }
    }

    #[test]
    fn lstsq_recovers_exact_solution() {
        let a = Matrix::from_fn(6, 3, |i, j| {
            ((i + 1) * (j + 1)) as f64 + ((i * j) % 3) as f64
        });
        let x_true = [2.0, -1.0, 0.5];
        let b = matvec(&a, &x_true);
        let x = lstsq(&a, &b).expect("full rank");
        for (xs, xt) in x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-7);
        }
    }

    #[test]
    fn nnls_matches_ls_when_solution_positive() {
        let a = Matrix::from_fn(5, 2, |i, j| (i + j + 1) as f64);
        let x_true = [1.5, 2.0];
        let b = matvec(&a, &x_true);
        let x = nnls(&a, &b, 1e-12);
        for (xs, xt) in x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-6, "{x:?}");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn nnls_clamps_negative_components() {
        // LS solution of this system has a negative component; NNLS must
        // return x ≥ 0 with no worse residual than the zero vector.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.2], vec![1.0, 0.8]]);
        let b = [1.0, 0.0, 2.0];
        let x = nnls(&a, &b, 1e-12);
        assert!(x.iter().all(|&v| v >= 0.0), "{x:?}");
        let r = residual_norm(&a, &x, &b);
        let r0 = residual_norm(&a, &[0.0, 0.0], &b);
        assert!(r <= r0 + 1e-9);
        // KKT: gradient over zero coordinates must be ≤ 0.
        let ax = matvec(&a, &x);
        let resid: Vec<f64> = b.iter().zip(&ax).map(|(p, q)| p - q).collect();
        for j in 0..2 {
            let g: f64 = (0..3).map(|i| a.get(i, j) * resid[i]).sum();
            if x[j] == 0.0 {
                assert!(g <= 1e-6, "KKT violated at {j}: {g}");
            } else {
                assert!(g.abs() <= 1e-6, "stationarity violated at {j}: {g}");
            }
        }
    }

    #[test]
    fn try_solvers_classify_failures() {
        use crate::error::LinalgError;
        // Non-square → NotSquare, not a generic None.
        assert!(matches!(
            try_cholesky(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { op: "cholesky", .. })
        ));
        // Indefinite → NotSpd.
        let indef = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(matches!(
            try_cholesky(&indef),
            Err(LinalgError::NotSpd { op: "cholesky" })
        ));
        // NaN entry → NotFinite with its coordinates.
        let mut nan = spd();
        nan.set(1, 2, f64::NAN);
        match try_cholesky(&nan) {
            Err(LinalgError::NotFinite { row, col, .. }) => {
                assert_eq!((row, col), (1, 2));
            }
            other => panic!("expected NotFinite, got {other:?}"),
        }
        // Mismatched rhs → ShapeMismatch.
        assert!(matches!(
            try_solve_spd(&spd(), &[1.0, 2.0]),
            Err(LinalgError::ShapeMismatch {
                op: "solve_spd",
                ..
            })
        ));
        assert!(matches!(
            try_nnls(&Matrix::zeros(3, 2), &[1.0], 1e-12),
            Err(LinalgError::ShapeMismatch { op: "nnls", .. })
        ));
        // NaN rhs → NotFinite.
        assert!(matches!(
            try_lstsq(
                &Matrix::from_fn(3, 2, |i, j| (i + j + 1) as f64),
                &[1.0, f64::NAN, 0.0]
            ),
            Err(LinalgError::NotFinite { op: "lstsq", .. })
        ));
        // Happy paths agree with the Option-returning routines.
        let a = spd();
        let b = matvec(&a, &[1.0, -2.0, 3.0, 0.5]);
        assert_eq!(try_solve_spd(&a, &b).unwrap(), solve_spd(&a, &b).unwrap());
    }

    #[test]
    fn nnls_zero_rhs_gives_zero() {
        let a = Matrix::from_fn(4, 3, |i, j| (i + j) as f64 + 1.0);
        let x = nnls(&a, &[0.0; 4], 1e-12);
        assert!(x.iter().all(|&v| v == 0.0));
    }
}
