//! Direct solvers: Cholesky factorization and least squares, plus the
//! Lawson–Hanson non-negative least squares (NNLS) routine used by the
//! ANLS NNMF solver.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::ops::{dot, matmul_at_b, matvec};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix. Returns `None` if the matrix is not (numerically) SPD.
pub fn cholesky(a: &Matrix) -> Option<Matrix> {
    let n = a.rows();
    if n != a.cols() {
        return None;
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Some(l)
}

/// Solve `L y = b` (lower triangular, forward substitution).
///
/// # Panics
/// Panics on dimension mismatch or zero diagonal.
#[allow(clippy::needless_range_loop)] // triangular solves read like the math
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(n, l.cols());
    assert_eq!(n, b.len());
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l.get(i, k) * y[k];
        }
        let d = l.get(i, i);
        assert!(d != 0.0, "singular triangular system");
        y[i] = sum / d;
    }
    y
}

/// Solve `Lᵀ x = y` (backward substitution with the lower factor).
///
/// # Panics
/// Panics on dimension mismatch or zero diagonal.
#[allow(clippy::needless_range_loop)] // triangular solves read like the math
pub fn solve_lower_transpose(l: &Matrix, y: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(n, l.cols());
    assert_eq!(n, y.len());
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l.get(k, i) * x[k];
        }
        let d = l.get(i, i);
        assert!(d != 0.0, "singular triangular system");
        x[i] = sum / d;
    }
    x
}

/// Solve the SPD system `A x = b` via Cholesky. Returns `None` if `A` is
/// not SPD.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let l = cholesky(a)?;
    let y = solve_lower(&l, b);
    Some(solve_lower_transpose(&l, &y))
}

/// Unconstrained linear least squares `min ‖A x − b‖₂` via the normal
/// equations (adequate for the small, well-conditioned systems in this
/// project). Returns `None` when `AᵀA` is singular.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.rows(), b.len(), "lstsq dimension mismatch");
    let ata = matmul_at_b(a, a);
    // Regularize the diagonal a hair for numerical safety.
    let atb: Vec<f64> = (0..a.cols())
        .map(|j| (0..a.rows()).map(|i| a.get(i, j) * b[i]).sum())
        .collect();
    solve_spd(&ata, &atb)
}

/// Lawson–Hanson non-negative least squares: `min ‖A x − b‖₂ s.t. x ≥ 0`.
///
/// Classic active-set method; terminates in finitely many iterations for
/// the modest column counts used here (NNMF rank k ≤ ~20).
///
/// # Panics
/// Panics if `a.rows() != b.len()`.
pub fn nnls(a: &Matrix, b: &[f64], tol: f64) -> Vec<f64> {
    let (m, n) = a.shape();
    assert_eq!(m, b.len(), "nnls dimension mismatch");
    let mut x = vec![0.0; n];
    let mut passive = vec![false; n];
    // w = Aᵀ(b − Ax), the negative gradient.
    let mut resid: Vec<f64> = b.to_vec();
    let max_outer = 3 * n.max(1);
    for _ in 0..max_outer {
        // Gradient over active (zero) set.
        let w: Vec<f64> = (0..n)
            .map(|j| (0..m).map(|i| a.get(i, j) * resid[i]).sum())
            .collect();
        // Pick the most promising active variable.
        let candidate = (0..n)
            .filter(|&j| !passive[j])
            .max_by(|&p, &q| w[p].partial_cmp(&w[q]).expect("finite gradient"));
        match candidate {
            Some(j) if w[j] > tol => passive[j] = true,
            _ => break, // KKT satisfied
        }
        // Inner loop: solve the passive-set LS, trimming negatives.
        loop {
            let pass_idx: Vec<usize> = (0..n).filter(|&j| passive[j]).collect();
            if pass_idx.is_empty() {
                break;
            }
            let ap = a.select_cols(&pass_idx);
            let z = match lstsq(&ap, b) {
                Some(z) => z,
                None => {
                    // Degenerate subproblem: drop the most recent variable.
                    if let Some(&last) = pass_idx.last() {
                        passive[last] = false;
                    }
                    break;
                }
            };
            if z.iter().all(|&v| v > tol) {
                for (k, &j) in pass_idx.iter().enumerate() {
                    x[j] = z[k];
                }
                break;
            }
            // Step toward z until the first variable hits zero.
            let mut alpha = f64::INFINITY;
            for (k, &j) in pass_idx.iter().enumerate() {
                if z[k] <= tol {
                    let denom = x[j] - z[k];
                    if denom > 0.0 {
                        alpha = alpha.min(x[j] / denom);
                    }
                }
            }
            if !alpha.is_finite() {
                alpha = 0.0;
            }
            for (k, &j) in pass_idx.iter().enumerate() {
                x[j] += alpha * (z[k] - x[j]);
                if x[j] <= tol {
                    x[j] = 0.0;
                    passive[j] = false;
                }
            }
        }
        // Refresh the residual.
        let ax = matvec(a, &x);
        for i in 0..m {
            resid[i] = b[i] - ax[i];
        }
    }
    x
}

/// Checked Cholesky: distinguishes the shape, finiteness, and SPD failure
/// modes that [`cholesky`]'s `Option` return collapses into `None`.
pub fn try_cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare {
            op: "cholesky",
            shape: a.shape(),
        });
    }
    if let Some((row, col, value)) = a.find_non_finite() {
        return Err(LinalgError::NotFinite {
            op: "cholesky",
            row,
            col,
            value,
        });
    }
    cholesky(a).ok_or(LinalgError::NotSpd { op: "cholesky" })
}

/// Checked SPD solve with typed diagnostics; see [`solve_spd`].
pub fn try_solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if a.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_spd",
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    let l = try_cholesky(a)?;
    let y = solve_lower(&l, b);
    Ok(solve_lower_transpose(&l, &y))
}

/// Checked least squares with typed diagnostics; see [`lstsq`].
pub fn try_lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if a.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "lstsq",
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    if let Some((row, col, value)) = a.find_non_finite() {
        return Err(LinalgError::NotFinite {
            op: "lstsq",
            row,
            col,
            value,
        });
    }
    if let Some(idx) = b.iter().position(|v| !v.is_finite()) {
        return Err(LinalgError::NotFinite {
            op: "lstsq",
            row: idx,
            col: 0,
            value: b[idx],
        });
    }
    lstsq(a, b).ok_or(LinalgError::Singular { op: "lstsq" })
}

/// Checked NNLS: validates shapes and finiteness before delegating to the
/// panicking [`nnls`] routine.
pub fn try_nnls(a: &Matrix, b: &[f64], tol: f64) -> Result<Vec<f64>, LinalgError> {
    if a.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "nnls",
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    if let Some((row, col, value)) = a.find_non_finite() {
        return Err(LinalgError::NotFinite {
            op: "nnls",
            row,
            col,
            value,
        });
    }
    if let Some(idx) = b.iter().position(|v| !v.is_finite()) {
        return Err(LinalgError::NotFinite {
            op: "nnls",
            row: idx,
            col: 0,
            value: b[idx],
        });
    }
    Ok(nnls(a, b, tol))
}

/// Batched non-negative least squares over a matrix of right-hand sides.
///
/// Solves, for every row `bᵢ` of `b`, the problem
/// `min ‖A xᵢ − bᵢ‖₂  s.t.  xᵢ ≥ 0`, and returns the solutions stacked as
/// the rows of a `b.rows() × a.cols()` matrix. This is the fold-in
/// projection used by `anchors-serve`: with `A = Hᵀ` each row of `b` is an
/// unseen course's tag vector and each row of the result is its loading
/// onto the frozen factor basis.
///
/// The batch is generic over [`MatKernels`], so dense and CSR query
/// batches take the same path: the Gram matrix `G = AᵀA` is formed once,
/// the cross-products `C = B·A` for the whole batch come from one
/// matrix-level `a_bt_into` product, and the per-row active-set iteration
/// is driven entirely by `G` and the row of `C`. Because `G`'s passive
/// submatrices and `C`'s rows are bitwise identical to the normal
/// equations [`nnls`] forms internally, the per-row subproblem solves are
/// bitwise identical to the single-vector routine; only the gradient
/// bookkeeping differs (Gram identity vs. explicit residual), which
/// agrees to roundoff.
pub fn try_nnls_multi<B: crate::kernels::MatKernels>(
    a: &Matrix,
    b: &B,
    tol: f64,
) -> Result<Matrix, LinalgError> {
    let (m, n) = a.shape();
    let (q, bm) = b.shape();
    if bm != m {
        return Err(LinalgError::ShapeMismatch {
            op: "nnls_multi",
            left: (m, n),
            right: (q, bm),
        });
    }
    if let Some((row, col, value)) = a.find_non_finite() {
        return Err(LinalgError::NotFinite {
            op: "nnls_multi",
            row,
            col,
            value,
        });
    }
    if let Some((row, col, value)) = b.find_non_finite() {
        return Err(LinalgError::NotFinite {
            op: "nnls_multi",
            row,
            col,
            value,
        });
    }
    let mut x = Matrix::zeros(q, n);
    if q == 0 || n == 0 {
        return Ok(x);
    }
    // One Gram matrix and one matrix-level cross-product for the whole
    // batch; the storage-generic kernel keeps dense and CSR batches on the
    // same code path (and bitwise identical for exact-zero sparsification).
    let gram = matmul_at_b(a, a);
    let at = a.transpose();
    let mut cross = Matrix::zeros(q, n);
    b.a_bt_into(&at, &mut cross);
    let mut passive = vec![false; n];
    for i in 0..q {
        nnls_gram(&gram, cross.row(i), tol, x.row_mut(i), &mut passive);
    }
    Ok(x)
}

/// Single-row active-set NNLS driven by the Gram matrix `G = AᵀA` and the
/// cross-product `c = Aᵀb` (Bro–de Jong formulation of Lawson–Hanson).
/// Writes the solution into `x`; `passive` is caller-provided scratch.
fn nnls_gram(g: &Matrix, c: &[f64], tol: f64, x: &mut [f64], passive: &mut [bool]) {
    let n = g.rows();
    x.fill(0.0);
    passive.fill(false);
    let max_outer = 3 * n.max(1);
    for _ in 0..max_outer {
        // Negative gradient via the Gram identity: w = c − G x.
        let w: Vec<f64> = (0..n)
            .map(|j| c[j] - (0..n).map(|t| g.get(j, t) * x[t]).sum::<f64>())
            .collect();
        let candidate = (0..n)
            .filter(|&j| !passive[j])
            .max_by(|&p, &q| w[p].partial_cmp(&w[q]).expect("finite gradient"));
        match candidate {
            Some(j) if w[j] > tol => passive[j] = true,
            _ => break, // KKT satisfied
        }
        // Inner loop: solve the passive-set normal equations, trimming
        // negatives — the subproblems are the same `G_PP z = c_P` systems
        // the single-vector routine forms through `lstsq`.
        loop {
            let pass_idx: Vec<usize> = (0..n).filter(|&j| passive[j]).collect();
            if pass_idx.is_empty() {
                break;
            }
            let gpp = Matrix::from_fn(pass_idx.len(), pass_idx.len(), |r, s| {
                g.get(pass_idx[r], pass_idx[s])
            });
            let cp: Vec<f64> = pass_idx.iter().map(|&j| c[j]).collect();
            let z = match solve_spd(&gpp, &cp) {
                Some(z) => z,
                None => {
                    // Degenerate subproblem: drop the most recent variable.
                    if let Some(&last) = pass_idx.last() {
                        passive[last] = false;
                    }
                    break;
                }
            };
            if z.iter().all(|&v| v > tol) {
                for (k, &j) in pass_idx.iter().enumerate() {
                    x[j] = z[k];
                }
                break;
            }
            // Step toward z until the first variable hits zero.
            let mut alpha = f64::INFINITY;
            for (k, &j) in pass_idx.iter().enumerate() {
                if z[k] <= tol {
                    let denom = x[j] - z[k];
                    if denom > 0.0 {
                        alpha = alpha.min(x[j] / denom);
                    }
                }
            }
            if !alpha.is_finite() {
                alpha = 0.0;
            }
            for (k, &j) in pass_idx.iter().enumerate() {
                x[j] += alpha * (z[k] - x[j]);
                if x[j] <= tol {
                    x[j] = 0.0;
                    passive[j] = false;
                }
            }
        }
    }
}

/// Cholesky factorization of a row-major `n × n` SPD matrix in `f32`,
/// returning the lower factor. `None` when not (numerically) SPD.
///
/// Part of the reduced-precision serving path: the serving Gram matrices
/// are tiny (`k × k`, k ≤ ~20) and well-conditioned, so single precision
/// keeps the active-set iteration stable while halving the working-set
/// bandwidth of the fold-in hot loop.
fn cholesky_f32(a: &[f32], n: usize) -> Option<Vec<f32>> {
    debug_assert_eq!(a.len(), n * n);
    let mut l = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Some(l)
}

/// Solve the `f32` SPD system `A x = b` via Cholesky plus forward/backward
/// substitution. `None` when `A` is not SPD.
#[allow(clippy::needless_range_loop)] // triangular solves read like the math
fn solve_spd_f32(a: &[f32], n: usize, b: &[f32]) -> Option<Vec<f32>> {
    let l = cholesky_f32(a, n)?;
    let mut y = vec![0.0f32; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    let mut x = vec![0.0f32; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    Some(x)
}

/// Single-row active-set NNLS in `f32`, driven by the row-major Gram matrix
/// `g` (`n × n`, `G = AᵀA`) and the cross-product `c = Aᵀb` — the
/// single-precision mirror of the private `f64` Gram solver behind
/// [`try_nnls_multi`], used by the opt-in reduced-precision fold-in path in
/// `anchors-serve`. Writes the solution into `x`; `passive` is
/// caller-provided scratch.
///
/// The algorithm is structurally identical to the `f64` routine; only the
/// scalar type differs, so the solution error versus the `f64` path is
/// governed by `κ(G) · ε_f32` (see DESIGN.md §15 for the bound the serving
/// layer asserts).
pub fn nnls_gram_f32(
    g: &[f32],
    n: usize,
    c: &[f32],
    tol: f32,
    x: &mut [f32],
    passive: &mut [bool],
) {
    debug_assert_eq!(g.len(), n * n);
    debug_assert_eq!(c.len(), n);
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(passive.len(), n);
    x.fill(0.0);
    passive.fill(false);
    let max_outer = 3 * n.max(1);
    for _ in 0..max_outer {
        // Negative gradient via the Gram identity: w = c − G x.
        let w: Vec<f32> = (0..n)
            .map(|j| c[j] - (0..n).map(|t| g[j * n + t] * x[t]).sum::<f32>())
            .collect();
        let candidate = (0..n)
            .filter(|&j| !passive[j])
            .max_by(|&p, &q| w[p].partial_cmp(&w[q]).expect("finite gradient"));
        match candidate {
            Some(j) if w[j] > tol => passive[j] = true,
            _ => break, // KKT satisfied
        }
        // Inner loop: solve the passive-set normal equations, trimming
        // negatives.
        loop {
            let pass_idx: Vec<usize> = (0..n).filter(|&j| passive[j]).collect();
            if pass_idx.is_empty() {
                break;
            }
            let p = pass_idx.len();
            let mut gpp = vec![0.0f32; p * p];
            for (r, &jr) in pass_idx.iter().enumerate() {
                for (s, &js) in pass_idx.iter().enumerate() {
                    gpp[r * p + s] = g[jr * n + js];
                }
            }
            let cp: Vec<f32> = pass_idx.iter().map(|&j| c[j]).collect();
            let z = match solve_spd_f32(&gpp, p, &cp) {
                Some(z) => z,
                None => {
                    // Degenerate subproblem: drop the most recent variable.
                    if let Some(&last) = pass_idx.last() {
                        passive[last] = false;
                    }
                    break;
                }
            };
            if z.iter().all(|&v| v > tol) {
                for (k, &j) in pass_idx.iter().enumerate() {
                    x[j] = z[k];
                }
                break;
            }
            // Step toward z until the first variable hits zero.
            let mut alpha = f32::INFINITY;
            for (k, &j) in pass_idx.iter().enumerate() {
                if z[k] <= tol {
                    let denom = x[j] - z[k];
                    if denom > 0.0 {
                        alpha = alpha.min(x[j] / denom);
                    }
                }
            }
            if !alpha.is_finite() {
                alpha = 0.0;
            }
            for (k, &j) in pass_idx.iter().enumerate() {
                x[j] += alpha * (z[k] - x[j]);
                if x[j] <= tol {
                    x[j] = 0.0;
                    passive[j] = false;
                }
            }
        }
    }
}

/// Residual norm of an NNLS/LS solution (test helper; exact definition
/// `‖A x − b‖₂`).
pub fn residual_norm(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = matvec(a, x);
    let diff: Vec<f64> = ax.iter().zip(b).map(|(p, q)| p - q).collect();
    dot(&diff, &diff).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd() -> Matrix {
        // A = Mᵀ M + I is SPD.
        let m = Matrix::from_fn(4, 4, |i, j| ((i * 3 + j) % 5) as f64);
        let mut a = crate::ops::gram(&m);
        for i in 0..4 {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd();
        let l = cholesky(&a).expect("SPD");
        let rec = crate::ops::matmul_a_bt(&l, &l);
        assert!(rec.approx_eq(&a, 1e-9));
        // Lower triangular.
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_eq!(l.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // indefinite
        assert!(cholesky(&a).is_none());
        assert!(cholesky(&Matrix::zeros(2, 3)).is_none(), "non-square");
    }

    #[test]
    fn spd_solve_roundtrip() {
        let a = spd();
        let x_true = [1.0, -2.0, 3.0, 0.5];
        let b = matvec(&a, &x_true);
        let x = solve_spd(&a, &b).expect("solvable");
        for (xs, xt) in x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-8);
        }
    }

    #[test]
    fn lstsq_recovers_exact_solution() {
        let a = Matrix::from_fn(6, 3, |i, j| {
            ((i + 1) * (j + 1)) as f64 + ((i * j) % 3) as f64
        });
        let x_true = [2.0, -1.0, 0.5];
        let b = matvec(&a, &x_true);
        let x = lstsq(&a, &b).expect("full rank");
        for (xs, xt) in x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-7);
        }
    }

    #[test]
    fn nnls_matches_ls_when_solution_positive() {
        let a = Matrix::from_fn(5, 2, |i, j| (i + j + 1) as f64);
        let x_true = [1.5, 2.0];
        let b = matvec(&a, &x_true);
        let x = nnls(&a, &b, 1e-12);
        for (xs, xt) in x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-6, "{x:?}");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn nnls_clamps_negative_components() {
        // LS solution of this system has a negative component; NNLS must
        // return x ≥ 0 with no worse residual than the zero vector.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.2], vec![1.0, 0.8]]);
        let b = [1.0, 0.0, 2.0];
        let x = nnls(&a, &b, 1e-12);
        assert!(x.iter().all(|&v| v >= 0.0), "{x:?}");
        let r = residual_norm(&a, &x, &b);
        let r0 = residual_norm(&a, &[0.0, 0.0], &b);
        assert!(r <= r0 + 1e-9);
        // KKT: gradient over zero coordinates must be ≤ 0.
        let ax = matvec(&a, &x);
        let resid: Vec<f64> = b.iter().zip(&ax).map(|(p, q)| p - q).collect();
        for j in 0..2 {
            let g: f64 = (0..3).map(|i| a.get(i, j) * resid[i]).sum();
            if x[j] == 0.0 {
                assert!(g <= 1e-6, "KKT violated at {j}: {g}");
            } else {
                assert!(g.abs() <= 1e-6, "stationarity violated at {j}: {g}");
            }
        }
    }

    #[test]
    fn try_solvers_classify_failures() {
        use crate::error::LinalgError;
        // Non-square → NotSquare, not a generic None.
        assert!(matches!(
            try_cholesky(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { op: "cholesky", .. })
        ));
        // Indefinite → NotSpd.
        let indef = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(matches!(
            try_cholesky(&indef),
            Err(LinalgError::NotSpd { op: "cholesky" })
        ));
        // NaN entry → NotFinite with its coordinates.
        let mut nan = spd();
        nan.set(1, 2, f64::NAN);
        match try_cholesky(&nan) {
            Err(LinalgError::NotFinite { row, col, .. }) => {
                assert_eq!((row, col), (1, 2));
            }
            other => panic!("expected NotFinite, got {other:?}"),
        }
        // Mismatched rhs → ShapeMismatch.
        assert!(matches!(
            try_solve_spd(&spd(), &[1.0, 2.0]),
            Err(LinalgError::ShapeMismatch {
                op: "solve_spd",
                ..
            })
        ));
        assert!(matches!(
            try_nnls(&Matrix::zeros(3, 2), &[1.0], 1e-12),
            Err(LinalgError::ShapeMismatch { op: "nnls", .. })
        ));
        // NaN rhs → NotFinite.
        assert!(matches!(
            try_lstsq(
                &Matrix::from_fn(3, 2, |i, j| (i + j + 1) as f64),
                &[1.0, f64::NAN, 0.0]
            ),
            Err(LinalgError::NotFinite { op: "lstsq", .. })
        ));
        // Happy paths agree with the Option-returning routines.
        let a = spd();
        let b = matvec(&a, &[1.0, -2.0, 3.0, 0.5]);
        assert_eq!(try_solve_spd(&a, &b).unwrap(), solve_spd(&a, &b).unwrap());
    }

    #[test]
    fn nnls_multi_matches_per_vector_nnls() {
        // Well-conditioned random-ish problem: batched rows must agree
        // with the single-vector routine to roundoff.
        let a = Matrix::from_fn(8, 4, |i, j| (((i * 5 + j * 3) % 7) as f64) * 0.3 + 0.1);
        let b = Matrix::from_fn(6, 8, |i, j| (((i * 7 + j * 2) % 9) as f64) * 0.4);
        let x = try_nnls_multi(&a, &b, 1e-12).expect("valid problem");
        assert_eq!(x.shape(), (6, 4));
        for i in 0..6 {
            let xi = nnls(&a, b.row(i), 1e-12);
            for (batched, single) in x.row(i).iter().zip(&xi) {
                assert!(
                    (batched - single).abs() < 1e-9,
                    "row {i}: {batched} vs {single}"
                );
            }
            assert!(x.row(i).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn nnls_multi_dense_and_csr_batches_bitwise_identical() {
        let a = Matrix::from_fn(8, 3, |i, j| (((i + 2 * j) % 5) as f64) * 0.5 + 0.2);
        // Sparse-ish batch so CSR actually skips entries.
        let dense = Matrix::from_fn(5, 8, |i, j| {
            if (i + j) % 3 == 0 {
                ((i * 8 + j) % 6) as f64 * 0.7
            } else {
                0.0
            }
        });
        let csr = crate::sparse::CsrMatrix::from_dense(&dense);
        let xd = try_nnls_multi(&a, &dense, 1e-12).expect("dense batch");
        let xs = try_nnls_multi(&a, &csr, 1e-12).expect("csr batch");
        assert_eq!(xd, xs, "dense and CSR query batches must match bitwise");
    }

    #[test]
    fn nnls_multi_classifies_failures() {
        use crate::error::LinalgError;
        let a = Matrix::from_fn(4, 2, |i, j| (i + j + 1) as f64);
        let bad_shape = Matrix::zeros(3, 5);
        assert!(matches!(
            try_nnls_multi(&a, &bad_shape, 1e-12),
            Err(LinalgError::ShapeMismatch {
                op: "nnls_multi",
                ..
            })
        ));
        let mut nan_b = Matrix::zeros(2, 4);
        nan_b.set(1, 2, f64::NAN);
        match try_nnls_multi(&a, &nan_b, 1e-12) {
            Err(LinalgError::NotFinite { row, col, .. }) => assert_eq!((row, col), (1, 2)),
            other => panic!("expected NotFinite, got {other:?}"),
        }
        // Empty batch / rank-0 basis degrade to empty results, not errors.
        let empty = Matrix::zeros(0, 4);
        assert_eq!(try_nnls_multi(&a, &empty, 1e-12).unwrap().shape(), (0, 2));
    }

    #[test]
    fn nnls_gram_f32_tracks_f64_solution() {
        // Same well-conditioned batch as the multi test: the f32 Gram
        // solver must agree with the f64 path to single-precision accuracy.
        let a = Matrix::from_fn(8, 4, |i, j| (((i * 5 + j * 3) % 7) as f64) * 0.3 + 0.1);
        let b = Matrix::from_fn(6, 8, |i, j| (((i * 7 + j * 2) % 9) as f64) * 0.4);
        let n = a.cols();
        let gram = matmul_at_b(&a, &a);
        let g32: Vec<f32> = gram.as_slice().iter().map(|&v| v as f32).collect();
        let mut x32 = vec![0.0f32; n];
        let mut passive = vec![false; n];
        for i in 0..b.rows() {
            let c: Vec<f64> = (0..n).map(|j| dot(b.row(i), a.col(j).as_slice())).collect();
            let c32: Vec<f32> = c.iter().map(|&v| v as f32).collect();
            nnls_gram_f32(&g32, n, &c32, 1e-6, &mut x32, &mut passive);
            let x64 = nnls(&a, b.row(i), 1e-12);
            let scale = x64.iter().cloned().fold(1.0f64, f64::max);
            for (xs, xd) in x32.iter().zip(&x64) {
                assert!(
                    ((*xs as f64) - xd).abs() / scale < 1e-3,
                    "row {i}: f32 {xs} vs f64 {xd}"
                );
            }
            assert!(x32.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn nnls_gram_f32_clamps_negative_components() {
        // Mirror of `nnls_clamps_negative_components` through the f32 Gram
        // formulation: the LS solution has a negative entry.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.2], vec![1.0, 0.8]]);
        let b = [1.0, 0.0, 2.0];
        let gram = matmul_at_b(&a, &a);
        let g32: Vec<f32> = gram.as_slice().iter().map(|&v| v as f32).collect();
        let c32: Vec<f32> = (0..2)
            .map(|j| (0..3).map(|i| a.get(i, j) * b[i]).sum::<f64>() as f32)
            .collect();
        let mut x32 = vec![0.0f32; 2];
        let mut passive = vec![false; 2];
        nnls_gram_f32(&g32, 2, &c32, 1e-6, &mut x32, &mut passive);
        assert!(x32.iter().all(|&v| v >= 0.0), "{x32:?}");
        let x64 = nnls(&a, &b, 1e-12);
        for (xs, xd) in x32.iter().zip(&x64) {
            assert!(((*xs as f64) - xd).abs() < 1e-3, "f32 {xs} vs f64 {xd}");
        }
    }

    #[test]
    fn nnls_zero_rhs_gives_zero() {
        let a = Matrix::from_fn(4, 3, |i, j| (i + j) as f64 + 1.0);
        let x = nnls(&a, &[0.0; 4], 1e-12);
        assert!(x.iter().all(|&v| v == 0.0));
    }
}
