//! Thin singular value decomposition.
//!
//! Two routes are provided:
//!
//! * [`thin_svd`] — exact (to machine precision) thin SVD via a Jacobi
//!   eigendecomposition of the smaller Gram matrix. Suited to the corpus
//!   matrices in this project (one side is tens of rows).
//! * [`randomized_svd`] — Halko-style randomized subspace iteration for the
//!   top-`k` factors of larger matrices; used by the NNDSVD initializer and
//!   spectral co-clustering on bigger synthetic corpora.

use crate::eigen::sym_eigen;
use crate::matrix::Matrix;
use crate::norms::norm2;
use crate::ops::{matmul, matmul_a_bt, matmul_at_b};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Thin SVD `A = U diag(s) Vᵀ`, singular values descending.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors as columns (`m × r`).
    pub u: Matrix,
    /// Singular values, descending (`r`).
    pub s: Vec<f64>,
    /// Right singular vectors as columns (`n × r`).
    pub v: Matrix,
}

impl Svd {
    /// Reconstruct `U diag(s) Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let us = scale_cols(&self.u, &self.s);
        matmul_a_bt(&us, &self.v)
    }

    /// Truncate to the top `k` factors.
    pub fn truncate(&self, k: usize) -> Svd {
        let k = k.min(self.s.len());
        let idx: Vec<usize> = (0..k).collect();
        Svd {
            u: self.u.select_cols(&idx),
            s: self.s[..k].to_vec(),
            v: self.v.select_cols(&idx),
        }
    }
}

fn scale_cols(m: &Matrix, scales: &[f64]) -> Matrix {
    assert_eq!(m.cols(), scales.len());
    let mut out = m.clone();
    for i in 0..out.rows() {
        for (j, v) in out.row_mut(i).iter_mut().enumerate() {
            *v *= scales[j];
        }
    }
    out
}

/// Exact thin SVD via the Gram route.
///
/// Decomposes whichever Gram matrix (`AᵀA` or `AAᵀ`) is smaller, then
/// recovers the other factor by projection. Singular values below
/// `1e-10 * s_max` are dropped (rank truncation), so the returned rank `r`
/// is the numerical rank of `A`.
pub fn thin_svd(a: &Matrix) -> Svd {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Svd {
            u: Matrix::zeros(m, 0),
            s: vec![],
            v: Matrix::zeros(n, 0),
        };
    }
    if n <= m {
        // Eigen of AᵀA gives V; U = A V / s.
        let g = matmul_at_b(a, a);
        let e = sym_eigen(&g);
        let smax = e.values.first().copied().unwrap_or(0.0).max(0.0).sqrt();
        let keep: Vec<usize> = e
            .values
            .iter()
            .enumerate()
            .filter(|(_, &l)| l.max(0.0).sqrt() > 1e-7 * smax.max(f64::MIN_POSITIVE))
            .map(|(i, _)| i)
            .collect();
        let v = e.vectors.select_cols(&keep);
        let s: Vec<f64> = keep.iter().map(|&i| e.values[i].max(0.0).sqrt()).collect();
        let av = matmul(a, &v);
        let inv: Vec<f64> = s.iter().map(|&x| 1.0 / x).collect();
        let u = scale_cols(&av, &inv);
        Svd { u, s, v }
    } else {
        // Eigen of AAᵀ gives U; V = Aᵀ U / s.
        let g = matmul_a_bt(a, a);
        let e = sym_eigen(&g);
        let smax = e.values.first().copied().unwrap_or(0.0).max(0.0).sqrt();
        let keep: Vec<usize> = e
            .values
            .iter()
            .enumerate()
            .filter(|(_, &l)| l.max(0.0).sqrt() > 1e-7 * smax.max(f64::MIN_POSITIVE))
            .map(|(i, _)| i)
            .collect();
        let u = e.vectors.select_cols(&keep);
        let s: Vec<f64> = keep.iter().map(|&i| e.values[i].max(0.0).sqrt()).collect();
        let atu = matmul_at_b(a, &u);
        let inv: Vec<f64> = s.iter().map(|&x| 1.0 / x).collect();
        let v = scale_cols(&atu, &inv);
        Svd { u, s, v }
    }
}

/// Randomized top-`k` SVD (Halko, Martinsson, Tropp 2011) with `n_oversample`
/// extra probe directions and `n_power` power iterations. Deterministic for a
/// fixed `seed`.
pub fn randomized_svd(a: &Matrix, k: usize, n_power: usize, seed: u64) -> Svd {
    let (m, n) = a.shape();
    let k = k.min(m.min(n));
    if k == 0 {
        return Svd {
            u: Matrix::zeros(m, 0),
            s: vec![],
            v: Matrix::zeros(n, 0),
        };
    }
    let oversample = (k + 8).min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let omega = Matrix::from_fn(n, oversample, |_, _| rng.gen::<f64>() * 2.0 - 1.0);
    // Range finder with power iterations: Y = (A Aᵀ)^q A Ω.
    let mut y = matmul(a, &omega);
    orthonormalize_cols(&mut y);
    for _ in 0..n_power {
        let z = matmul_at_b(a, &y);
        let mut z = z;
        orthonormalize_cols(&mut z);
        y = matmul(a, &z);
        orthonormalize_cols(&mut y);
    }
    // Project: B = Qᵀ A  (oversample × n), exact SVD of the small B.
    let b = matmul_at_b(&y, a);
    let svd_b = thin_svd(&b);
    let u = matmul(&y, &svd_b.u);
    Svd {
        u,
        s: svd_b.s,
        v: svd_b.v,
    }
    .truncate(k)
}

/// Modified Gram–Schmidt orthonormalization of the columns of `m`, in place.
/// Columns that become (numerically) zero are left as zeros.
pub fn orthonormalize_cols(m: &mut Matrix) {
    let (rows, cols) = m.shape();
    for j in 0..cols {
        let mut col = m.col(j);
        for p in 0..j {
            let prev = m.col(p);
            let proj = crate::ops::dot(&col, &prev);
            for (cv, pv) in col.iter_mut().zip(&prev) {
                *cv -= proj * pv;
            }
        }
        let n = norm2(&col);
        if n > 1e-12 {
            for v in &mut col {
                *v /= n;
            }
        } else {
            col = vec![0.0; rows];
        }
        m.set_col(j, &col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svd_of_diagonal() {
        let a = Matrix::diag(&[3.0, 2.0, 1.0]);
        let svd = thin_svd(&a);
        assert_eq!(svd.s.len(), 3);
        assert!((svd.s[0] - 3.0).abs() < 1e-9);
        assert!((svd.s[2] - 1.0).abs() < 1e-9);
        assert!(svd.reconstruct().approx_eq(&a, 1e-8));
    }

    #[test]
    fn svd_reconstructs_rectangular_both_orientations() {
        let tall = Matrix::from_fn(9, 4, |i, j| ((i * 5 + j * 3) % 7) as f64 - 2.0);
        let svd = thin_svd(&tall);
        assert!(svd.reconstruct().approx_eq(&tall, 1e-7));
        let wide = tall.transpose();
        let svd_w = thin_svd(&wide);
        assert!(svd_w.reconstruct().approx_eq(&wide, 1e-7));
    }

    #[test]
    fn singular_values_match_transpose() {
        let a = Matrix::from_fn(6, 3, |i, j| (i + j * j) as f64);
        let s1 = thin_svd(&a).s;
        let s2 = thin_svd(&a.transpose()).s;
        assert_eq!(s1.len(), s2.len());
        for (x, y) in s1.iter().zip(&s2) {
            assert!((x - y).abs() < 1e-7, "{x} vs {y}");
        }
    }

    #[test]
    fn rank_deficient_is_truncated() {
        // Rank-1 matrix: outer product.
        let a = Matrix::from_fn(5, 4, |i, j| ((i + 1) * (j + 1)) as f64);
        let svd = thin_svd(&a);
        assert_eq!(
            svd.s.len(),
            1,
            "numerical rank should be 1, got {:?}",
            svd.s
        );
        assert!(svd.reconstruct().approx_eq(&a, 1e-7));
    }

    #[test]
    fn u_and_v_orthonormal() {
        let a = Matrix::from_fn(7, 5, |i, j| ((3 * i + 2 * j) % 8) as f64 - 3.0);
        let svd = thin_svd(&a);
        let utu = matmul_at_b(&svd.u, &svd.u);
        let vtv = matmul_at_b(&svd.v, &svd.v);
        let r = svd.s.len();
        assert!(utu.approx_eq(&Matrix::identity(r), 1e-7));
        assert!(vtv.approx_eq(&Matrix::identity(r), 1e-7));
    }

    #[test]
    fn randomized_matches_exact_on_low_rank() {
        // Rank-3 matrix.
        let b = Matrix::from_fn(30, 3, |i, j| ((i * (j + 1)) % 11) as f64);
        let c = Matrix::from_fn(3, 25, |i, j| ((i + j) % 5) as f64 + 0.5);
        let a = matmul(&b, &c);
        let exact = thin_svd(&a);
        let rand_svd = randomized_svd(&a, 3, 2, 42);
        for i in 0..3 {
            assert!(
                (exact.s[i] - rand_svd.s[i]).abs() < 1e-6 * exact.s[0],
                "σ{i}: {} vs {}",
                exact.s[i],
                rand_svd.s[i]
            );
        }
        assert!(rand_svd.reconstruct().approx_eq(&a, 1e-5 * exact.s[0]));
    }

    #[test]
    fn randomized_is_deterministic_per_seed() {
        let a = Matrix::from_fn(20, 15, |i, j| ((i * 7 + j) % 9) as f64);
        let s1 = randomized_svd(&a, 4, 1, 7);
        let s2 = randomized_svd(&a, 4, 1, 7);
        assert_eq!(s1.s, s2.s);
        assert_eq!(s1.u, s2.u);
    }

    #[test]
    fn truncate_keeps_top_factors() {
        let a = Matrix::from_fn(6, 6, |i, j| ((i * j) % 7) as f64 + 1.0);
        let svd = thin_svd(&a);
        let t = svd.truncate(2);
        assert_eq!(t.s.len(), 2);
        assert_eq!(t.u.cols(), 2);
        assert_eq!(t.v.cols(), 2);
        assert_eq!(t.s[0], svd.s[0]);
    }

    #[test]
    fn orthonormalize_cols_yields_identity_gram() {
        let mut m = Matrix::from_fn(8, 3, |i, j| ((i + j * 2) % 5) as f64 + 1.0);
        orthonormalize_cols(&mut m);
        let g = matmul_at_b(&m, &m);
        assert!(g.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn empty_svd() {
        let svd = thin_svd(&Matrix::zeros(0, 4));
        assert!(svd.s.is_empty());
        assert_eq!(svd.v.shape(), (4, 0));
    }
}
