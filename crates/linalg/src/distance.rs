//! Pairwise distance and similarity kernels.
//!
//! The paper's search/recommendation layer embeds materials by pairwise
//! similarity (then MDS); these kernels compute full symmetric distance
//! matrices, in parallel over rows for larger inputs.

use crate::matrix::Matrix;
use crate::ops::dot;
use rayon::prelude::*;

/// Which metric a pairwise computation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Euclidean distance.
    Euclidean,
    /// Squared Euclidean distance.
    SquaredEuclidean,
    /// Manhattan / city-block distance.
    Manhattan,
    /// Cosine distance `1 - cos(x, y)` (zero vectors are at distance 1 from
    /// everything except other zero vectors).
    Cosine,
    /// Jaccard distance on binarized vectors (`> 0.5` counts as set
    /// membership) — natural for 0-1 course-tag rows.
    Jaccard,
}

/// Distance between two equal-length slices under `metric`.
///
/// # Panics
/// Panics if lengths differ.
pub fn distance(x: &[f64], y: &[f64], metric: Metric) -> f64 {
    assert_eq!(x.len(), y.len(), "distance length mismatch");
    match metric {
        Metric::Euclidean => sq_euclidean(x, y).sqrt(),
        Metric::SquaredEuclidean => sq_euclidean(x, y),
        Metric::Manhattan => x.iter().zip(y).map(|(a, b)| (a - b).abs()).sum(),
        Metric::Cosine => {
            let nx = crate::norms::norm2(x);
            let ny = crate::norms::norm2(y);
            if nx == 0.0 && ny == 0.0 {
                0.0
            } else if nx == 0.0 || ny == 0.0 {
                1.0
            } else {
                (1.0 - dot(x, y) / (nx * ny)).clamp(0.0, 2.0)
            }
        }
        Metric::Jaccard => {
            let mut inter = 0usize;
            let mut union = 0usize;
            for (a, b) in x.iter().zip(y) {
                let sa = *a > 0.5;
                let sb = *b > 0.5;
                if sa && sb {
                    inter += 1;
                }
                if sa || sb {
                    union += 1;
                }
            }
            if union == 0 {
                0.0
            } else {
                1.0 - inter as f64 / union as f64
            }
        }
    }
}

#[inline]
fn sq_euclidean(x: &[f64], y: &[f64]) -> f64 {
    x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum()
}

/// Full symmetric pairwise-distance matrix between the rows of `m`.
/// Parallel over rows; deterministic (each entry computed independently).
pub fn pairwise_distances(m: &Matrix, metric: Metric) -> Matrix {
    let n = m.rows();
    let cols = m.cols();
    let mut d = Matrix::zeros(n, n);
    if n == 0 {
        return d;
    }
    let _ = cols;
    d.as_mut_slice()
        .par_chunks_mut(n)
        .enumerate()
        .for_each(|(i, row)| {
            let ri = m.row(i);
            for (j, out) in row.iter_mut().enumerate() {
                if i == j {
                    *out = 0.0;
                } else {
                    *out = distance(ri, m.row(j), metric);
                }
            }
        });
    d
}

/// Pairwise cosine-similarity matrix between the rows of `m` (diagonal = 1
/// for nonzero rows, 0 for zero rows).
pub fn pairwise_cosine_similarity(m: &Matrix) -> Matrix {
    let n = m.rows();
    let mut s = Matrix::zeros(n, n);
    if n == 0 {
        return s;
    }
    let norms: Vec<f64> = (0..n).map(|i| crate::norms::norm2(m.row(i))).collect();
    s.as_mut_slice()
        .par_chunks_mut(n)
        .enumerate()
        .for_each(|(i, row)| {
            let ri = m.row(i);
            for (j, out) in row.iter_mut().enumerate() {
                if norms[i] == 0.0 || norms[j] == 0.0 {
                    *out = 0.0;
                } else {
                    *out = dot(ri, m.row(j)) / (norms[i] * norms[j]);
                }
            }
        });
    s
}

/// Validate that `d` is a proper distance matrix: square, symmetric,
/// nonnegative, zero diagonal. Returns a description of the first violation.
pub fn validate_distance_matrix(d: &Matrix) -> Result<(), String> {
    let (r, c) = d.shape();
    if r != c {
        return Err(format!("not square: {r}x{c}"));
    }
    for i in 0..r {
        if d.get(i, i).abs() > 1e-9 {
            return Err(format!("nonzero diagonal at {i}: {}", d.get(i, i)));
        }
        for j in 0..c {
            let v = d.get(i, j);
            if !v.is_finite() || v < -1e-12 {
                return Err(format!("invalid entry at ({i},{j}): {v}"));
            }
            if (v - d.get(j, i)).abs() > 1e-9 {
                return Err(format!("asymmetry at ({i},{j})"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_and_manhattan() {
        assert_eq!(distance(&[0., 0.], &[3., 4.], Metric::Euclidean), 5.0);
        assert_eq!(
            distance(&[0., 0.], &[3., 4.], Metric::SquaredEuclidean),
            25.0
        );
        assert_eq!(distance(&[0., 0.], &[3., 4.], Metric::Manhattan), 7.0);
    }

    #[test]
    fn cosine_distance_cases() {
        assert!((distance(&[1., 0.], &[0., 1.], Metric::Cosine) - 1.0).abs() < 1e-12);
        assert!(distance(&[1., 1.], &[2., 2.], Metric::Cosine).abs() < 1e-12);
        assert_eq!(distance(&[0., 0.], &[1., 1.], Metric::Cosine), 1.0);
        assert_eq!(distance(&[0., 0.], &[0., 0.], Metric::Cosine), 0.0);
    }

    #[test]
    fn jaccard_on_binary_tags() {
        let a = [1., 1., 0., 0.];
        let b = [1., 0., 1., 0.];
        // intersection 1, union 3.
        assert!((distance(&a, &b, Metric::Jaccard) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(distance(&[0., 0.], &[0., 0.], Metric::Jaccard), 0.0);
        assert_eq!(distance(&a, &a, Metric::Jaccard), 0.0);
    }

    #[test]
    fn pairwise_matrix_properties() {
        let m = Matrix::from_rows(&[vec![0., 0.], vec![3., 4.], vec![6., 8.]]);
        let d = pairwise_distances(&m, Metric::Euclidean);
        validate_distance_matrix(&d).expect("valid distance matrix");
        assert_eq!(d.get(0, 1), 5.0);
        assert_eq!(d.get(1, 2), 5.0);
        assert_eq!(d.get(0, 2), 10.0);
    }

    #[test]
    fn cosine_similarity_matrix() {
        let m = Matrix::from_rows(&[vec![1., 0.], vec![0., 2.], vec![1., 1.], vec![0., 0.]]);
        let s = pairwise_cosine_similarity(&m);
        assert!((s.get(0, 0) - 1.0).abs() < 1e-12);
        assert!(s.get(0, 1).abs() < 1e-12);
        assert!((s.get(0, 2) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        assert_eq!(s.get(3, 3), 0.0);
        assert_eq!(s.get(3, 0), 0.0);
    }

    #[test]
    fn validation_catches_bad_matrices() {
        assert!(validate_distance_matrix(&Matrix::zeros(2, 3)).is_err());
        let mut d = Matrix::zeros(2, 2);
        d.set(0, 1, 1.0);
        assert!(validate_distance_matrix(&d).is_err(), "asymmetric");
        d.set(1, 0, 1.0);
        assert!(validate_distance_matrix(&d).is_ok());
        d.set(0, 0, 0.5);
        assert!(validate_distance_matrix(&d).is_err(), "nonzero diagonal");
    }

    #[test]
    fn triangle_inequality_euclidean_spot_check() {
        let m = Matrix::from_fn(6, 4, |i, j| ((i * 3 + j * 5) % 7) as f64);
        let d = pairwise_distances(&m, Metric::Euclidean);
        for i in 0..6 {
            for j in 0..6 {
                for k in 0..6 {
                    assert!(d.get(i, j) <= d.get(i, k) + d.get(k, j) + 1e-9);
                }
            }
        }
    }
}
