//! Typed errors for the linear-algebra substrate.
//!
//! The panicking kernels in [`crate::ops`] and [`crate::solve`] stay as the
//! ergonomic default for internal callers that uphold the shape contracts;
//! the `try_*` variants introduced alongside them return [`LinalgError`] so
//! serving-path code can degrade instead of crashing on malformed input.

use std::fmt;

/// Errors produced by checked linear-algebra operations.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the operation.
    ShapeMismatch {
        /// Operation name (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand (vectors are `(len, 1)`).
        right: (usize, usize),
    },
    /// An operand contains a NaN or infinite entry.
    NotFinite {
        /// Operation name.
        op: &'static str,
        /// Row of the first offending entry.
        row: usize,
        /// Column of the first offending entry.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// A square matrix was required.
    NotSquare {
        /// Operation name.
        op: &'static str,
        /// Actual shape.
        shape: (usize, usize),
    },
    /// The matrix is not (numerically) symmetric positive-definite.
    NotSpd {
        /// Operation name.
        op: &'static str,
    },
    /// The system is singular (or numerically rank-deficient).
    Singular {
        /// Operation name.
        op: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, left, right } => {
                write!(f, "{op} dimension mismatch: {left:?} x {right:?}")
            }
            LinalgError::NotFinite {
                op,
                row,
                col,
                value,
            } => {
                write!(f, "{op}: non-finite entry {value} at ({row}, {col})")
            }
            LinalgError::NotSquare { op, shape } => {
                write!(f, "{op}: matrix must be square, got {shape:?}")
            }
            LinalgError::NotSpd { op } => {
                write!(f, "{op}: matrix is not symmetric positive-definite")
            }
            LinalgError::Singular { op } => write!(f, "{op}: singular system"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_panic_compatible_wording() {
        // The panicking wrappers format these errors into their panic
        // messages; downstream `#[should_panic(expected = ...)]` tests rely
        // on the historical substrings.
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            left: (2, 3),
            right: (2, 3),
        };
        assert!(e.to_string().contains("dimension mismatch"));
        let e = LinalgError::NotFinite {
            op: "nnmf",
            row: 1,
            col: 2,
            value: f64::NAN,
        };
        assert!(e.to_string().contains("non-finite"));
    }
}
