//! Compressed sparse row (CSR) matrices.
//!
//! The course×tag matrices of this project are 0-1 with ~10% density, and
//! the synthetic-corpus scaling benchmarks factor much larger instances.
//! CSR storage makes the NNMF data-side products (`AHᵀ`, `WᵀA`) scale with
//! the number of nonzeros instead of the full dense size.

use crate::matrix::Matrix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A CSR sparse matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array, length `rows + 1`.
    indptr: Vec<usize>,
    /// Column indices, length `nnz`, sorted within each row.
    indices: Vec<usize>,
    /// Values, aligned with `indices`.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from a dense matrix, dropping exact zeros.
    pub fn from_dense(a: &Matrix) -> Self {
        Self::from_dense_with_tol(a, 0.0)
    }

    /// Build from a dense matrix, dropping entries with `|v| <= tol`.
    /// `tol = 0.0` keeps every nonzero (the [`from_dense`] default).
    ///
    /// # Panics
    /// Panics if `tol` is negative or NaN.
    pub fn from_dense_with_tol(a: &Matrix, tol: f64) -> Self {
        assert!(tol >= 0.0, "tolerance must be a nonnegative number");
        let (rows, cols) = a.shape();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for i in 0..rows {
            for (j, &v) in a.row(i).iter().enumerate() {
                if v.abs() > tol || v.is_nan() {
                    indices.push(j);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Assemble from raw CSR arrays. Intended for builders that construct
    /// the arrays directly (e.g. direct-to-CSR course-matrix assembly)
    /// without going through a dense intermediate. Invariants (sorted,
    /// strictly increasing, in-bounds column indices; consistent pointers)
    /// are checked with a `debug_assert`, so malformed input is caught in
    /// debug/test builds without taxing release hot paths.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        let m = CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        };
        #[cfg(debug_assertions)]
        if let Err(e) = m.validate() {
            panic!("invalid CSR parts: {e}");
        }
        m
    }

    /// Build from explicit triplets `(row, col, value)`. Duplicates are
    /// summed; zeros after summation are kept (harmless).
    ///
    /// # Panics
    /// Panics if any coordinate is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); rows];
        for &(i, j, v) in triplets {
            assert!(i < rows && j < cols, "triplet ({i},{j}) out of bounds");
            per_row[i].push((j, v));
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for row in &mut per_row {
            row.sort_by_key(|&(j, _)| j);
            let mut last: Option<usize> = None;
            for &(j, v) in row.iter() {
                if last == Some(j) {
                    *values.last_mut().expect("dup follows a value") += v;
                } else {
                    indices.push(j);
                    values.push(v);
                    last = Some(j);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Stored density (`nnz / (rows·cols)`, 0 for empty shapes).
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// Column indices and values of row `i`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Materialize as dense.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (idx, vals) = self.row(i);
            let r = m.row_mut(i);
            for (&j, &v) in idx.iter().zip(vals) {
                r[j] += v;
            }
        }
        m
    }

    /// Sum of all stored values.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// `y = A x` (sparse matrix–vector product).
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "spmv dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let (idx, vals) = self.row(i);
                idx.iter().zip(vals).map(|(&j, &v)| v * x[j]).sum()
            })
            .collect()
    }

    /// `C = A · Bᵀ` where `A` is sparse (`m×n`) and `B` dense (`p×n`):
    /// the NNMF data product `A Hᵀ` with `B = H`. Parallel over rows of the
    /// output; bitwise deterministic.
    ///
    /// # Panics
    /// Panics if `b.cols() != self.cols()`.
    pub fn matmul_dense_bt(&self, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(self.rows, b.rows());
        self.matmul_dense_bt_into(b, &mut c);
        c
    }

    /// `C = A · Bᵀ` written into `out` (no allocation). Splits across rayon
    /// workers by the shared [`crate::ops::par_threshold`] heuristic; both
    /// branches are bitwise identical.
    ///
    /// # Panics
    /// Panics if `b.cols() != self.cols()` or `out` is not
    /// `self.rows() × b.rows()`.
    pub fn matmul_dense_bt_into(&self, b: &Matrix, out: &mut Matrix) {
        assert_eq!(
            b.cols(),
            self.cols,
            "A·Bᵀ dimension mismatch: {:?} vs {:?}",
            self.shape(),
            b.shape()
        );
        let p = b.rows();
        assert_eq!(out.shape(), (self.rows, p), "A·Bᵀ output shape mismatch");
        let par = crate::ops::split_rows(self.nnz() * p.max(1), self.rows);
        // The row-panel microkernel packs `Bᵀ` once so every stored entry
        // becomes one contiguous p-wide FMA; worth it when the multiply
        // work dominates the n×p packing sweep. Bitwise identical.
        if crate::microkernel::blocked_enabled(self.nnz() * p)
            && (self.nnz() >= self.cols
                || crate::microkernel::kernel_mode() == crate::microkernel::KernelMode::Blocked)
        {
            crate::microkernel::csr_abt(self, b, out, par);
            return;
        }
        let body = |i: usize, orow: &mut [f64]| {
            let (idx, vals) = self.row(i);
            for (t, o) in orow.iter_mut().enumerate() {
                let brow = b.row(t);
                *o = idx.iter().zip(vals).map(|(&j, &v)| v * brow[j]).sum();
            }
        };
        if par {
            out.as_mut_slice()
                .par_chunks_mut(p.max(1))
                .enumerate()
                .for_each(|(i, orow)| body(i, orow));
        } else {
            for i in 0..self.rows {
                body(i, out.row_mut(i));
            }
        }
    }

    /// `C = Aᵀ · B` where `A` is sparse (`m×n`) and `B` dense (`m×p`):
    /// the NNMF data product `Aᵀ W` (transposed form of `Wᵀ A`).
    ///
    /// # Panics
    /// Panics if `b.rows() != self.rows()`.
    pub fn matmul_at_dense(&self, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(self.cols, b.cols());
        self.matmul_at_dense_into(b, &mut c);
        c
    }

    /// `C = Aᵀ · B` written into `out` (no allocation). Scatter kernel:
    /// sequential over rows (each sparse row scatters into multiple output
    /// rows), deterministic.
    ///
    /// # Panics
    /// Panics if `b.rows() != self.rows()` or `out` is not
    /// `self.cols() × b.cols()`.
    pub fn matmul_at_dense_into(&self, b: &Matrix, out: &mut Matrix) {
        assert_eq!(
            b.rows(),
            self.rows,
            "Aᵀ·B dimension mismatch: {:?} vs {:?}",
            self.shape(),
            b.shape()
        );
        let p = b.cols();
        assert_eq!(out.shape(), (self.cols, p), "Aᵀ·B output shape mismatch");
        out.as_mut_slice().fill(0.0);
        for i in 0..self.rows {
            let (idx, vals) = self.row(i);
            let brow = b.row(i);
            for (&j, &v) in idx.iter().zip(vals) {
                let crow = out.row_mut(j);
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += v * bv;
                }
            }
        }
    }

    /// Squared Frobenius norm of the stored entries.
    pub fn frobenius_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Transpose (CSR → CSR of the transpose).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols];
        for &j in &self.indices {
            counts[j] += 1;
        }
        let mut indptr = vec![0usize; self.cols + 1];
        for j in 0..self.cols {
            indptr[j + 1] = indptr[j] + counts[j];
        }
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = indptr.clone();
        for i in 0..self.rows {
            let (idx, vals) = self.row(i);
            for (&j, &v) in idx.iter().zip(vals) {
                let pos = next[j];
                indices[pos] = i;
                values[pos] = v;
                next[j] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Validate structural invariants (sorted unique column indices per
    /// row, consistent pointers).
    pub fn validate(&self) -> Result<(), String> {
        if self.indptr.len() != self.rows + 1 {
            return Err("indptr length mismatch".into());
        }
        if self.indices.len() != self.values.len() {
            return Err("indices/values length mismatch".into());
        }
        if self.indptr[0] != 0 || *self.indptr.last().unwrap() != self.nnz() {
            return Err("indptr endpoints invalid".into());
        }
        for i in 0..self.rows {
            if self.indptr[i] > self.indptr[i + 1] {
                return Err(format!("indptr not monotone at row {i}"));
            }
            let (idx, _) = self.row(i);
            for w in idx.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {i} indices not strictly increasing"));
                }
            }
            if idx.iter().any(|&j| j >= self.cols) {
                return Err(format!("row {i} has out-of-range column"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{matmul_a_bt, matmul_at_b};

    fn sample_dense() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 0.0, 2.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.0, 3.0, 0.0, 4.0],
        ])
    }

    #[test]
    fn dense_roundtrip() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d);
        s.validate().expect("valid CSR");
        assert_eq!(s.nnz(), 4);
        assert_eq!(s.to_dense(), d);
        assert!((s.density() - 4.0 / 12.0).abs() < 1e-12);
        assert_eq!(s.sum(), 10.0);
    }

    #[test]
    fn triplets_with_duplicates() {
        let s = CsrMatrix::from_triplets(2, 3, &[(0, 1, 1.0), (0, 1, 2.0), (1, 0, 5.0)]);
        s.validate().expect("valid");
        assert_eq!(s.nnz(), 2);
        let d = s.to_dense();
        assert_eq!(d.get(0, 1), 3.0);
        assert_eq!(d.get(1, 0), 5.0);
    }

    #[test]
    fn spmv_matches_dense() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(s.matvec(&x), crate::ops::matvec(&d, &x));
    }

    #[test]
    fn a_bt_matches_dense_kernel() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d);
        let b = Matrix::from_fn(5, 4, |i, j| (i * 4 + j) as f64 * 0.5);
        let sparse = s.matmul_dense_bt(&b);
        let dense = matmul_a_bt(&d, &b);
        assert!(sparse.approx_eq(&dense, 1e-12));
    }

    #[test]
    fn at_b_matches_dense_kernel() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d);
        let b = Matrix::from_fn(3, 6, |i, j| ((i + j) % 5) as f64 - 1.0);
        let sparse = s.matmul_at_dense(&b);
        let dense = matmul_at_b(&d, &b);
        assert!(sparse.approx_eq(&dense, 1e-12));
    }

    #[test]
    fn transpose_roundtrip() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d);
        let t = s.transpose();
        t.validate().expect("valid transpose");
        assert_eq!(t.shape(), (4, 3));
        assert_eq!(t.to_dense(), d.transpose());
        assert_eq!(t.transpose().to_dense(), d);
    }

    #[test]
    fn frobenius_matches() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d);
        assert!((s.frobenius_sq() - crate::norms::frobenius_sq(&d)).abs() < 1e-12);
    }

    #[test]
    fn empty_and_all_zero() {
        let z = CsrMatrix::from_dense(&Matrix::zeros(3, 4));
        assert_eq!(z.nnz(), 0);
        z.validate().expect("valid");
        assert_eq!(z.to_dense(), Matrix::zeros(3, 4));
        let e = CsrMatrix::from_dense(&Matrix::zeros(0, 0));
        assert_eq!(e.density(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn triplet_bounds_checked() {
        let _ = CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }

    #[test]
    fn from_dense_with_tol_drops_small_entries() {
        let d = Matrix::from_rows(&[vec![1e-9, 0.5, -1e-12], vec![0.0, -2.0, 1e-6]]);
        let exact = CsrMatrix::from_dense_with_tol(&d, 0.0);
        assert_eq!(exact.nnz(), 5, "tol=0 keeps every nonzero");
        let trimmed = CsrMatrix::from_dense_with_tol(&d, 1e-8);
        trimmed.validate().expect("valid");
        assert_eq!(trimmed.nnz(), 3);
        let back = trimmed.to_dense();
        assert_eq!(back.get(0, 0), 0.0);
        assert_eq!(back.get(0, 1), 0.5);
        assert_eq!(back.get(1, 2), 1e-6);
    }

    #[test]
    fn from_dense_with_tol_keeps_nan_for_validation() {
        // NaN entries must survive sparsification so the solver's input
        // validation can still reject them.
        let mut d = sample_dense();
        d.set(1, 1, f64::NAN);
        let s = CsrMatrix::from_dense_with_tol(&d, 0.5);
        assert!(s.to_dense().get(1, 1).is_nan());
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn from_dense_with_tol_rejects_negative_tol() {
        let _ = CsrMatrix::from_dense_with_tol(&sample_dense(), -1.0);
    }

    #[test]
    fn from_parts_roundtrip() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d);
        let rebuilt = CsrMatrix::from_parts(
            s.rows(),
            s.cols(),
            s.indptr.clone(),
            s.indices.clone(),
            s.values.clone(),
        );
        assert_eq!(rebuilt, s);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "invalid CSR parts")]
    fn from_parts_validates_in_debug() {
        // Unsorted column indices within a row.
        let _ = CsrMatrix::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
    }

    #[test]
    fn into_kernels_match_allocating() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d);
        let b = Matrix::from_fn(5, 4, |i, j| (i * 4 + j) as f64 * 0.5);
        let mut out = Matrix::zeros(3, 5);
        out.as_mut_slice().fill(7.0); // stale contents must be overwritten
        s.matmul_dense_bt_into(&b, &mut out);
        assert_eq!(out, s.matmul_dense_bt(&b));
        let b2 = Matrix::from_fn(3, 6, |i, j| ((i + j) % 5) as f64 - 1.0);
        let mut out2 = Matrix::zeros(4, 6);
        out2.as_mut_slice().fill(-3.0);
        s.matmul_at_dense_into(&b2, &mut out2);
        assert_eq!(out2, s.matmul_at_dense(&b2));
    }
}
