//! Matrix arithmetic kernels.
//!
//! The multiply kernels come in sequential and rayon-parallel versions. The
//! parallel versions split over output rows with `par_chunks_mut`, which
//! keeps each output row owned by exactly one worker (data-race freedom by
//! construction) and preserves bitwise determinism: the per-entry reduction
//! order is identical to the sequential kernel.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default work threshold below which the parallel kernels run sequentially
/// (avoids rayon overhead on tiny matrices).
const PAR_MIN_WORK_DEFAULT: usize = 64 * 64;

/// Sentinel meaning "no cached value: consult the environment".
const THRESHOLD_UNSET: usize = usize::MAX;

static PAR_THRESHOLD: AtomicUsize = AtomicUsize::new(THRESHOLD_UNSET);

/// Parse an `ANCHORS_PAR_THRESHOLD`-style override. `Some("0")` forces every
/// kernel parallel; unparsable values fall back to the default.
fn threshold_from_env(raw: Option<&str>) -> usize {
    raw.and_then(|s| s.trim().parse().ok())
        .unwrap_or(PAR_MIN_WORK_DEFAULT)
}

/// The work threshold (in fused multiply-add units) above which multiply
/// kernels split across rayon workers. One heuristic governs every kernel —
/// dense and CSR alike. The value comes from [`set_par_threshold`] if an
/// override is injected, else from the `ANCHORS_PAR_THRESHOLD` environment
/// variable (cached after the first read).
pub fn par_threshold() -> usize {
    match PAR_THRESHOLD.load(Ordering::Relaxed) {
        THRESHOLD_UNSET => {
            let t = threshold_from_env(std::env::var("ANCHORS_PAR_THRESHOLD").ok().as_deref());
            PAR_THRESHOLD.store(t, Ordering::Relaxed);
            t
        }
        t => t,
    }
}

/// Inject a work threshold, overriding the environment — the test/bench
/// hook that `ANCHORS_PAR_THRESHOLD`'s old read-once `OnceLock` could not
/// offer. `None` clears the override (and the cache), so the next read
/// consults the environment again. Changing the threshold never changes
/// results: both kernel branches are bitwise identical.
pub fn set_par_threshold(threshold: Option<usize>) {
    PAR_THRESHOLD.store(threshold.unwrap_or(THRESHOLD_UNSET), Ordering::Relaxed);
}

/// Shared split decision: parallelize row-partitioned work of `work` total
/// units across `rows` rows — unless the parallelism policy forbids inner
/// splits here (serial mode, or this thread is working for an outer
/// fan-out; see [`crate::parallel`]). Both branches of every kernel
/// preserve the per-entry reduction order, so the decision never changes
/// results.
#[inline]
pub(crate) fn split_rows(work: usize, rows: usize) -> bool {
    rows >= 2 && work >= par_threshold() && crate::parallel::inner_enabled()
}

/// The one scalar `C = A * B` body (ikj, cache-friendly on row-major
/// data, skipping exact-zero `a` entries): `matmul_seq`, `matmul_into`,
/// and the microkernel dispatch all route through here, so there is a
/// single scalar reference kernel instead of copy-pasted triple loops.
/// `out` must be pre-zeroed.
fn matmul_scalar_body(a: &Matrix, b: &Matrix, out: &mut Matrix, par: bool) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let body = |i: usize, crow: &mut [f64]| {
        let arow = a.row(i);
        for (p, &av) in arow.iter().enumerate().take(k) {
            if av == 0.0 {
                continue;
            }
            let brow = b.row(p);
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    };
    if par {
        out.as_mut_slice()
            .par_chunks_mut(n.max(1))
            .enumerate()
            .for_each(|(i, crow)| body(i, crow));
    } else {
        for i in 0..m {
            body(i, out.row_mut(i));
        }
    }
}

/// `C = A * B`, forced scalar and sequential. Kept as the test oracle
/// for the production kernels below (one shared body, no duplicate
/// loop).
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_seq(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul dimension mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let mut c = Matrix::zeros(a.rows(), b.cols());
    matmul_scalar_body(a, b, &mut c, false);
    c
}

/// `C = A * B` written into `out` (no allocation). Dispatches to the
/// blocked microkernel by [`crate::microkernel::kernel_mode`] and
/// shape, and parallelizes over output rows when the [`par_threshold`]
/// heuristic fires; every combination is bitwise identical.
///
/// # Panics
/// Panics if `a.cols() != b.rows()` or `out` is not `a.rows() × b.cols()`.
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul dimension mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(out.shape(), (m, n), "matmul output shape mismatch");
    let par = split_rows(m * k + k * n, m);
    if crate::microkernel::blocked_enabled(m * k * n) {
        crate::microkernel::gemm_nn(a, b, out, par);
    } else {
        out.as_mut_slice().fill(0.0);
        matmul_scalar_body(a, b, out, par);
    }
}

/// `C = A * B`, parallel over output rows above the shared work threshold.
/// Results are bitwise identical to [`matmul_seq`].
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut c);
    c
}

/// `C = Aᵀ * B` written into `out` (no allocation, no materialized
/// transpose).
///
/// # Panics
/// Panics if `a.rows() != b.rows()` or `out` is not `a.cols() × b.cols()`.
pub fn matmul_at_b_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "AᵀB dimension mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, ka, kb) = (a.rows(), a.cols(), b.cols());
    assert_eq!(out.shape(), (ka, kb), "AᵀB output shape mismatch");
    // Both paths stay sequential (each row of A touches all of C; C is
    // small in our use: k×k Gram matrices inside NNMF). The blocked
    // kernel turns the scatter into MR×NR register tiles over
    // contiguous row slices — bitwise identical (see microkernel docs).
    if crate::microkernel::blocked_enabled(m * ka * kb) {
        crate::microkernel::gemm_tn(a, b, out);
        return;
    }
    out.as_mut_slice().fill(0.0);
    for i in 0..m {
        let arow = a.row(i);
        let brow = b.row(i);
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = out.row_mut(p);
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// `C = Aᵀ * B` without materializing the transpose.
///
/// # Panics
/// Panics if `a.rows() != b.rows()`.
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.cols(), b.cols());
    matmul_at_b_into(a, b, &mut c);
    c
}

/// `C = A * Bᵀ` written into `out` (no allocation). Parallel over output
/// rows above the shared work threshold.
///
/// # Panics
/// Panics if `a.cols() != b.cols()` or `out` is not `a.rows() × b.rows()`.
pub fn matmul_a_bt_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "ABᵀ dimension mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, n) = (a.rows(), b.rows());
    let k = a.cols();
    assert_eq!(out.shape(), (m, n), "ABᵀ output shape mismatch");
    let par = split_rows(m * k + n * k, m);
    if crate::microkernel::blocked_enabled(m * k * n) {
        crate::microkernel::gemm_nt(a, b, out, par);
        return;
    }
    let body = |i: usize, crow: &mut [f64]| {
        let arow = a.row(i);
        for (j, cv) in crow.iter_mut().enumerate() {
            *cv = dot(arow, b.row(j));
        }
    };
    if par {
        out.as_mut_slice()
            .par_chunks_mut(n.max(1))
            .enumerate()
            .for_each(|(i, crow)| body(i, crow));
    } else {
        for i in 0..m {
            body(i, out.row_mut(i));
        }
    }
}

/// `C = A * Bᵀ`, parallel over output rows.
///
/// # Panics
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.rows());
    matmul_a_bt_into(a, b, &mut c);
    c
}

/// Gram matrix `G = Aᵀ A` (symmetric; computed once per NNMF sweep).
pub fn gram(a: &Matrix) -> Matrix {
    matmul_at_b(a, a)
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics (debug) if the lengths differ; in release the shorter length wins,
/// so callers must uphold the contract.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y += alpha * x` over slices.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// Scale a slice in place.
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// Entrywise sum `A + B`.
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    zip_with(a, b, |x, y| x + y)
}

/// Entrywise difference `A - B`.
pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    zip_with(a, b, |x, y| x - y)
}

/// Entrywise (Hadamard) product `A ⊙ B`.
pub fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    zip_with(a, b, |x, y| x * y)
}

/// Entrywise combination of two same-shape matrices.
///
/// # Panics
/// Panics if the shapes differ.
pub fn zip_with(a: &Matrix, b: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "entrywise shape mismatch");
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| f(x, y))
        .collect();
    Matrix::from_vec(a.rows(), a.cols(), data)
}

/// `alpha * A`.
pub fn scale(a: &Matrix, alpha: f64) -> Matrix {
    a.map(|v| v * alpha)
}

/// Checked `C = A * B`: validates shapes before delegating to [`matmul`].
pub fn try_matmul(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    if a.cols() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul",
            left: a.shape(),
            right: b.shape(),
        });
    }
    Ok(matmul(a, b))
}

/// Checked `C = Aᵀ * B`: validates shapes before delegating to
/// [`matmul_at_b`].
pub fn try_matmul_at_b(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    if a.rows() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "AᵀB",
            left: a.shape(),
            right: b.shape(),
        });
    }
    Ok(matmul_at_b(a, b))
}

/// Checked `C = A * Bᵀ`: validates shapes before delegating to
/// [`matmul_a_bt`].
pub fn try_matmul_a_bt(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    if a.cols() != b.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "ABᵀ",
            left: a.shape(),
            right: b.shape(),
        });
    }
    Ok(matmul_a_bt(a, b))
}

/// Checked matrix–vector product: validates shapes before delegating to
/// [`matvec`].
pub fn try_matvec(a: &Matrix, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if a.cols() != x.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "matvec",
            left: a.shape(),
            right: (x.len(), 1),
        });
    }
    Ok(matvec(a, x))
}

/// Matrix–vector product `A x`.
///
/// # Panics
/// Panics if `a.cols() != x.len()`.
pub fn matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.cols(), x.len(), "matvec dimension mismatch");
    a.row_iter().map(|r| dot(r, x)).collect()
}

/// Vector–matrix product `xᵀ A` (returns a row vector of length `a.cols()`).
///
/// # Panics
/// Panics if `a.rows() != x.len()`.
pub fn vecmat(x: &[f64], a: &Matrix) -> Vec<f64> {
    assert_eq!(a.rows(), x.len(), "vecmat dimension mismatch");
    let mut out = vec![0.0; a.cols()];
    for (i, &xv) in x.iter().enumerate() {
        if xv == 0.0 {
            continue;
        }
        axpy(xv, a.row(i), &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Matrix, Matrix) {
        let a = Matrix::from_rows(&[vec![1., 2.], vec![3., 4.], vec![5., 6.]]);
        let b = Matrix::from_rows(&[vec![7., 8., 9.], vec![10., 11., 12.]]);
        (a, b)
    }

    #[test]
    fn threshold_parsing() {
        assert_eq!(threshold_from_env(None), PAR_MIN_WORK_DEFAULT);
        assert_eq!(threshold_from_env(Some("1024")), 1024);
        assert_eq!(threshold_from_env(Some(" 8 ")), 8);
        assert_eq!(threshold_from_env(Some("0")), 0, "0 forces parallel");
        assert_eq!(threshold_from_env(Some("nonsense")), PAR_MIN_WORK_DEFAULT);
        assert_eq!(threshold_from_env(Some("-3")), PAR_MIN_WORK_DEFAULT);
    }

    #[test]
    fn threshold_override_is_injectable() {
        // Changing the threshold flips only the split decision, never any
        // result, so racing the other tests in this binary is harmless.
        set_par_threshold(Some(0));
        assert_eq!(par_threshold(), 0, "override wins over the environment");
        set_par_threshold(Some(1_000_000));
        assert_eq!(par_threshold(), 1_000_000);
        assert!(!split_rows(999_999, 4), "work below threshold stays serial");
        set_par_threshold(None);
        // With the override cleared, the next read lands back on whatever
        // the environment dictates (the default when the var is unset) —
        // CI runs this binary both ways.
        let env_value = threshold_from_env(std::env::var("ANCHORS_PAR_THRESHOLD").ok().as_deref());
        assert_eq!(par_threshold(), env_value);
    }

    #[test]
    fn split_rows_respects_parallelism_policy() {
        use crate::parallel;
        let _lock = parallel::TEST_CONFIG_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        parallel::set_par_mode(Some(parallel::ParMode::Outer));
        // Within an outer scope the kernels must not split, whatever the
        // threshold says; outside one, the work heuristic decides.
        let decisions = parallel::outer_map(2, |_| split_rows(usize::MAX / 2, 64));
        assert_eq!(
            decisions,
            vec![false, false],
            "inner splits are off inside outer fan-out"
        );
        assert!(!split_rows(0, 1), "a single row never splits");
        parallel::set_par_mode(Some(parallel::ParMode::Serial));
        assert!(
            !split_rows(usize::MAX / 2, 64),
            "serial mode turns kernel splits off"
        );
        parallel::set_par_mode(None);
    }

    #[test]
    fn into_kernels_overwrite_stale_output() {
        let (a, b) = small();
        let mut out = Matrix::zeros(3, 3);
        out.as_mut_slice().fill(99.0);
        matmul_into(&a, &b, &mut out);
        assert_eq!(out, matmul_seq(&a, &b));

        let mut atb = Matrix::zeros(2, 2);
        atb.as_mut_slice().fill(-5.0);
        matmul_at_b_into(&a, &a, &mut atb);
        assert_eq!(atb, matmul_at_b(&a, &a));

        let mut abt = Matrix::zeros(3, 3);
        abt.as_mut_slice().fill(42.0);
        matmul_a_bt_into(&a, &a, &mut abt);
        assert_eq!(abt, matmul_a_bt(&a, &a));
    }

    #[test]
    fn matmul_known_values() {
        let (a, b) = small();
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (3, 3));
        assert_eq!(c.row(0), &[27., 30., 33.]);
        assert_eq!(c.row(2), &[95., 106., 117.]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let (a, _) = small();
        let i2 = Matrix::identity(2);
        assert!(matmul(&a, &i2).approx_eq(&a, 1e-12));
        let i3 = Matrix::identity(3);
        assert!(matmul(&i3, &a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn parallel_matches_sequential() {
        // Large enough to trip the parallel path.
        let a = Matrix::from_fn(80, 70, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(70, 90, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let s = matmul_seq(&a, &b);
        let p = matmul(&a, &b);
        assert_eq!(s, p, "parallel kernel must be bitwise deterministic");
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let (a, _) = small();
        let b = Matrix::from_rows(&[vec![1., 0.], vec![0., 1.], vec![1., 1.]]);
        let direct = matmul_at_b(&a, &b);
        let explicit = matmul(&a.transpose(), &b);
        assert!(direct.approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(5, 3, |i, j| (i * j) as f64 + 1.0);
        let direct = matmul_a_bt(&a, &b);
        let explicit = matmul(&a, &b.transpose());
        assert!(direct.approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn gram_is_symmetric_psd_diag() {
        let a = Matrix::from_fn(6, 4, |i, j| ((i * j) % 5) as f64 - 1.0);
        let g = gram(&a);
        assert_eq!(g.shape(), (4, 4));
        for i in 0..4 {
            assert!(g.get(i, i) >= 0.0, "Gram diagonal must be nonnegative");
            for j in 0..4 {
                assert!((g.get(i, j) - g.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dot_axpy_scal() {
        assert_eq!(dot(&[1., 2., 3.], &[4., 5., 6.]), 32.0);
        let mut y = vec![1., 1.];
        axpy(2.0, &[3., 4.], &mut y);
        assert_eq!(y, vec![7., 9.]);
        scal(0.5, &mut y);
        assert_eq!(y, vec![3.5, 4.5]);
    }

    #[test]
    fn entrywise_ops() {
        let a = Matrix::from_rows(&[vec![1., 2.], vec![3., 4.]]);
        let b = Matrix::from_rows(&[vec![5., 6.], vec![7., 8.]]);
        assert_eq!(add(&a, &b).row(0), &[6., 8.]);
        assert_eq!(sub(&b, &a).row(1), &[4., 4.]);
        assert_eq!(hadamard(&a, &b).row(1), &[21., 32.]);
        assert_eq!(scale(&a, 3.0).get(0, 1), 6.0);
    }

    #[test]
    fn matvec_and_vecmat() {
        let (a, _) = small();
        assert_eq!(matvec(&a, &[1., 1.]), vec![3., 7., 11.]);
        assert_eq!(vecmat(&[1., 1., 1.], &a), vec![9., 12.]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn try_variants_report_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        match try_matmul(&a, &b) {
            Err(LinalgError::ShapeMismatch { op, left, right }) => {
                assert_eq!(op, "matmul");
                assert_eq!(left, (2, 3));
                assert_eq!(right, (2, 3));
            }
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
        assert!(try_matmul_at_b(&Matrix::zeros(2, 3), &Matrix::zeros(4, 3)).is_err());
        assert!(try_matmul_a_bt(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2)).is_err());
        assert!(try_matvec(&a, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn try_variants_match_panicking_kernels() {
        let (a, b) = small();
        assert_eq!(try_matmul(&a, &b).unwrap(), matmul(&a, &b));
        assert_eq!(
            try_matvec(&a, &[1.0, 1.0]).unwrap(),
            matvec(&a, &[1.0, 1.0])
        );
    }

    #[test]
    fn zero_sized_edge_cases() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (0, 4));
        let g = gram(&Matrix::zeros(0, 2));
        assert_eq!(g.shape(), (2, 2));
        assert_eq!(g.sum(), 0.0);
    }
}
