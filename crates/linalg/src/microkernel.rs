//! Cache-blocked, autovectorizer-friendly microkernels.
//!
//! The scalar multiply kernels in [`crate::ops`] compute each output
//! element as one long fused-multiply-add chain (`dot`) or as a
//! scatter of rank-1 updates. Both shapes leave the CPU mostly idle:
//! a serial f64 FMA chain retires one add per add-latency (3–5
//! cycles), so a 1024-long dot product costs ~4k cycles regardless of
//! SIMD width. The kernels here restructure the same arithmetic into
//! register tiles of [`MR`]×[`NR`] independent accumulators over
//! packed, zero-padded panels, which gives the autovectorizer
//! `MR`×`NR/LANES` independent vector FMA chains — enough to hide the
//! latency and run at FMA throughput instead.
//!
//! ## Bitwise parity with the scalar kernels
//!
//! Every kernel in this module performs, for each output element, the
//! *same additions in the same order* as its scalar counterpart:
//!
//! * the reduction index (`p` for `A·B`/`A·Bᵀ`, the row index for
//!   `Aᵀ·B`) always advances sequentially per element — tiles span
//!   *independent* output elements, never the reduction;
//! * panel padding appends `0.0 · 0.0 = +0.0` terms, and the scalar
//!   kernels' `a == 0.0` skips remove `±0.0` terms; an IEEE-754
//!   accumulator that starts at `+0.0` and only ever adds products is
//!   changed by a zero term only if it is exactly `-0.0`, which the
//!   add sequence here cannot produce (round-to-nearest sums are
//!   `-0.0` only when both operands are);
//! * edge rows/columns that do not fill a tile fall back to the exact
//!   scalar loop.
//!
//! So `scalar` and `blocked` agree **bitwise** (the documented
//! contract is ≤1 ulp; the implementation achieves 0), and the
//! runtime dispatch below never changes results — only speed.
//!
//! ## Dispatch
//!
//! [`kernel_mode`] reads `ANCHORS_KERNEL` (`scalar` | `blocked`,
//! cached after first read, injectable via [`set_kernel_mode`] like
//! `ops::set_par_threshold`). Unset means `auto`: problems with at
//! least [`BLOCKED_MIN_WORK`] multiply-adds take the blocked path,
//! small problems keep the scalar loops — packing a panel for a 5×7
//! matrix costs more than it saves, and the tiny-shape tests keep
//! exercising the scalar oracle they were written against.
//!
//! Packing buffers live in a per-thread arena ([`with_arena`]), so a
//! warm fit iteration allocates nothing — the allocation-probe tests
//! in `anchors-factor` hold under `ANCHORS_KERNEL=blocked` too.

use crate::matrix::Matrix;
use crate::sparse::CsrMatrix;
use rayon::prelude::*;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Register-tile rows: independent output rows per microkernel call.
pub const MR: usize = 4;
/// Register-tile columns: independent output columns per microkernel
/// call (two 4-wide f64 vectors on AVX2, one on AVX-512).
pub const NR: usize = 8;

/// Multiply-add count below which `auto` dispatch keeps the scalar
/// path. Chosen so the NNMF toy/test shapes (≤ a few thousand FMA)
/// stay scalar while every bench-scale product (millions) blocks.
pub const BLOCKED_MIN_WORK: usize = 16 * 1024;

/// Kernel selection policy. See [`kernel_mode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Shape-based dispatch: blocked above [`BLOCKED_MIN_WORK`].
    Auto,
    /// Always the scalar loops (the historical kernels).
    Scalar,
    /// Always the blocked microkernels (parity testing / benches).
    Blocked,
}

/// Sentinel meaning "no cached value: consult the environment".
const MODE_UNSET: u8 = u8::MAX;

static KERNEL_MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

fn mode_to_u8(mode: KernelMode) -> u8 {
    match mode {
        KernelMode::Auto => 0,
        KernelMode::Scalar => 1,
        KernelMode::Blocked => 2,
    }
}

fn mode_from_u8(v: u8) -> KernelMode {
    match v {
        1 => KernelMode::Scalar,
        2 => KernelMode::Blocked,
        _ => KernelMode::Auto,
    }
}

/// Parse an `ANCHORS_KERNEL` override; unknown values mean `Auto`.
fn mode_from_env(raw: Option<&str>) -> KernelMode {
    match raw.map(str::trim) {
        Some(s) if s.eq_ignore_ascii_case("scalar") => KernelMode::Scalar,
        Some(s) if s.eq_ignore_ascii_case("blocked") => KernelMode::Blocked,
        _ => KernelMode::Auto,
    }
}

/// The kernel selection policy every multiply dispatch consults. Comes
/// from [`set_kernel_mode`] if an override is injected, else from the
/// `ANCHORS_KERNEL` environment variable (cached after the first
/// read). Changing the mode never changes results: scalar and blocked
/// kernels are bitwise identical (see module docs).
pub fn kernel_mode() -> KernelMode {
    match KERNEL_MODE.load(Ordering::Relaxed) {
        MODE_UNSET => {
            let m = mode_from_env(std::env::var("ANCHORS_KERNEL").ok().as_deref());
            KERNEL_MODE.store(mode_to_u8(m), Ordering::Relaxed);
            m
        }
        v => mode_from_u8(v),
    }
}

/// Inject a kernel mode, overriding the environment (test/bench hook,
/// mirroring `ops::set_par_threshold`). `None` clears the override and
/// the cache, so the next read consults `ANCHORS_KERNEL` again.
pub fn set_kernel_mode(mode: Option<KernelMode>) {
    KERNEL_MODE.store(mode.map_or(MODE_UNSET, mode_to_u8), Ordering::Relaxed);
}

/// Should a product with `work` multiply-adds take the blocked path?
#[inline]
pub fn blocked_enabled(work: usize) -> bool {
    match kernel_mode() {
        KernelMode::Scalar => false,
        KernelMode::Blocked => true,
        KernelMode::Auto => work >= BLOCKED_MIN_WORK,
    }
}

thread_local! {
    /// Per-thread packing arena. Taken (not borrowed) for the duration
    /// of a kernel so a rayon worker stealing another blocked kernel
    /// mid-wait gets a fresh buffer instead of a RefCell panic.
    static PACK_ARENA: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` over a zeroed-on-demand scratch slice of `len` f64s from
/// the per-thread arena. Steady state (len ≤ high-water mark) performs
/// no heap allocation.
fn with_arena<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    let mut buf = PACK_ARENA.with(|c| std::mem::take(&mut *c.borrow_mut()));
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
    let out = f(&mut buf[..len]);
    PACK_ARENA.with(|c| {
        let mut slot = c.borrow_mut();
        if slot.capacity() < buf.capacity() {
            *slot = buf;
        }
    });
    out
}

/// Number of `NR`-wide column tiles covering `n` columns.
#[inline]
fn tiles(n: usize) -> usize {
    n.div_ceil(NR)
}

/// Rows per parallel chunk: a multiple of `MR` big enough to amortize
/// rayon task overhead.
const PAR_ROW_CHUNK: usize = 64;

// ---------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------

/// Pack `B` (`kc×n`, row-major) into `tiles(n)` panels of `kc×NR`,
/// reduction-major within each panel, zero-padding the column tail:
/// `panel[jt][p*NR + j] = B[p][jt*NR + j]` (or `0.0` past `n`).
fn pack_nn(b: &Matrix, kc: usize, n: usize, buf: &mut [f64]) {
    let nt = tiles(n);
    for jt in 0..nt {
        let jc = jt * NR;
        let w = NR.min(n - jc);
        let panel = &mut buf[jt * kc * NR..(jt + 1) * kc * NR];
        for p in 0..kc {
            let brow = &b.row(p)[jc..jc + w];
            let slot = &mut panel[p * NR..p * NR + NR];
            slot[..w].copy_from_slice(brow);
            slot[w..].fill(0.0);
        }
    }
}

/// Pack `B` (`n×kc`, row-major — the transposed operand of `A·Bᵀ`)
/// into the same reduction-major panel layout as [`pack_nn`]:
/// `panel[jt][p*NR + j] = B[jt*NR + j][p]` (or `0.0` past `n` rows).
fn pack_nt(b: &Matrix, kc: usize, n: usize, buf: &mut [f64]) {
    let nt = tiles(n);
    for jt in 0..nt {
        let jc = jt * NR;
        let w = NR.min(n - jc);
        let panel = &mut buf[jt * kc * NR..(jt + 1) * kc * NR];
        panel.fill(0.0);
        for j in 0..w {
            let brow = b.row(jc + j);
            for p in 0..kc {
                panel[p * NR + j] = brow[p];
            }
        }
    }
}

// ---------------------------------------------------------------------
// Dense microkernels
// ---------------------------------------------------------------------

/// The MR×NR register-tile core: `acc[r][c] = Σ_p arows[r][p] *
/// panel[p*NR + c]`, reduction strictly in `p` order per element, then
/// stored (overwriting) into the first `w` columns of each output row.
#[inline]
fn tile_mr(arows: [&[f64]; MR], kc: usize, panel: &[f64], orows: [&mut [f64]; MR], w: usize) {
    let mut acc = [[0.0f64; NR]; MR];
    let (a0, a1, a2, a3) = (
        &arows[0][..kc],
        &arows[1][..kc],
        &arows[2][..kc],
        &arows[3][..kc],
    );
    for (p, bv) in panel[..kc * NR].chunks_exact(NR).enumerate() {
        let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
        for c in 0..NR {
            acc[0][c] += v0 * bv[c];
        }
        for c in 0..NR {
            acc[1][c] += v1 * bv[c];
        }
        for c in 0..NR {
            acc[2][c] += v2 * bv[c];
        }
        for c in 0..NR {
            acc[3][c] += v3 * bv[c];
        }
    }
    for (r, orow) in orows.into_iter().enumerate() {
        orow[..w].copy_from_slice(&acc[r][..w]);
    }
}

/// One-row edge variant of [`tile_mr`].
#[inline]
fn tile_1(arow: &[f64], kc: usize, panel: &[f64], orow: &mut [f64], w: usize) {
    let mut acc = [0.0f64; NR];
    let a = &arow[..kc];
    for (p, bv) in panel[..kc * NR].chunks_exact(NR).enumerate() {
        let v = a[p];
        for c in 0..NR {
            acc[c] += v * bv[c];
        }
    }
    orow[..w].copy_from_slice(&acc[..w]);
}

/// Compute rows `[i0, i0+rows)` of `out = A·panels` where `panels` is
/// the packed reduction-major form of the right operand. `out_rows` is
/// the raw slice of those output rows (`rows * n` long).
fn gemm_rows(a: &Matrix, kc: usize, n: usize, panels: &[f64], i0: usize, out_rows: &mut [f64]) {
    let rows = out_rows.len().checked_div(n).unwrap_or(0);
    let nt = tiles(n);
    let mut r = 0;
    while r + MR <= rows {
        let (c0, rest) = out_rows[r * n..].split_at_mut(n);
        let (c1, rest) = rest.split_at_mut(n);
        let (c2, rest) = rest.split_at_mut(n);
        let (c3, _) = rest.split_at_mut(n);
        let mut orows = [c0, c1, c2, c3];
        let arows = [
            a.row(i0 + r),
            a.row(i0 + r + 1),
            a.row(i0 + r + 2),
            a.row(i0 + r + 3),
        ];
        for jt in 0..nt {
            let jc = jt * NR;
            let w = NR.min(n - jc);
            let panel = &panels[jt * kc * NR..(jt + 1) * kc * NR];
            let [o0, o1, o2, o3] = &mut orows;
            tile_mr(
                arows,
                kc,
                panel,
                [&mut o0[jc..], &mut o1[jc..], &mut o2[jc..], &mut o3[jc..]],
                w,
            );
        }
        r += MR;
    }
    while r < rows {
        let orow = &mut out_rows[r * n..(r + 1) * n];
        let arow = a.row(i0 + r);
        for jt in 0..nt {
            let jc = jt * NR;
            let w = NR.min(n - jc);
            let panel = &panels[jt * kc * NR..(jt + 1) * kc * NR];
            tile_1(arow, kc, panel, &mut orow[jc..], w);
        }
        r += 1;
    }
}

/// Shared driver for `A·B` / `A·Bᵀ` once the right operand is packed.
fn gemm_packed(a: &Matrix, kc: usize, n: usize, out: &mut Matrix, par: bool, panels: &[f64]) {
    let m = a.rows();
    if par && m >= 2 {
        out.as_mut_slice()
            .par_chunks_mut((PAR_ROW_CHUNK * n).max(1))
            .enumerate()
            .for_each(|(ci, chunk)| {
                gemm_rows(a, kc, n, panels, ci * PAR_ROW_CHUNK, chunk);
            });
    } else {
        gemm_rows(a, kc, n, panels, 0, out.as_mut_slice());
    }
}

/// Blocked `out = A · B` (`m×kc` by `kc×n`). Overwrites `out`
/// entirely; bitwise identical to the scalar ikj kernel.
pub fn gemm_nn(a: &Matrix, b: &Matrix, out: &mut Matrix, par: bool) {
    let (kc, n) = (a.cols(), b.cols());
    if out.is_empty() {
        return;
    }
    if kc == 0 || n == 0 {
        out.as_mut_slice().fill(0.0);
        return;
    }
    with_arena(tiles(n) * kc * NR, |buf| {
        pack_nn(b, kc, n, buf);
        gemm_packed(a, kc, n, out, par, buf);
    });
}

/// Blocked `out = A · Bᵀ` (`m×kc` by `n×kc`). Overwrites `out`
/// entirely; bitwise identical to the scalar rows-of-dots kernel.
pub fn gemm_nt(a: &Matrix, b: &Matrix, out: &mut Matrix, par: bool) {
    let (kc, n) = (a.cols(), b.rows());
    if out.is_empty() {
        return;
    }
    if kc == 0 || n == 0 {
        out.as_mut_slice().fill(0.0);
        return;
    }
    with_arena(tiles(n) * kc * NR, |buf| {
        pack_nt(b, kc, n, buf);
        gemm_packed(a, kc, n, out, par, buf);
    });
}

/// Blocked `out = Aᵀ · B` (`a: m×n`, `b: m×p`, `out: n×p`): the scalar
/// scatter restructured into `MR`-row reduction blocks. One pass streams
/// `A` row-major; within a block each output row `out[j]` is loaded once
/// and takes the block's `MR` contributions back to back (in ascending
/// `i`, so the per-element reduction order — and the `a_ij == 0` skip —
/// is exactly the scalar kernel's, hence bitwise identity; see module
/// docs). Cuts the `out`-row read-modify-write traffic `MR`-fold on
/// dense data while keeping the zero skip that makes the scatter cheap
/// on sparse-ish data. Overwrites `out`; sequential, like its scalar
/// counterpart.
pub fn gemm_tn(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, n) = a.shape();
    let p = b.cols();
    if out.is_empty() {
        return;
    }
    out.as_mut_slice().fill(0.0);
    if m == 0 || p == 0 {
        return;
    }
    let ob = out.as_mut_slice();
    let mut i = 0;
    while i + MR <= m {
        let arows = [a.row(i), a.row(i + 1), a.row(i + 2), a.row(i + 3)];
        let brows = [b.row(i), b.row(i + 1), b.row(i + 2), b.row(i + 3)];
        for j in 0..n {
            let av = [arows[0][j], arows[1][j], arows[2][j], arows[3][j]];
            if av == [0.0; MR] {
                continue;
            }
            let crow = &mut ob[j * p..j * p + p];
            for (r, &v) in av.iter().enumerate() {
                if v == 0.0 {
                    continue;
                }
                for (c, &bv) in crow.iter_mut().zip(brows[r]) {
                    *c += v * bv;
                }
            }
        }
        i += MR;
    }
    while i < m {
        let arow = a.row(i);
        let brow = b.row(i);
        for (j, &v) in arow.iter().enumerate() {
            if v == 0.0 {
                continue;
            }
            let crow = &mut ob[j * p..j * p + p];
            for (c, &bv) in crow.iter_mut().zip(brow) {
                *c += v * bv;
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------
// CSR row-panel kernel
// ---------------------------------------------------------------------

/// Blocked CSR `out = A · Bᵀ` (`a` sparse `m×n`, `b` dense `p×n`):
/// `Bᵀ` is packed once into a row-major `n×p` panel so each stored
/// entry `(j, v)` of a CSR row turns into one contiguous `p`-wide
/// vector FMA `out[i][..] += v · Bᵀ[j][..]` — instead of the scalar
/// kernel's `p` strided gather-dots per row. Per output element the
/// stored-entry order is unchanged, so results are bitwise identical.
pub fn csr_abt(a: &CsrMatrix, b: &Matrix, out: &mut Matrix, par: bool) {
    let (m, n) = a.shape();
    let p = b.rows();
    if out.is_empty() {
        return;
    }
    if p == 0 {
        return;
    }
    with_arena(n * p, |bt| {
        for (t, brow) in (0..p).map(|t| (t, b.row(t))) {
            for (j, &v) in brow.iter().enumerate() {
                bt[j * p + t] = v;
            }
        }
        let body = |i: usize, orow: &mut [f64]| {
            orow.fill(0.0);
            let (idx, vals) = a.row(i);
            for (&j, &v) in idx.iter().zip(vals) {
                let brow = &bt[j * p..j * p + p];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += v * bv;
                }
            }
        };
        if par && m >= 2 {
            out.as_mut_slice()
                .par_chunks_mut(p)
                .enumerate()
                .for_each(|(i, orow)| body(i, orow));
        } else {
            for i in 0..m {
                body(i, out.row_mut(i));
            }
        }
    });
}

// ---------------------------------------------------------------------
// Row-combination kernel (residual reconstruct, HALS H deltas)
// ---------------------------------------------------------------------

/// `acc[j] += Σ_t coeff(t) · rows[t][j]`, accumulated strictly in `t`
/// order per element, skipping `coeff(t) == 0.0` terms — the "skip
/// exact-zero loadings" parity rule of `kernels.rs`. The blocked path
/// fuses [`MR`] rows per sweep of `acc` (¼ the memory passes); each
/// element still receives one separately-rounded add per term, in
/// term order, so both paths are bitwise identical to a sequence of
/// `ops::axpy` calls.
pub fn axpy_rows(coeffs: &[f64], rows: &Matrix, acc: &mut [f64]) {
    debug_assert_eq!(coeffs.len(), rows.rows());
    debug_assert_eq!(acc.len(), rows.cols());
    let n = acc.len();
    if !blocked_enabled(coeffs.len() * n) {
        for (t, &cv) in coeffs.iter().enumerate() {
            if cv == 0.0 {
                continue;
            }
            crate::ops::axpy(cv, rows.row(t), acc);
        }
        return;
    }
    // Gather the surviving terms, then drain them MR at a time.
    let mut pend: [(f64, usize); MR] = [(0.0, 0); MR];
    let mut np = 0;
    for (t, &cv) in coeffs.iter().enumerate() {
        if cv == 0.0 {
            continue;
        }
        pend[np] = (cv, t);
        np += 1;
        if np == MR {
            let (r0, r1, r2, r3) = (
                rows.row(pend[0].1),
                rows.row(pend[1].1),
                rows.row(pend[2].1),
                rows.row(pend[3].1),
            );
            let (c0, c1, c2, c3) = (pend[0].0, pend[1].0, pend[2].0, pend[3].0);
            for j in 0..n {
                let mut v = acc[j];
                v += c0 * r0[j];
                v += c1 * r1[j];
                v += c2 * r2[j];
                v += c3 * r3[j];
                acc[j] = v;
            }
            np = 0;
        }
    }
    for &(cv, t) in &pend[..np] {
        crate::ops::axpy(cv, rows.row(t), acc);
    }
}

// ---------------------------------------------------------------------
// HALS W-column update
// ---------------------------------------------------------------------

/// The HALS W-sweep `W[:,t] ← max(0, W[:,t] + (AHᵀ − W·HHᵀ)[:,t] /
/// (HHᵀ)[t,t])` for every column `t` with `(HHᵀ)[t,t] > eps`, Gauss–
/// Seidel in `t` (each column update sees the columns already updated
/// this sweep).
///
/// The scalar path is the historical `t`-outer/`i`-inner loop from
/// `anchors-factor`. The blocked path walks `MR` rows at a time with
/// `t` innermost — rows are independent and each `(i,t)` update reads
/// and writes only row `i`, so the nest interchange performs the same
/// arithmetic in the same per-element order (bitwise identical) while
/// keeping each W row register-resident for the whole sweep and
/// giving the autovectorizer `MR` independent reduction chains.
pub fn hals_w_update(w: &mut Matrix, aht: &Matrix, hht: &Matrix, eps: f64) {
    let (m, k) = w.shape();
    debug_assert_eq!(aht.shape(), (m, k));
    debug_assert_eq!(hht.shape(), (k, k));
    if !blocked_enabled(m * k * k) {
        for t in 0..k {
            let gtt = hht.get(t, t);
            if gtt <= eps {
                continue;
            }
            for i in 0..m {
                let mut d = aht.get(i, t);
                for (s, &wv) in w.row(i).iter().enumerate() {
                    d -= hht.get(t, s) * wv;
                }
                let nv = (w.get(i, t) + d / gtt).max(0.0);
                w.set(i, t, nv);
            }
        }
        return;
    }
    let update_row = |wrow: &mut [f64], arow: &[f64]| {
        for t in 0..k {
            let gtt = hht.get(t, t);
            if gtt <= eps {
                continue;
            }
            let grow = hht.row(t);
            let mut d = arow[t];
            for s in 0..k {
                d -= grow[s] * wrow[s];
            }
            wrow[t] = (wrow[t] + d / gtt).max(0.0);
        }
    };
    if k == 0 {
        return;
    }
    let mut i = 0;
    let wdata = w.as_mut_slice();
    let mut rows = wdata.chunks_exact_mut(k);
    while i + MR <= m {
        let (w0, w1, w2, w3) = (
            rows.next().unwrap(),
            rows.next().unwrap(),
            rows.next().unwrap(),
            rows.next().unwrap(),
        );
        let (a0, a1, a2, a3) = (aht.row(i), aht.row(i + 1), aht.row(i + 2), aht.row(i + 3));
        for t in 0..k {
            let gtt = hht.get(t, t);
            if gtt <= eps {
                continue;
            }
            let grow = hht.row(t);
            let (mut d0, mut d1, mut d2, mut d3) = (a0[t], a1[t], a2[t], a3[t]);
            for (s, &g) in grow.iter().enumerate() {
                d0 -= g * w0[s];
                d1 -= g * w1[s];
                d2 -= g * w2[s];
                d3 -= g * w3[s];
            }
            w0[t] = (w0[t] + d0 / gtt).max(0.0);
            w1[t] = (w1[t] + d1 / gtt).max(0.0);
            w2[t] = (w2[t] + d2 / gtt).max(0.0);
            w3[t] = (w3[t] + d3 / gtt).max(0.0);
        }
        i += MR;
    }
    for wrow in rows {
        update_row(wrow, aht.row(i));
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill (keeps these tests independent
    /// of the `rand` crate's stream, which differs under the offline
    /// stubs).
    fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            // ~20% exact zeros exercise the scalar kernels' skip rule.
            if u < 0.2 {
                0.0
            } else {
                u * 2.0 - 0.9
            }
        })
    }

    fn scalar_nn(a: &Matrix, b: &Matrix) -> Matrix {
        crate::ops::matmul_seq(a, b)
    }

    fn scalar_nt(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                out.set(i, j, crate::ops::dot(a.row(i), b.row(j)));
            }
        }
        out
    }

    fn scalar_tn(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.cols(), b.cols());
        for i in 0..a.rows() {
            let arow = a.row(i);
            let brow = b.row(i);
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                for (cv, &bv) in out.row_mut(p).iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
        out
    }

    /// Ragged and exact-tile shapes: (m, k, n).
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (4, 8, 8),
        (5, 3, 7),
        (8, 16, 8),
        (13, 17, 11),
        (16, 5, 9),
        (33, 40, 23),
    ];

    #[test]
    fn gemm_nn_bitwise_matches_scalar() {
        for &(m, k, n) in SHAPES {
            let a = lcg_matrix(m, k, 7 + m as u64);
            let b = lcg_matrix(k, n, 99 + n as u64);
            let mut out = Matrix::zeros(m, n);
            out.as_mut_slice().fill(f64::NAN); // must be fully overwritten
            gemm_nn(&a, &b, &mut out, false);
            assert_eq!(out, scalar_nn(&a, &b), "shape ({m},{k},{n})");
            let mut par_out = Matrix::zeros(m, n);
            gemm_nn(&a, &b, &mut par_out, true);
            assert_eq!(par_out, out, "par split must not change bits");
        }
    }

    #[test]
    fn gemm_nt_bitwise_matches_scalar() {
        for &(m, k, n) in SHAPES {
            let a = lcg_matrix(m, k, 3 + k as u64);
            let b = lcg_matrix(n, k, 51 + m as u64);
            let mut out = Matrix::zeros(m, n);
            out.as_mut_slice().fill(f64::NAN);
            gemm_nt(&a, &b, &mut out, false);
            assert_eq!(out, scalar_nt(&a, &b), "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn gemm_tn_bitwise_matches_scalar() {
        for &(m, n, p) in SHAPES {
            let a = lcg_matrix(m, n, 23 + p as u64);
            let b = lcg_matrix(m, p, 5 + n as u64);
            let mut out = Matrix::zeros(n, p);
            out.as_mut_slice().fill(f64::NAN);
            gemm_tn(&a, &b, &mut out);
            assert_eq!(out, scalar_tn(&a, &b), "shape ({m},{n},{p})");
        }
    }

    #[test]
    fn csr_abt_bitwise_matches_scalar_csr() {
        for &(m, n, p) in SHAPES {
            let d = lcg_matrix(m, n, 67 + m as u64);
            let a = CsrMatrix::from_dense(&d);
            let b = lcg_matrix(p, n, 13 + p as u64);
            // Scalar CSR kernel: per-output gather-dot in stored order.
            let mut expect = Matrix::zeros(m, p);
            for i in 0..m {
                let (idx, vals) = a.row(i);
                for (t, o) in expect.row_mut(i).iter_mut().enumerate() {
                    let brow = b.row(t);
                    *o = idx.iter().zip(vals).map(|(&j, &v)| v * brow[j]).sum();
                }
            }
            let mut out = Matrix::zeros(m, p);
            out.as_mut_slice().fill(f64::NAN);
            csr_abt(&a, &b, &mut out, false);
            assert_eq!(out, expect, "shape ({m},{n},{p})");
        }
    }

    #[test]
    fn axpy_rows_matches_sequential_axpy_in_every_mode() {
        for &(k, n) in &[(1usize, 5usize), (4, 8), (7, 33), (12, 257)] {
            let h = lcg_matrix(k, n, 19);
            let mut coeffs: Vec<f64> = (0..k).map(|t| (t as f64) * 0.3 - 0.8).collect();
            coeffs[k / 2] = 0.0; // exercise the skip rule
            let mut expect = vec![0.125; n];
            for (t, &cv) in coeffs.iter().enumerate() {
                if cv != 0.0 {
                    crate::ops::axpy(cv, h.row(t), &mut expect);
                }
            }
            for mode in [KernelMode::Scalar, KernelMode::Blocked] {
                set_kernel_mode(Some(mode));
                let mut acc = vec![0.125; n];
                axpy_rows(&coeffs, &h, &mut acc);
                assert_eq!(acc, expect, "k={k} n={n} mode={mode:?}");
            }
            set_kernel_mode(None);
        }
    }

    #[test]
    fn hals_w_update_modes_agree_bitwise() {
        for &(m, k) in &[(3usize, 2usize), (9, 4), (18, 5), (35, 8)] {
            let mut w_s = lcg_matrix(m, k, 31).map(|v| v.abs());
            let mut w_b = w_s.clone();
            let aht = lcg_matrix(m, k, 7);
            let h = lcg_matrix(k, 2 * k + 3, 11).map(|v| v.abs());
            let hht = crate::ops::matmul_a_bt(&h, &h);
            set_kernel_mode(Some(KernelMode::Scalar));
            hals_w_update(&mut w_s, &aht, &hht, 1e-12);
            set_kernel_mode(Some(KernelMode::Blocked));
            hals_w_update(&mut w_b, &aht, &hht, 1e-12);
            set_kernel_mode(None);
            assert_eq!(w_s, w_b, "m={m} k={k}");
        }
    }

    #[test]
    fn mode_parsing_and_override() {
        assert_eq!(mode_from_env(None), KernelMode::Auto);
        assert_eq!(mode_from_env(Some("scalar")), KernelMode::Scalar);
        assert_eq!(mode_from_env(Some(" Blocked ")), KernelMode::Blocked);
        assert_eq!(mode_from_env(Some("nonsense")), KernelMode::Auto);
        set_kernel_mode(Some(KernelMode::Blocked));
        assert!(blocked_enabled(1), "forced blocked ignores work size");
        set_kernel_mode(Some(KernelMode::Scalar));
        assert!(!blocked_enabled(usize::MAX), "forced scalar ignores work");
        set_kernel_mode(None);
        let env_mode = mode_from_env(std::env::var("ANCHORS_KERNEL").ok().as_deref());
        assert_eq!(kernel_mode(), env_mode);
        if env_mode == KernelMode::Auto {
            assert!(!blocked_enabled(BLOCKED_MIN_WORK - 1));
            assert!(blocked_enabled(BLOCKED_MIN_WORK));
        }
    }

    #[test]
    fn zero_dimension_edge_cases() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 4);
        let mut out = Matrix::zeros(3, 4);
        out.as_mut_slice().fill(9.0);
        gemm_nn(&a, &b, &mut out, false);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
        let mut tn = Matrix::zeros(0, 4);
        gemm_tn(&Matrix::zeros(2, 0), &Matrix::zeros(2, 4), &mut tn);
        assert_eq!(tn.shape(), (0, 4));
    }
}
