//! Descriptive statistics, centering, covariance, and correlation.

use crate::matrix::Matrix;

/// Arithmetic mean (0 for an empty slice).
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Population variance (0 for slices shorter than 2).
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Population standard deviation.
pub fn stddev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Median (interpolated for even lengths; 0 for empty input).
pub fn median(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mut s = x.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        0.5 * (s[n / 2 - 1] + s[n / 2])
    }
}

/// Pearson correlation of two equal-length slices (0 if either side is
/// constant).
///
/// # Panics
/// Panics if the lengths differ.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson length mismatch");
    if x.len() < 2 {
        return 0.0;
    }
    let (mx, my) = (mean(x), mean(y));
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx.sqrt() * syy.sqrt())
    }
}

/// Cosine similarity of two equal-length slices (0 if either is zero).
///
/// # Panics
/// Panics if the lengths differ.
pub fn cosine(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "cosine length mismatch");
    let nx = crate::norms::norm2(x);
    let ny = crate::norms::norm2(y);
    if nx == 0.0 || ny == 0.0 {
        0.0
    } else {
        crate::ops::dot(x, y) / (nx * ny)
    }
}

/// Center each column of `m` to zero mean, returning the column means.
pub fn center_cols(m: &mut Matrix) -> Vec<f64> {
    let (rows, cols) = m.shape();
    if rows == 0 {
        return vec![0.0; cols];
    }
    let mut means = m.col_sums();
    for v in &mut means {
        *v /= rows as f64;
    }
    for i in 0..rows {
        for (j, v) in m.row_mut(i).iter_mut().enumerate() {
            *v -= means[j];
        }
    }
    means
}

/// Sample covariance matrix of the columns of `m` (rows are observations).
/// Uses the `n - 1` denominator; returns a zero matrix when `rows < 2`.
pub fn covariance(m: &Matrix) -> Matrix {
    let (rows, cols) = m.shape();
    if rows < 2 {
        return Matrix::zeros(cols, cols);
    }
    let mut centered = m.clone();
    center_cols(&mut centered);
    let g = crate::ops::gram(&centered);
    crate::ops::scale(&g, 1.0 / (rows as f64 - 1.0))
}

/// Histogram of integer-valued observations: `counts[v]` = number of inputs
/// equal to `v`, for `v` in `0..=max`.
pub fn int_histogram(values: &[usize]) -> Vec<usize> {
    let max = values.iter().copied().max().unwrap_or(0);
    let mut counts = vec![0usize; max + 1];
    for &v in values {
        counts[v] += 1;
    }
    counts
}

/// Survival counts: `out[t]` = number of observations `>= t`, for
/// `t in 0..=max+1`. This is the form of the paper's Figure 3 statements
/// ("~50 tags appear in 2 or more courses").
pub fn survival_counts(values: &[usize]) -> Vec<usize> {
    let hist = int_histogram(values);
    let mut out = vec![0usize; hist.len() + 1];
    let mut acc = 0usize;
    for t in (0..hist.len()).rev() {
        acc += hist[t];
        out[t] = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_var() {
        assert_eq!(mean(&[1., 2., 3., 4.]), 2.5);
        assert_eq!(median(&[1., 3., 2.]), 2.0);
        assert_eq!(median(&[1., 2., 3., 4.]), 2.5);
        assert!((variance(&[2., 4., 4., 4., 5., 5., 7., 9.]) - 4.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_constant() {
        let x = [1., 2., 3., 4.];
        let y = [2., 4., 6., 8.];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let yn: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &yn) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[5., 5., 5., 5.]), 0.0);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1., 0.], &[0., 1.])).abs() < 1e-12);
        assert!((cosine(&[1., 1.], &[2., 2.]) - 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[0., 0.], &[1., 2.]), 0.0);
    }

    #[test]
    fn center_cols_zeroes_means() {
        let mut m = Matrix::from_rows(&[vec![1., 10.], vec![3., 20.], vec![5., 30.]]);
        let means = center_cols(&mut m);
        assert_eq!(means, vec![3.0, 20.0]);
        for s in m.col_sums() {
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn covariance_known() {
        // cols: x = [1,2,3], y = [2,4,6] → var(x)=1, var(y)=4, cov=2.
        let m = Matrix::from_rows(&[vec![1., 2.], vec![2., 4.], vec![3., 6.]]);
        let c = covariance(&m);
        assert!((c.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((c.get(1, 1) - 4.0).abs() < 1e-12);
        assert!((c.get(0, 1) - 2.0).abs() < 1e-12);
        assert!((c.get(1, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_and_survival() {
        let v = [1usize, 1, 2, 4];
        assert_eq!(int_histogram(&v), vec![0, 2, 1, 0, 1]);
        let s = survival_counts(&v);
        // >=0: 4, >=1: 4, >=2: 2, >=3: 1, >=4: 1, >=5: 0
        assert_eq!(s, vec![4, 4, 2, 1, 1, 0]);
    }

    #[test]
    fn survival_empty() {
        assert_eq!(survival_counts(&[]), vec![0, 0]);
    }
}
