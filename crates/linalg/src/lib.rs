//! # anchors-linalg
//!
//! Dense linear-algebra substrate for the `pdc-anchors` reproduction of
//! *Data-Driven Discovery of Anchor Points for PDC Content* (SC-W 2023).
//!
//! The paper's analysis is built on matrix computations over a
//! courses × curriculum-tags incidence matrix: non-negative matrix
//! factorization, PCA and MDS baselines, biclustering of the materials
//! matrix view, and similarity graphs for search. This crate provides the
//! kernels those algorithms are built from:
//!
//! * [`matrix::Matrix`] — dense row-major `f64` storage;
//! * [`ops`] — sequential and rayon-parallel multiply kernels (bitwise
//!   deterministic: the parallel kernels preserve the sequential per-entry
//!   reduction order);
//! * [`parallel`] — the execution policy arbitrating the inner kernel
//!   row-splits against outer fan-out over whole fits (restarts, rank
//!   scans, consensus runs), with `ANCHORS_PAR_MODE` /
//!   `ANCHORS_NUM_THREADS` knobs and injectable overrides;
//! * [`sparse::CsrMatrix`] — compressed sparse row storage with the same
//!   multiply kernels;
//! * [`kernels::MatKernels`] — the storage-generic kernel trait the NNMF
//!   solvers are written against (dense and CSR, bitwise-paired);
//! * [`microkernel`] — cache-blocked register-tiled microkernels behind
//!   the multiply kernels, shape-dispatched at runtime and overridable
//!   via `ANCHORS_KERNEL=scalar|blocked` (bitwise identical either way);
//! * [`eigen`] — cyclic-Jacobi symmetric eigendecomposition and power
//!   iteration;
//! * [`svd`] — exact thin SVD (Gram route) and randomized top-k SVD;
//! * [`norms`], [`stats`], [`distance`] — norms, descriptive statistics,
//!   and pairwise distance/similarity kernels.
//!
//! All stochastic routines take explicit seeds; there is no ambient RNG.

pub mod distance;
pub mod eigen;
pub mod error;
pub mod kernels;
pub mod matrix;
pub mod microkernel;
pub mod norms;
pub mod ops;
pub mod parallel;
pub mod sketch;
pub mod solve;
pub mod sparse;
pub mod stats;
pub mod svd;

pub use distance::{pairwise_cosine_similarity, pairwise_distances, Metric};
pub use eigen::{power_iteration, sym_eigen, SymEigen};
pub use error::LinalgError;
pub use kernels::{Backend, DataMatrix, MatKernels};
pub use matrix::Matrix;
pub use microkernel::{kernel_mode, set_kernel_mode, KernelMode};
pub use norms::{frobenius, frobenius_diff, frobenius_sq, relative_error};
pub use ops::{
    gram, matmul, matmul_a_bt, matmul_a_bt_into, matmul_at_b, matmul_at_b_into, matmul_into,
    matmul_seq, par_threshold, set_par_threshold, try_matmul, try_matmul_a_bt, try_matmul_at_b,
    try_matvec,
};
pub use parallel::{ParMode, Parallelism};
pub use sketch::{sketch_rows, SketchConfig, SketchKind};
pub use solve::{
    cholesky, lstsq, nnls, nnls_gram_f32, solve_spd, try_cholesky, try_lstsq, try_nnls,
    try_nnls_multi, try_solve_spd,
};
pub use sparse::CsrMatrix;
pub use svd::{randomized_svd, thin_svd, Svd};
