//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The matrices we decompose are small and dense (covariance matrices of a
//! few hundred tags, double-centered Gram matrices of tens of courses), for
//! which Jacobi is simple, robust, and accurate to machine precision.

use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition: `A = V diag(λ) Vᵀ`.
///
/// Eigenvalues are sorted in **descending** order; `vectors` stores the
/// corresponding eigenvectors as columns.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, aligned with `values`.
    pub vectors: Matrix,
}

/// Compute all eigenvalues/eigenvectors of a symmetric matrix with the
/// cyclic Jacobi method.
///
/// `a` must be square and (numerically) symmetric; the routine symmetrizes
/// its working copy to guard against tiny asymmetries from upstream floating
/// point. Convergence: off-diagonal Frobenius norm below `1e-12 * ‖A‖_F`,
/// max 100 sweeps.
///
/// # Panics
/// Panics if `a` is not square.
pub fn sym_eigen(a: &Matrix) -> SymEigen {
    let n = a.rows();
    assert_eq!(n, a.cols(), "sym_eigen requires a square matrix");
    // Symmetrized working copy.
    let mut s = Matrix::from_fn(n, n, |i, j| 0.5 * (a.get(i, j) + a.get(j, i)));
    let mut v = Matrix::identity(n);
    if n <= 1 {
        return SymEigen {
            values: (0..n).map(|i| s.get(i, i)).collect(),
            vectors: v,
        };
    }

    let norm = crate::norms::frobenius(&s).max(f64::MIN_POSITIVE);
    let tol = 1e-12 * norm;

    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += s.get(i, j) * s.get(i, j);
            }
        }
        if (2.0 * off).sqrt() <= tol {
            break;
        }
        for p in 0..n - 1 {
            for q in (p + 1)..n {
                let apq = s.get(p, q);
                if apq.abs() <= tol / (n * n) as f64 {
                    continue;
                }
                let app = s.get(p, p);
                let aqq = s.get(q, q);
                // Classic Jacobi rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let sgn = t * c;
                // Update S = Jᵀ S J over rows/cols p and q.
                for k in 0..n {
                    let skp = s.get(k, p);
                    let skq = s.get(k, q);
                    s.set(k, p, c * skp - sgn * skq);
                    s.set(k, q, sgn * skp + c * skq);
                }
                for k in 0..n {
                    let spk = s.get(p, k);
                    let sqk = s.get(q, k);
                    s.set(p, k, c * spk - sgn * sqk);
                    s.set(q, k, sgn * spk + c * sqk);
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - sgn * vkq);
                    v.set(k, q, sgn * vkp + c * vkq);
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| s.get(i, i)).collect();
    order.sort_by(|&x, &y| diag[y].partial_cmp(&diag[x]).expect("NaN eigenvalue"));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vectors = v.permute_cols(&order);
    SymEigen { values, vectors }
}

/// Top eigenpair of a symmetric positive semi-definite matrix via power
/// iteration. Cheaper than a full Jacobi pass when only the dominant
/// direction is needed (e.g. spectral ordering in biclustering).
///
/// Returns `(eigenvalue, eigenvector)`. `seed_dir` provides a deterministic
/// start direction; it is projected and normalized internally.
///
/// # Panics
/// Panics if `a` is not square or `seed_dir.len() != n`.
pub fn power_iteration(a: &Matrix, seed_dir: &[f64], max_iter: usize, tol: f64) -> (f64, Vec<f64>) {
    let n = a.rows();
    assert_eq!(n, a.cols(), "power_iteration requires a square matrix");
    assert_eq!(seed_dir.len(), n, "seed length mismatch");
    let mut x: Vec<f64> = seed_dir.to_vec();
    let nx = crate::norms::norm2(&x);
    if nx == 0.0 {
        x = vec![1.0 / (n as f64).sqrt(); n];
    } else {
        for v in &mut x {
            *v /= nx;
        }
    }
    let mut lambda = 0.0;
    for _ in 0..max_iter {
        let y = crate::ops::matvec(a, &x);
        let ny = crate::norms::norm2(&y);
        if ny == 0.0 {
            return (0.0, x);
        }
        let next: Vec<f64> = y.iter().map(|v| v / ny).collect();
        let new_lambda = crate::ops::dot(&next, &crate::ops::matvec(a, &next));
        let delta = (new_lambda - lambda).abs();
        x = next;
        lambda = new_lambda;
        if delta <= tol * lambda.abs().max(1.0) {
            break;
        }
    }
    (lambda, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{matmul, matmul_at_b};

    fn reconstruct(e: &SymEigen) -> Matrix {
        let d = Matrix::diag(&e.values);
        matmul(&matmul(&e.vectors, &d), &e.vectors.transpose())
    }

    #[test]
    fn eigen_of_diagonal() {
        let a = Matrix::diag(&[3.0, 1.0, 2.0]);
        let e = sym_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigen_2x2_known() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2., 1.], vec![1., 2.]]);
        let e = sym_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0[0] - v0[1]).abs() < 1e-8 || (v0[0] + v0[1]).abs() < 1e-8);
    }

    #[test]
    fn reconstruction_matches() {
        let base = Matrix::from_fn(5, 5, |i, j| ((i * 3 + j * 7) % 11) as f64);
        let a = crate::ops::add(&base, &base.transpose());
        let e = sym_eigen(&a);
        assert!(reconstruct(&e).approx_eq(&a, 1e-8));
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let base = Matrix::from_fn(6, 6, |i, j| ((i + 2 * j) % 7) as f64 - 3.0);
        let a = crate::ops::add(&base, &base.transpose());
        let e = sym_eigen(&a);
        let vtv = matmul_at_b(&e.vectors, &e.vectors);
        assert!(vtv.approx_eq(&Matrix::identity(6), 1e-8));
    }

    #[test]
    fn psd_gram_has_nonnegative_eigenvalues() {
        let a = Matrix::from_fn(8, 4, |i, j| ((i * j + i) % 5) as f64);
        let g = crate::ops::gram(&a);
        let e = sym_eigen(&g);
        for &l in &e.values {
            assert!(l > -1e-9, "PSD eigenvalue went negative: {l}");
        }
    }

    #[test]
    fn values_sorted_descending() {
        let base = Matrix::from_fn(7, 7, |i, j| ((5 * i + j * j) % 9) as f64);
        let a = crate::ops::add(&base, &base.transpose());
        let e = sym_eigen(&a);
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn power_iteration_matches_jacobi() {
        let base = Matrix::from_fn(5, 5, |i, j| ((i * 2 + j) % 6) as f64);
        let g = crate::ops::gram(&base); // PSD
        let e = sym_eigen(&g);
        let (l, v) = power_iteration(&g, &[1.0, 0.5, 0.25, 0.1, 0.9], 500, 1e-14);
        assert!((l - e.values[0]).abs() < 1e-6 * e.values[0].max(1.0));
        // Direction agreement up to sign.
        let c = crate::ops::dot(&v, &e.vectors.col(0)).abs();
        assert!(c > 1.0 - 1e-5, "cosine {c}");
    }

    #[test]
    fn trivial_sizes() {
        let e = sym_eigen(&Matrix::zeros(0, 0));
        assert!(e.values.is_empty());
        let e1 = sym_eigen(&Matrix::from_rows(&[vec![4.0]]));
        assert_eq!(e1.values, vec![4.0]);
    }
}
