//! Norms and normalization helpers.

use crate::matrix::Matrix;

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// 1-norm of a slice.
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Infinity norm of a slice.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// Frobenius norm of a matrix.
pub fn frobenius(a: &Matrix) -> f64 {
    norm2(a.as_slice())
}

/// Squared Frobenius norm of a matrix.
pub fn frobenius_sq(a: &Matrix) -> f64 {
    a.as_slice().iter().map(|v| v * v).sum()
}

/// Frobenius norm of `A - B`.
///
/// # Panics
/// Panics if the shapes differ.
pub fn frobenius_diff(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape(), "frobenius_diff shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Relative reconstruction error `‖A - B‖_F / ‖A‖_F` (0 if `A` is all-zero
/// and `B == A`).
pub fn relative_error(a: &Matrix, b: &Matrix) -> f64 {
    let denom = frobenius(a);
    let num = frobenius_diff(a, b);
    if denom == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / denom
    }
}

/// Normalize each row of `m` to unit Euclidean norm (zero rows untouched).
pub fn normalize_rows(m: &mut Matrix) {
    for i in 0..m.rows() {
        let r = m.row_mut(i);
        let n = norm2(r);
        if n > 0.0 {
            for v in r {
                *v /= n;
            }
        }
    }
}

/// Normalize each column of `m` to unit Euclidean norm (zero cols untouched).
/// Returns the original column norms (useful to rescale a paired factor).
pub fn normalize_cols(m: &mut Matrix) -> Vec<f64> {
    let (rows, cols) = m.shape();
    let mut norms = vec![0.0; cols];
    for i in 0..rows {
        for (j, &v) in m.row(i).iter().enumerate() {
            norms[j] += v * v;
        }
    }
    for n in &mut norms {
        *n = n.sqrt();
    }
    for i in 0..rows {
        let r = m.row_mut(i);
        for (j, v) in r.iter_mut().enumerate() {
            if norms[j] > 0.0 {
                *v /= norms[j];
            }
        }
    }
    norms
}

/// Scale rows so each sums to one (zero rows untouched). Common for turning
/// NNMF `W` rows into a mixture profile over types.
pub fn rows_to_stochastic(m: &mut Matrix) {
    for i in 0..m.rows() {
        let r = m.row_mut(i);
        let s: f64 = r.iter().sum();
        if s > 0.0 {
            for v in r {
                *v /= s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_norms() {
        assert_eq!(norm2(&[3., 4.]), 5.0);
        assert_eq!(norm1(&[3., -4.]), 7.0);
        assert_eq!(norm_inf(&[3., -4.]), 4.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn frobenius_values() {
        let m = Matrix::from_rows(&[vec![3., 0.], vec![0., 4.]]);
        assert_eq!(frobenius(&m), 5.0);
        assert_eq!(frobenius_sq(&m), 25.0);
    }

    #[test]
    fn diff_and_relative_error() {
        let a = Matrix::full(2, 2, 2.0);
        let b = Matrix::full(2, 2, 1.0);
        assert_eq!(frobenius_diff(&a, &b), 2.0);
        assert!((relative_error(&a, &b) - 0.5).abs() < 1e-12);
        let z = Matrix::zeros(2, 2);
        assert_eq!(relative_error(&z, &z), 0.0);
        assert_eq!(relative_error(&z, &b), f64::INFINITY);
    }

    #[test]
    fn normalize_rows_unit_norm() {
        let mut m = Matrix::from_rows(&[vec![3., 4.], vec![0., 0.], vec![1., 0.]]);
        normalize_rows(&mut m);
        assert!((norm2(m.row(0)) - 1.0).abs() < 1e-12);
        assert_eq!(m.row(1), &[0., 0.]);
        assert_eq!(m.row(2), &[1., 0.]);
    }

    #[test]
    fn normalize_cols_returns_norms() {
        let mut m = Matrix::from_rows(&[vec![3., 0.], vec![4., 0.]]);
        let norms = normalize_cols(&mut m);
        assert!((norms[0] - 5.0).abs() < 1e-12);
        assert_eq!(norms[1], 0.0);
        assert!((m.get(0, 0) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn stochastic_rows_sum_to_one() {
        let mut m = Matrix::from_rows(&[vec![1., 3.], vec![0., 0.]]);
        rows_to_stochastic(&mut m);
        assert!((m.row(0).iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(m.row(1), &[0., 0.]);
    }
}
