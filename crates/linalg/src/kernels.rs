//! Storage-generic kernel layer.
//!
//! The NNMF solvers (and the pipeline stages built on them) need a small
//! set of operations from the data matrix `A`: shape and density queries,
//! input validation scans, the two data-side products `A·Bᵀ` and `Aᵀ·B`,
//! the Frobenius norm, and a direct residual loss for overflow-prone
//! inputs. [`MatKernels`] abstracts exactly that set, implemented for both
//! dense [`Matrix`] and [`CsrMatrix`] storage, so a single generic solver
//! serves both backends.
//!
//! ## Bitwise parity
//!
//! For a CSR matrix produced by [`CsrMatrix::from_dense`] (exact-zero
//! sparsification), every kernel here returns *bitwise identical* results
//! on the two storages:
//!
//! * both `a_bt_into` implementations accumulate products in ascending
//!   column order, and the dense path's extra `0.0·x` terms leave a
//!   nonnegative `f64` accumulator unchanged;
//! * both `at_b_into` implementations scatter row `i` contributions in row
//!   order and skip exactly the entries `a_ij == 0.0`;
//! * `frobenius_sq`, `sum`, and `residual_loss` differ only by `+0.0`
//!   terms for the structurally absent entries.
//!
//! This is what lets the generic solver in `anchors-factor` guarantee the
//! same factors, recovery flags, and restart winners on either backend.

use crate::matrix::Matrix;
use crate::ops;
use crate::sparse::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Which storage backend a computation ran on. Recorded in pipeline
/// diagnostics when the density threshold selects the backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Backend {
    /// Row-major dense storage.
    #[default]
    Dense,
    /// Compressed sparse row storage.
    Sparse,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Dense => write!(f, "dense"),
            Backend::Sparse => write!(f, "sparse"),
        }
    }
}

/// The matrix operations the factorization solvers are generic over.
///
/// All `_into` products write into caller-provided buffers so a fit
/// iteration allocates nothing once its workspace is warm.
///
/// `Sync` is a supertrait so solvers can share one borrowed input across
/// the outer-parallel fan-out (restarts, rank scans, consensus runs);
/// both storage backends are plain owned data and satisfy it trivially.
pub trait MatKernels: Sync {
    /// `(rows, cols)`.
    fn shape(&self) -> (usize, usize);

    /// Number of rows.
    fn rows(&self) -> usize {
        self.shape().0
    }

    /// Number of columns.
    fn cols(&self) -> usize {
        self.shape().1
    }

    /// Fraction of nonzero entries (`0` for empty shapes).
    fn density(&self) -> f64;

    /// Sum of all entries.
    fn sum(&self) -> f64;

    /// Squared Frobenius norm `Σ a_ij²`.
    fn frobenius_sq(&self) -> f64;

    /// First non-finite entry as `(row, col, value)`, scanning row-major.
    fn find_non_finite(&self) -> Option<(usize, usize, f64)>;

    /// First negative (or non-finite) entry as `(row, col, value)`.
    fn find_negative(&self) -> Option<(usize, usize, f64)>;

    /// `out = A · Bᵀ` (the NNMF data product `A Hᵀ` with `B = H`).
    ///
    /// # Panics
    /// Panics if `b.cols() != self.cols()` or `out` is not
    /// `self.rows() × b.rows()`.
    fn a_bt_into(&self, b: &Matrix, out: &mut Matrix);

    /// `out = Aᵀ · B` (the NNMF data product `Aᵀ W` with `B = W`).
    ///
    /// # Panics
    /// Panics if `b.rows() != self.rows()` or `out` is not
    /// `self.cols() × b.cols()`.
    fn at_b_into(&self, b: &Matrix, out: &mut Matrix);

    /// `out[j] += scale · a_ij` for every nonzero entry of row `i`, in
    /// ascending column order. Dense storage skips exact zeros, so both
    /// backends perform *identical* add sequences — row-accumulating
    /// consumers (the sketch projections) stay bitwise-paired across
    /// storages. Implementations are tight slice loops (no per-entry
    /// indirection), so a full-matrix accumulation sweep runs at memory
    /// speed.
    ///
    /// # Panics
    /// Panics if `i >= rows()` or `out.len() != cols()`.
    fn accumulate_row_into(&self, i: usize, scale: f64, out: &mut [f64]);

    /// Direct residual loss `½‖A − WH‖_F²`, evaluated one reconstruction
    /// row at a time through `row_scratch` (length `cols`). Used when the
    /// Gram-identity loss overflows (`‖A‖²` non-finite); never allocates.
    ///
    /// # Panics
    /// Panics if the factor shapes or `row_scratch.len()` do not match.
    fn residual_loss(&self, w: &Matrix, h: &Matrix, row_scratch: &mut [f64]) -> f64;

    /// Materialize dense storage (a clone for dense inputs). Needed by the
    /// SVD-based initializers and the ANLS reference solver.
    fn to_dense(&self) -> Matrix;

    /// Which backend this storage is.
    fn backend(&self) -> Backend;
}

/// Shared residual-loss accumulation over one reconstruction row:
/// `row_scratch = Σ_t w_it · H[t,:]` accumulated in `t` order, skipping
/// exact-zero loadings just like the dense multiply kernel. Routed
/// through the blocked row-combination microkernel
/// ([`crate::microkernel::axpy_rows`]), which fuses `MR` loadings per
/// sweep of the scratch row while preserving both the term order and
/// the skip rule — bitwise identical to the sequential axpy loop.
#[inline]
fn reconstruct_row_into(wrow: &[f64], h: &Matrix, row_scratch: &mut [f64]) {
    row_scratch.fill(0.0);
    crate::microkernel::axpy_rows(wrow, h, row_scratch);
}

#[inline]
fn check_residual_shapes(shape: (usize, usize), w: &Matrix, h: &Matrix, scratch: &[f64]) {
    let (m, n) = shape;
    let k = w.cols();
    assert_eq!(w.rows(), m, "W row count must match A");
    assert_eq!(h.shape(), (k, n), "H shape must match (k, cols)");
    assert_eq!(scratch.len(), n, "row scratch must have length cols");
}

impl MatKernels for Matrix {
    fn shape(&self) -> (usize, usize) {
        Matrix::shape(self)
    }

    fn density(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.as_slice().iter().filter(|&&v| v != 0.0).count() as f64 / self.len() as f64
        }
    }

    fn sum(&self) -> f64 {
        Matrix::sum(self)
    }

    fn frobenius_sq(&self) -> f64 {
        crate::norms::frobenius_sq(self)
    }

    fn find_non_finite(&self) -> Option<(usize, usize, f64)> {
        Matrix::find_non_finite(self)
    }

    fn find_negative(&self) -> Option<(usize, usize, f64)> {
        Matrix::find_negative(self)
    }

    fn a_bt_into(&self, b: &Matrix, out: &mut Matrix) {
        ops::matmul_a_bt_into(self, b, out);
    }

    fn at_b_into(&self, b: &Matrix, out: &mut Matrix) {
        ops::matmul_at_b_into(self, b, out);
    }

    fn accumulate_row_into(&self, i: usize, scale: f64, out: &mut [f64]) {
        let row = self.row(i);
        assert_eq!(out.len(), row.len(), "accumulate_row_into length");
        for (o, &v) in out.iter_mut().zip(row) {
            if v != 0.0 {
                *o += scale * v;
            }
        }
    }

    fn residual_loss(&self, w: &Matrix, h: &Matrix, row_scratch: &mut [f64]) -> f64 {
        check_residual_shapes(MatKernels::shape(self), w, h, row_scratch);
        let mut acc = 0.0;
        for i in 0..self.rows() {
            reconstruct_row_into(w.row(i), h, row_scratch);
            for (&av, &sv) in self.row(i).iter().zip(row_scratch.iter()) {
                let d = av - sv;
                acc += d * d;
            }
        }
        0.5 * acc
    }

    fn to_dense(&self) -> Matrix {
        self.clone()
    }

    fn backend(&self) -> Backend {
        Backend::Dense
    }
}

impl MatKernels for CsrMatrix {
    fn shape(&self) -> (usize, usize) {
        CsrMatrix::shape(self)
    }

    fn density(&self) -> f64 {
        CsrMatrix::density(self)
    }

    fn sum(&self) -> f64 {
        CsrMatrix::sum(self)
    }

    fn frobenius_sq(&self) -> f64 {
        CsrMatrix::frobenius_sq(self)
    }

    fn find_non_finite(&self) -> Option<(usize, usize, f64)> {
        for i in 0..self.rows() {
            let (idx, vals) = self.row(i);
            for (&j, &v) in idx.iter().zip(vals) {
                if !v.is_finite() {
                    return Some((i, j, v));
                }
            }
        }
        None
    }

    fn find_negative(&self) -> Option<(usize, usize, f64)> {
        // Structural zeros are nonnegative, so the first offending stored
        // entry (row-major) is the first offending entry overall — same
        // coordinates a dense scan would report.
        for i in 0..self.rows() {
            let (idx, vals) = self.row(i);
            for (&j, &v) in idx.iter().zip(vals) {
                if !(v.is_finite() && v >= 0.0) {
                    return Some((i, j, v));
                }
            }
        }
        None
    }

    fn a_bt_into(&self, b: &Matrix, out: &mut Matrix) {
        self.matmul_dense_bt_into(b, out);
    }

    fn at_b_into(&self, b: &Matrix, out: &mut Matrix) {
        self.matmul_at_dense_into(b, out);
    }

    fn accumulate_row_into(&self, i: usize, scale: f64, out: &mut [f64]) {
        assert_eq!(out.len(), self.cols(), "accumulate_row_into length");
        let (idx, vals) = self.row(i);
        for (&j, &v) in idx.iter().zip(vals) {
            out[j] += scale * v;
        }
    }

    fn residual_loss(&self, w: &Matrix, h: &Matrix, row_scratch: &mut [f64]) -> f64 {
        check_residual_shapes(MatKernels::shape(self), w, h, row_scratch);
        let n = self.cols();
        let mut acc = 0.0;
        for i in 0..self.rows() {
            reconstruct_row_into(w.row(i), h, row_scratch);
            let (idx, vals) = self.row(i);
            let mut p = 0;
            for (j, &sv) in row_scratch.iter().enumerate().take(n) {
                let av = if p < idx.len() && idx[p] == j {
                    let v = vals[p];
                    p += 1;
                    v
                } else {
                    0.0
                };
                let d = av - sv;
                acc += d * d;
            }
        }
        0.5 * acc
    }

    fn to_dense(&self) -> Matrix {
        CsrMatrix::to_dense(self)
    }

    fn backend(&self) -> Backend {
        Backend::Sparse
    }
}

/// Either storage behind one concrete type, for call sites that choose the
/// backend at runtime (the density-threshold pipeline path) but want a
/// single non-generic value to hold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DataMatrix {
    /// Dense storage.
    Dense(Matrix),
    /// CSR storage.
    Sparse(CsrMatrix),
}

impl From<Matrix> for DataMatrix {
    fn from(m: Matrix) -> Self {
        DataMatrix::Dense(m)
    }
}

impl From<CsrMatrix> for DataMatrix {
    fn from(m: CsrMatrix) -> Self {
        DataMatrix::Sparse(m)
    }
}

macro_rules! delegate {
    ($self:ident, $m:ident => $e:expr) => {
        match $self {
            DataMatrix::Dense($m) => $e,
            DataMatrix::Sparse($m) => $e,
        }
    };
}

impl MatKernels for DataMatrix {
    fn shape(&self) -> (usize, usize) {
        delegate!(self, m => MatKernels::shape(m))
    }

    fn density(&self) -> f64 {
        delegate!(self, m => MatKernels::density(m))
    }

    fn sum(&self) -> f64 {
        delegate!(self, m => MatKernels::sum(m))
    }

    fn frobenius_sq(&self) -> f64 {
        delegate!(self, m => MatKernels::frobenius_sq(m))
    }

    fn find_non_finite(&self) -> Option<(usize, usize, f64)> {
        delegate!(self, m => MatKernels::find_non_finite(m))
    }

    fn find_negative(&self) -> Option<(usize, usize, f64)> {
        delegate!(self, m => MatKernels::find_negative(m))
    }

    fn a_bt_into(&self, b: &Matrix, out: &mut Matrix) {
        delegate!(self, m => m.a_bt_into(b, out))
    }

    fn at_b_into(&self, b: &Matrix, out: &mut Matrix) {
        delegate!(self, m => m.at_b_into(b, out))
    }

    fn accumulate_row_into(&self, i: usize, scale: f64, out: &mut [f64]) {
        delegate!(self, m => m.accumulate_row_into(i, scale, out))
    }

    fn residual_loss(&self, w: &Matrix, h: &Matrix, row_scratch: &mut [f64]) -> f64 {
        delegate!(self, m => m.residual_loss(w, h, row_scratch))
    }

    fn to_dense(&self) -> Matrix {
        delegate!(self, m => MatKernels::to_dense(m))
    }

    fn backend(&self) -> Backend {
        delegate!(self, m => MatKernels::backend(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_fn(5, 7, |i, j| {
            if (i + 2 * j) % 3 == 0 {
                (i * 7 + j) as f64 * 0.25
            } else {
                0.0
            }
        })
    }

    #[test]
    fn products_bitwise_identical_across_backends() {
        let d = sample();
        let s = CsrMatrix::from_dense(&d);
        let b = Matrix::from_fn(3, 7, |i, j| ((i * 7 + j) % 5) as f64 * 0.3 + 0.1);
        let mut dense_out = Matrix::zeros(5, 3);
        let mut sparse_out = Matrix::zeros(5, 3);
        MatKernels::a_bt_into(&d, &b, &mut dense_out);
        MatKernels::a_bt_into(&s, &b, &mut sparse_out);
        assert_eq!(dense_out, sparse_out, "A·Bᵀ must be bitwise identical");

        let w = Matrix::from_fn(5, 3, |i, j| ((i + j) % 4) as f64 * 0.5);
        let mut dense_atw = Matrix::zeros(7, 3);
        let mut sparse_atw = Matrix::zeros(7, 3);
        MatKernels::at_b_into(&d, &w, &mut dense_atw);
        MatKernels::at_b_into(&s, &w, &mut sparse_atw);
        assert_eq!(dense_atw, sparse_atw, "Aᵀ·B must be bitwise identical");
    }

    #[test]
    fn scalar_reductions_bitwise_identical() {
        let d = sample();
        let s = CsrMatrix::from_dense(&d);
        assert_eq!(MatKernels::sum(&d), MatKernels::sum(&s));
        assert_eq!(MatKernels::frobenius_sq(&d), MatKernels::frobenius_sq(&s));
        assert_eq!(MatKernels::density(&d), MatKernels::density(&s));
    }

    #[test]
    fn residual_loss_matches_across_backends() {
        let d = sample();
        let s = CsrMatrix::from_dense(&d);
        let w = Matrix::from_fn(5, 2, |i, j| (i + j) as f64 * 0.2);
        let h = Matrix::from_fn(2, 7, |i, j| ((i * 7 + j) % 3) as f64 * 0.4);
        let mut scratch = vec![0.0; 7];
        let dl = d.residual_loss(&w, &h, &mut scratch);
        let sl = s.residual_loss(&w, &h, &mut scratch);
        assert_eq!(dl, sl, "residual loss must be bitwise identical");
        // And both equal the definition ½‖A − WH‖².
        let rec = crate::ops::matmul(&w, &h);
        let direct = 0.5 * crate::norms::frobenius_sq(&crate::ops::sub(&d, &rec));
        assert!((dl - direct).abs() < 1e-12);
    }

    #[test]
    fn row_accumulation_is_bitwise_identical_across_storages() {
        let d = sample();
        let s = CsrMatrix::from_dense(&d);
        let n = d.cols();
        for i in 0..d.rows() {
            let mut from_dense = vec![0.25; n];
            let mut from_sparse = vec![0.25; n];
            MatKernels::accumulate_row_into(&d, i, 1.5, &mut from_dense);
            MatKernels::accumulate_row_into(&s, i, 1.5, &mut from_sparse);
            assert_eq!(from_dense, from_sparse, "row {i} accumulates identically");
            for (j, (&acc, &v)) in from_dense.iter().zip(d.row(i)).enumerate() {
                let expect = if v != 0.0 { 0.25 + 1.5 * v } else { 0.25 };
                assert_eq!(acc, expect, "row {i} col {j}");
            }
        }
    }

    #[test]
    fn validation_scans_agree() {
        let mut d = sample();
        d.set(2, 3, -4.0);
        d.set(4, 6, f64::NAN);
        let s = CsrMatrix::from_dense(&d);
        assert_eq!(
            MatKernels::find_negative(&d).map(|(i, j, _)| (i, j)),
            MatKernels::find_negative(&s).map(|(i, j, _)| (i, j))
        );
        assert_eq!(
            MatKernels::find_non_finite(&d).map(|(i, j, _)| (i, j)),
            MatKernels::find_non_finite(&s).map(|(i, j, _)| (i, j))
        );
        let clean = sample();
        assert!(MatKernels::find_negative(&clean).is_none());
        assert!(MatKernels::find_non_finite(&CsrMatrix::from_dense(&clean)).is_none());
    }

    #[test]
    fn data_matrix_delegates() {
        let d = sample();
        let s = CsrMatrix::from_dense(&d);
        let dd: DataMatrix = d.clone().into();
        let ds: DataMatrix = s.into();
        assert_eq!(dd.backend(), Backend::Dense);
        assert_eq!(ds.backend(), Backend::Sparse);
        assert_eq!(MatKernels::shape(&dd), MatKernels::shape(&ds));
        assert_eq!(MatKernels::frobenius_sq(&dd), MatKernels::frobenius_sq(&ds));
        assert_eq!(MatKernels::to_dense(&ds), d);
        assert_eq!(
            format!("{}/{}", Backend::Dense, Backend::Sparse),
            "dense/sparse"
        );
    }
}
