//! Dense row-major `f64` matrix.
//!
//! The matrix type used throughout `pdc-anchors`. The corpora analyzed by the
//! paper are small (tens of courses × hundreds of curriculum tags), but the
//! factorization kernels are written to scale to much larger instances, so the
//! storage is a single contiguous buffer and the hot loops in [`crate::ops`]
//! operate on row slices without bounds checks in the inner dimension.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major matrix of `f64` values.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    ///
    /// # Panics
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Matrix {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Create a matrix filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build a matrix from nested row slices.
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Build a matrix by evaluating `f(i, j)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    /// Build a square diagonal matrix from a slice.
    pub fn diag(values: &[f64]) -> Self {
        let n = values.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in values.iter().enumerate() {
            m.data[i * n + i] = v;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning its row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        let c = self.cols;
        &self.data[i * c..(i + 1) * c]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        let c = self.cols;
        &mut self.data[i * c..(i + 1) * c]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column {j} out of bounds ({})", self.cols);
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Overwrite column `j` from a slice.
    ///
    /// # Panics
    /// Panics if `values.len() != rows`.
    pub fn set_col(&mut self, j: usize, values: &[f64]) {
        assert_eq!(values.len(), self.rows);
        for (i, &v) in values.iter().enumerate() {
            self.data[i * self.cols + j] = v;
        }
    }

    /// Iterate over rows as slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                out.data[j * self.rows + i] = v;
            }
        }
        out
    }

    /// Apply `f` to every entry, producing a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Apply `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Extract a rectangular submatrix (half-open ranges).
    ///
    /// # Panics
    /// Panics if the ranges exceed the matrix bounds.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "row range out of bounds");
        assert!(c0 <= c1 && c1 <= self.cols, "col range out of bounds");
        let mut out = Matrix::zeros(r1 - r0, c1 - c0);
        for i in r0..r1 {
            let src = &self.row(i)[c0..c1];
            out.row_mut(i - r0).copy_from_slice(src);
        }
        out
    }

    /// Select a subset of rows (in the given order) into a new matrix.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Select a subset of columns (in the given order) into a new matrix.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for i in 0..self.rows {
            let src = self.row(i);
            let dst = out.row_mut(i);
            for (k, &j) in indices.iter().enumerate() {
                assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
                dst[k] = src[j];
            }
        }
        out
    }

    /// Stack two matrices vertically.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack requires equal column counts");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Stack two matrices horizontally.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack requires equal row counts");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Maximum entry (`NEG_INFINITY` for an empty matrix).
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum entry (`INFINITY` for an empty matrix).
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Per-row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        self.row_iter().map(|r| r.iter().sum()).collect()
    }

    /// Per-column sums.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for r in self.row_iter() {
            for (s, &v) in sums.iter_mut().zip(r) {
                *s += v;
            }
        }
        sums
    }

    /// True iff every entry is finite and `>= 0`.
    pub fn is_nonnegative(&self) -> bool {
        self.data.iter().all(|&v| v.is_finite() && v >= 0.0)
    }

    /// True iff all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// First NaN/infinite entry as `(row, col, value)`, or `None` if the
    /// matrix is entirely finite. Used by checked ops to produce actionable
    /// diagnostics instead of a bare boolean.
    pub fn find_non_finite(&self) -> Option<(usize, usize, f64)> {
        self.data.iter().position(|v| !v.is_finite()).map(|idx| {
            (
                idx / self.cols.max(1),
                idx % self.cols.max(1),
                self.data[idx],
            )
        })
    }

    /// First negative (or non-finite) entry as `(row, col, value)`, or
    /// `None` if every entry is finite and `>= 0`.
    pub fn find_negative(&self) -> Option<(usize, usize, f64)> {
        self.data
            .iter()
            .position(|v| !(v.is_finite() && *v >= 0.0))
            .map(|idx| {
                (
                    idx / self.cols.max(1),
                    idx % self.cols.max(1),
                    self.data[idx],
                )
            })
    }

    /// Entrywise approximate equality within `tol` (absolute).
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Swap two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        assert!(a < self.rows && b < self.rows);
        let c = self.cols;
        let (lo, hi) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(hi * c);
        head[lo * c..lo * c + c].swap_with_slice(&mut tail[..c]);
    }

    /// Reorder rows by a permutation: output row `k` is input row `perm[k]`.
    pub fn permute_rows(&self, perm: &[usize]) -> Matrix {
        assert_eq!(perm.len(), self.rows, "permutation length mismatch");
        self.select_rows(perm)
    }

    /// Reorder columns by a permutation: output col `k` is input col `perm[k]`.
    pub fn permute_cols(&self, perm: &[usize]) -> Matrix {
        assert_eq!(perm.len(), self.cols, "permutation length mismatch");
        self.select_cols(perm)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 12;
        for (i, r) in self.row_iter().enumerate().take(max_rows) {
            write!(f, "  [")?;
            for (j, v) in r.iter().enumerate().take(12) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:.4}")?;
            }
            if self.cols > 12 {
                write!(f, ", …")?;
            }
            writeln!(f, "]{}", if i + 1 < self.rows { "," } else { "" })?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_diagonal() {
        let m = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.clone().into_vec(), vec![1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 3, vec![1.0; 5]);
    }

    #[test]
    fn from_rows_ragged_panics() {
        let r = std::panic::catch_unwind(|| {
            Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
        });
        assert!(r.is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t.get(4, 2), m.get(2, 4));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_rows(&[vec![1., 2.], vec![3., 4.], vec![5., 6.]]);
        assert_eq!(m.row(1), &[3., 4.]);
        assert_eq!(m.col(1), vec![2., 4., 6.]);
    }

    #[test]
    fn set_col_overwrites() {
        let mut m = Matrix::zeros(3, 2);
        m.set_col(1, &[7., 8., 9.]);
        assert_eq!(m.col(1), vec![7., 8., 9.]);
        assert_eq!(m.col(0), vec![0., 0., 0.]);
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(1, 3, 2, 4);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.get(0, 0), 6.0);
        assert_eq!(s.get(1, 1), 11.0);
    }

    #[test]
    fn select_rows_and_cols() {
        let m = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let r = m.select_rows(&[2, 0]);
        assert_eq!(r.row(0), &[6., 7., 8.]);
        assert_eq!(r.row(1), &[0., 1., 2.]);
        let c = m.select_cols(&[1]);
        assert_eq!(c.col(0), vec![1., 4., 7.]);
    }

    #[test]
    fn stack_shapes() {
        let a = Matrix::full(2, 3, 1.0);
        let b = Matrix::full(1, 3, 2.0);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v.row(2), &[2., 2., 2.]);
        let c = Matrix::full(2, 1, 3.0);
        let h = a.hstack(&c);
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h.get(0, 3), 3.0);
    }

    #[test]
    fn sums_and_extrema() {
        let m = Matrix::from_rows(&[vec![1., -2.], vec![3., 4.]]);
        assert_eq!(m.sum(), 6.0);
        assert_eq!(m.max(), 4.0);
        assert_eq!(m.min(), -2.0);
        assert_eq!(m.row_sums(), vec![-1.0, 7.0]);
        assert_eq!(m.col_sums(), vec![4.0, 2.0]);
    }

    #[test]
    fn nonnegativity_check() {
        assert!(Matrix::full(2, 2, 0.5).is_nonnegative());
        assert!(!Matrix::from_rows(&[vec![1., -0.1]]).is_nonnegative());
        assert!(!Matrix::from_rows(&[vec![f64::NAN]]).is_nonnegative());
    }

    #[test]
    fn swap_rows_works() {
        let mut m = Matrix::from_rows(&[vec![1., 2.], vec![3., 4.], vec![5., 6.]]);
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[5., 6.]);
        assert_eq!(m.row(2), &[1., 2.]);
        m.swap_rows(1, 1);
        assert_eq!(m.row(1), &[3., 4.]);
    }

    #[test]
    fn permute_rows_and_cols() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        let p = m.permute_rows(&[1, 0]);
        assert_eq!(p.row(0), &[2., 3.]);
        let q = m.permute_cols(&[1, 0]);
        assert_eq!(q.col(0), vec![1., 3.]);
    }

    #[test]
    fn map_applies_function() {
        let m = Matrix::from_rows(&[vec![1., 2.], vec![3., 4.]]);
        let d = m.map(|v| v * 2.0);
        assert_eq!(d.get(1, 1), 8.0);
        let mut m2 = m.clone();
        m2.map_inplace(|v| v - 1.0);
        assert_eq!(m2.get(0, 0), 0.0);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Matrix::full(2, 2, 1.0);
        let mut b = a.clone();
        b.set(0, 0, 1.0 + 1e-12);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-15));
        assert!(!a.approx_eq(&Matrix::zeros(2, 3), 1.0));
    }

    #[test]
    fn diag_constructor() {
        let d = Matrix::diag(&[1., 2., 3.]);
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
        assert_eq!(d.shape(), (3, 3));
    }

    #[test]
    fn empty_matrix() {
        let m = Matrix::zeros(0, 0);
        assert!(m.is_empty());
        assert_eq!(m.sum(), 0.0);
        assert_eq!(m.max(), f64::NEG_INFINITY);
    }
}
