//! Parallel execution policy: who gets the threads, the outer loops or the
//! inner kernels.
//!
//! The workspace has two natural parallel axes:
//!
//! * **inner** — the multiply kernels in [`crate::ops`] and
//!   [`crate::sparse`] split output rows across rayon workers above the
//!   [`crate::ops::par_threshold`] work threshold;
//! * **outer** — embarrassingly parallel loops *around* whole fits
//!   (NNMF restarts, rank scans, consensus runs, per-course pipeline
//!   tails) fan out via [`outer_map`].
//!
//! Running both at once oversubscribes the machine: every outer worker
//! would spawn its own inner row-splits onto the same pool. This module
//! arbitrates. While a thread executes inside an [`outer_map`] closure it
//! is marked as being in an *outer scope* (a thread-local flag), and
//! [`inner_enabled`] — consulted by the kernels' split decision — turns
//! the inner splits off there. Nested [`outer_map`] calls (a rank scan
//! fanning per-`k` while each fit wants to fan its restarts) likewise
//! degrade to sequential loops instead of nesting rayon.
//!
//! The policy is configurable through two environment variables, each with
//! an injectable override for tests and benchmarks:
//!
//! * `ANCHORS_PAR_MODE` — `serial` (no parallelism anywhere), `inner`
//!   (kernel row-splits only), or `outer` (the default: outer fan-out,
//!   inner splits only outside outer scopes);
//! * `ANCHORS_NUM_THREADS` — worker count for outer fan-out; `0` or unset
//!   uses rayon's ambient global pool.
//!
//! Determinism contract: none of these knobs may change any result.
//! [`outer_map`] preserves index order, and every caller reduces its
//! collected results sequentially, so serial and parallel runs are
//! bitwise identical at any thread count.

use rayon::prelude::*;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Which layer of the stack is allowed to parallelize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParMode {
    /// No rayon anywhere: outer loops and kernels both run sequentially.
    Serial,
    /// Only the inner multiply kernels split (the pre-fan-out behavior).
    Inner,
    /// Outer loops fan out; inner kernels split only outside outer scopes.
    #[default]
    Outer,
}

/// The resolved parallel execution policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Active mode (override, else `ANCHORS_PAR_MODE`, else `Outer`).
    pub mode: ParMode,
    /// Outer-pool worker count (override, else `ANCHORS_NUM_THREADS`);
    /// `0` means rayon's ambient global pool.
    pub threads: usize,
}

impl Parallelism {
    /// The policy currently in effect.
    pub fn current() -> Self {
        Parallelism {
            mode: par_mode(),
            threads: num_threads(),
        }
    }
}

/// Serializes the tests (anywhere in this crate) that mutate the
/// process-global policy knobs, so they cannot observe each other's modes.
#[cfg(test)]
pub(crate) static TEST_CONFIG_LOCK: Mutex<()> = Mutex::new(());

/// Sentinel meaning "no cached value: consult the environment".
const UNSET: usize = usize::MAX;

/// Cached mode as `ParMode as usize` (or [`UNSET`]).
static PAR_MODE: AtomicUsize = AtomicUsize::new(UNSET);

/// Cached thread count (or [`UNSET`]).
static NUM_THREADS: AtomicUsize = AtomicUsize::new(UNSET);

/// Parse an `ANCHORS_PAR_MODE`-style value. Unknown or missing values fall
/// back to the default ([`ParMode::Outer`]).
fn mode_from_env(raw: Option<&str>) -> ParMode {
    match raw.map(|s| s.trim().to_ascii_lowercase()).as_deref() {
        Some("serial") => ParMode::Serial,
        Some("inner") => ParMode::Inner,
        Some("outer") => ParMode::Outer,
        _ => ParMode::default(),
    }
}

/// Parse an `ANCHORS_NUM_THREADS`-style value. `0` selects the ambient
/// pool; unparsable or missing values fall back to `0`.
fn threads_from_env(raw: Option<&str>) -> usize {
    raw.and_then(|s| s.trim().parse().ok()).unwrap_or(0)
}

fn mode_to_usize(mode: ParMode) -> usize {
    match mode {
        ParMode::Serial => 0,
        ParMode::Inner => 1,
        ParMode::Outer => 2,
    }
}

/// The active [`ParMode`]: the injected override if one is set, else
/// `ANCHORS_PAR_MODE` (cached after the first read).
pub fn par_mode() -> ParMode {
    match PAR_MODE.load(Ordering::Relaxed) {
        0 => ParMode::Serial,
        1 => ParMode::Inner,
        2 => ParMode::Outer,
        _ => {
            let mode = mode_from_env(std::env::var("ANCHORS_PAR_MODE").ok().as_deref());
            PAR_MODE.store(mode_to_usize(mode), Ordering::Relaxed);
            mode
        }
    }
}

/// Inject a mode, overriding the environment. `None` clears the override
/// (and the cache), so the next read consults `ANCHORS_PAR_MODE` again.
pub fn set_par_mode(mode: Option<ParMode>) {
    PAR_MODE.store(mode.map(mode_to_usize).unwrap_or(UNSET), Ordering::Relaxed);
}

/// The outer-pool worker count: the injected override if one is set, else
/// `ANCHORS_NUM_THREADS` (cached after the first read). `0` means "use
/// rayon's ambient global pool".
pub fn num_threads() -> usize {
    match NUM_THREADS.load(Ordering::Relaxed) {
        UNSET => {
            let n = threads_from_env(std::env::var("ANCHORS_NUM_THREADS").ok().as_deref());
            NUM_THREADS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Inject a worker count, overriding the environment. `None` clears the
/// override so the next read consults `ANCHORS_NUM_THREADS` again.
pub fn set_num_threads(threads: Option<usize>) {
    NUM_THREADS.store(threads.unwrap_or(UNSET), Ordering::Relaxed);
}

/// Hardware thread count of this machine (≥ 1).
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

thread_local! {
    /// Whether the current thread is executing inside an [`outer_map`]
    /// closure. Set on the rayon *worker* threads (not the caller), so the
    /// kernels' split decision sees it wherever the work actually runs.
    static IN_OUTER: Cell<bool> = const { Cell::new(false) };
}

/// RAII marker for "this thread is inside an outer parallel scope".
/// Restores the previous state on drop, so nested scopes compose.
pub struct OuterScope {
    prev: bool,
}

/// Mark the current thread as inside an outer parallel scope until the
/// returned guard drops. [`outer_map`] does this automatically; callers
/// driving rayon directly (custom `par_chunks_mut` loops) must set it in
/// each worker closure so inner kernel splits stay suppressed.
pub fn enter_outer_scope() -> OuterScope {
    let prev = IN_OUTER.with(|c| c.replace(true));
    OuterScope { prev }
}

impl Drop for OuterScope {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_OUTER.with(|c| c.set(prev));
    }
}

/// Whether the current thread is inside an [`outer_map`] closure.
pub fn in_outer_scope() -> bool {
    IN_OUTER.with(|c| c.get())
}

/// Whether the inner multiply kernels may split rows here: some parallel
/// mode is on, and this thread is not already working for an outer
/// fan-out (which owns the cores).
pub fn inner_enabled() -> bool {
    par_mode() != ParMode::Serial && !in_outer_scope()
}

/// Whether an outer fan-out may go parallel here: mode is
/// [`ParMode::Outer`] and we are not already inside another outer scope
/// (nested fan-outs run sequentially instead of nesting rayon).
pub fn outer_enabled() -> bool {
    par_mode() == ParMode::Outer && !in_outer_scope()
}

/// Cache of dedicated pools by size, so repeated fan-outs at the same
/// thread count (every pipeline run, every bench iteration) reuse one
/// pool instead of spawning threads.
type PoolCache = Mutex<Vec<(usize, Arc<rayon::ThreadPool>)>>;
static POOLS: OnceLock<PoolCache> = OnceLock::new();

fn pool_for(threads: usize) -> Option<Arc<rayon::ThreadPool>> {
    let pools = POOLS.get_or_init(|| Mutex::new(Vec::new()));
    let mut cache = pools.lock().expect("thread-pool cache poisoned");
    if let Some((_, pool)) = cache.iter().find(|(n, _)| *n == threads) {
        return Some(Arc::clone(pool));
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .ok()?;
    let pool = Arc::new(pool);
    cache.push((threads, Arc::clone(&pool)));
    Some(pool)
}

/// Run `f` on the configured outer pool: a cached dedicated pool of
/// [`num_threads`] workers, or inline (ambient global pool) when the count
/// is `0` or the pool cannot be built.
pub fn install<R: Send>(f: impl FnOnce() -> R + Send) -> R {
    match num_threads() {
        0 => f(),
        n => match pool_for(n) {
            Some(pool) => pool.install(f),
            None => f(),
        },
    }
}

/// Map `f` over `0..n`, fanning out across the outer pool when
/// [`outer_enabled`] says so, sequentially otherwise. Results come back in
/// index order either way, and each worker runs with the outer-scope flag
/// set (suppressing inner kernel splits and nested fan-outs), so the two
/// paths are bitwise interchangeable.
pub fn outer_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    if n < 2 || !outer_enabled() {
        return (0..n).map(f).collect();
    }
    install(|| {
        (0..n)
            .into_par_iter()
            .map(|i| {
                let _scope = enter_outer_scope();
                f(i)
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    use super::TEST_CONFIG_LOCK as CONFIG_LOCK;

    /// Restores both overrides (to "consult the environment") on drop, so
    /// a failing assertion cannot leak policy into other tests.
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            set_par_mode(None);
            set_num_threads(None);
        }
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(mode_from_env(None), ParMode::Outer);
        assert_eq!(mode_from_env(Some("serial")), ParMode::Serial);
        assert_eq!(mode_from_env(Some(" Inner ")), ParMode::Inner);
        assert_eq!(mode_from_env(Some("OUTER")), ParMode::Outer);
        assert_eq!(mode_from_env(Some("nonsense")), ParMode::Outer);
        assert_eq!(mode_from_env(Some("")), ParMode::Outer);
    }

    #[test]
    fn thread_parsing() {
        assert_eq!(threads_from_env(None), 0, "unset means ambient pool");
        assert_eq!(threads_from_env(Some("0")), 0);
        assert_eq!(threads_from_env(Some(" 4 ")), 4);
        assert_eq!(threads_from_env(Some("garbage")), 0);
        assert_eq!(threads_from_env(Some("-2")), 0);
    }

    #[test]
    fn overrides_are_injectable() {
        let _lock = CONFIG_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let _reset = Reset;
        set_par_mode(Some(ParMode::Serial));
        set_num_threads(Some(3));
        assert_eq!(par_mode(), ParMode::Serial);
        assert_eq!(num_threads(), 3);
        assert_eq!(
            Parallelism::current(),
            Parallelism {
                mode: ParMode::Serial,
                threads: 3
            }
        );
        assert!(!inner_enabled(), "serial mode disables kernel splits");
        assert!(!outer_enabled(), "serial mode disables fan-out");
        // Clearing the override falls back to whatever the environment
        // dictates (CI runs this binary with ANCHORS_PAR_MODE=serial too).
        set_par_mode(None);
        set_num_threads(None);
        assert_eq!(
            par_mode(),
            mode_from_env(std::env::var("ANCHORS_PAR_MODE").ok().as_deref())
        );
        assert_eq!(
            num_threads(),
            threads_from_env(std::env::var("ANCHORS_NUM_THREADS").ok().as_deref())
        );
    }

    #[test]
    fn outer_scope_gates_inner_and_nesting() {
        let _lock = CONFIG_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let _reset = Reset;
        set_par_mode(Some(ParMode::Outer));
        assert!(inner_enabled());
        {
            let _scope = enter_outer_scope();
            assert!(in_outer_scope());
            assert!(!inner_enabled(), "kernels must not split inside fan-out");
            assert!(!outer_enabled(), "fan-outs must not nest");
            {
                let _inner = enter_outer_scope();
                assert!(in_outer_scope());
            }
            assert!(in_outer_scope(), "nested scope exit keeps the outer one");
        }
        assert!(!in_outer_scope());
        assert!(inner_enabled());
    }

    #[test]
    fn inner_mode_splits_without_fan_out() {
        let _lock = CONFIG_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let _reset = Reset;
        set_par_mode(Some(ParMode::Inner));
        assert!(inner_enabled());
        assert!(!outer_enabled());
    }

    #[test]
    fn outer_map_preserves_index_order() {
        let _lock = CONFIG_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let _reset = Reset;
        for (mode, threads) in [
            (ParMode::Serial, 1),
            (ParMode::Outer, 1),
            (ParMode::Outer, 2),
            (ParMode::Outer, 0),
        ] {
            set_par_mode(Some(mode));
            set_num_threads(Some(threads));
            let out = outer_map(17, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn outer_map_workers_run_in_outer_scope() {
        let _lock = CONFIG_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let _reset = Reset;
        set_par_mode(Some(ParMode::Outer));
        set_num_threads(Some(2));
        let flags = outer_map(8, |_| (in_outer_scope(), inner_enabled()));
        for (in_scope, inner) in flags {
            assert!(in_scope, "every worker must be marked as outer");
            assert!(!inner, "inner splits must be off inside the fan-out");
        }
        assert!(!in_outer_scope(), "flag must not leak past the fan-out");
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }
}
