//! Row-space sketching: compress an `m × n` matrix down to `s × n`
//! (`s ≪ m`) so downstream factorizations run on the sketch instead of
//! the full data.
//!
//! ## Why the coefficients are nonnegative
//!
//! The sketches here feed **non-negative** factorization: the consumer
//! fits `B ≈ Wₛ·H` on the sketch and keeps only `H`. A classic signed
//! JL sketch (i.i.d. `N(0, 1/s)`, signed CountSketch) preserves the
//! *row space* of `A` but destroys its nonnegative *cone*: the sketched
//! rows are signed, the sketch-side factor must be unconstrained
//! (semi-NMF), and the `H` it recovers — while spanning the right
//! subspace — generally requires **negative** coefficients to
//! reconstruct the original rows, so the nonnegative lift fails badly.
//!
//! Sign-free variants fix this structurally. With `S ≥ 0`,
//! `B = S·A = (S·W₀)·H₀` for any exact factorization `A = W₀·H₀ ≥ 0`:
//! the sketch is itself a valid NMF instance *with the same `H₀`*, so a
//! standard nonnegative solver on `B` recovers a cone-compatible `H`.
//!
//! Sparsity of `S` matters as much as its sign. NMF on the sketch is
//! identifiable only while the sketch rows stay *scattered* in the
//! cone; a dense nonnegative `S` averages every input row into every
//! sketch row, all sketch rows collapse toward the mean course, and the
//! factorization picks an arbitrary rotation (measured: ~9× the exact
//! relative error on planted data). Both families below therefore route
//! each input row to only a few sketch rows, and quality is governed by
//! the **bucket occupancy** `m/s` (Gaussian: `m·d/s`): keep it in the
//! single digits by scaling `s` with `m`. Both are seeded and bitwise
//! deterministic:
//!
//! * [`SketchKind::Gaussian`] — each input row feeds `d = 2` sketch
//!   rows with independent half-normal (`|N(0, 1/d)|`) weights, adding
//!   magnitude diversity on top of bucketing. Cost `O(nnz(A)·d)`.
//! * [`SketchKind::CountSketch`] — unsigned bucket aggregation: each
//!   input row is added to exactly one of the `s` sketch rows. One
//!   pass, cost `O(nnz(A))`; the sparse-friendly default at scale.
//!
//! Both are implemented as a single accumulation sweep over the rows of
//! `A` via [`MatKernels::accumulate_row_into`], so dense and CSR inputs
//! produce **bitwise identical** sketches: the add order is (input row,
//! bucket pick, stored nonzero), independent of storage, and each
//! row-into-bucket accumulation is a tight slice loop.
//!
//! Randomness derives from a splitmix64 stream keyed by `(seed, row)`,
//! so the coefficients attached to input row `i` depend only on the
//! seed and `i` — not on `m`, the storage backend, or visit order.

use crate::error::LinalgError;
use crate::kernels::MatKernels;
use crate::matrix::Matrix;
use std::fmt;

/// Buckets each input row feeds in the Gaussian sketch.
const GAUSSIAN_SPARSITY: usize = 2;

/// Which sketch family to apply. See the module docs for the
/// cost/quality trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SketchKind {
    /// Sparse half-normal projection: `d = 2` buckets per input row
    /// with `|N(0, 1/d)|` weights, `O(nnz·d)`.
    Gaussian,
    /// Unsigned hash-bucket aggregation, `O(nnz)`.
    CountSketch,
}

impl fmt::Display for SketchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SketchKind::Gaussian => "gaussian",
            SketchKind::CountSketch => "countsketch",
        })
    }
}

/// A fully specified sketch: family, output row count, and seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchConfig {
    /// Sketch family.
    pub kind: SketchKind,
    /// Number of sketch rows `s`. Must be positive; quality demands
    /// `s ≥ k` (ideally a few× `k`) for a rank-`k` factorization.
    pub rows: usize,
    /// Seed for the sketch coefficients.
    pub seed: u64,
}

impl SketchConfig {
    /// Half-normal Gaussian sketch with `rows` output rows.
    pub fn gaussian(rows: usize, seed: u64) -> Self {
        SketchConfig {
            kind: SketchKind::Gaussian,
            rows,
            seed,
        }
    }

    /// Unsigned CountSketch with `rows` output rows (buckets).
    pub fn count_sketch(rows: usize, seed: u64) -> Self {
        SketchConfig {
            kind: SketchKind::CountSketch,
            rows,
            seed,
        }
    }
}

/// splitmix64: tiny, statistically solid, and stable across platforms.
/// Used only for sketch coefficients — the factorization RNGs are
/// unchanged.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-input-row coefficient stream keyed by `(seed, row)`, so row `i`'s
/// sketch coefficients are independent of every other row.
struct RowRng {
    state: u64,
}

impl RowRng {
    fn new(seed: u64, row: usize) -> Self {
        // Decorrelate (seed, row) pairs: run the row index through one
        // splitmix step before xoring, so adjacent rows land in distant
        // stream positions.
        let mut mix = (row as u64).wrapping_add(0x51_7C_C1_B7_27_22_0A_95);
        let salt = splitmix64(&mut mix);
        RowRng { state: seed ^ salt }
    }

    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform in the open interval (0, 1): 53 mantissa bits, never 0,
    /// so it is safe inside `ln()`.
    fn next_open01(&mut self) -> f64 {
        (((self.next_u64() >> 11) as f64) + 0.5) / 9_007_199_254_740_992.0
    }

    /// Half-normal `|N(0, 1)|` via Box–Muller. One draw per call (the
    /// paired sine draw is discarded — coefficient streams stay
    /// one-to-one with `next_u64` pairs, which keeps the derivation
    /// obvious).
    fn next_half_normal(&mut self) -> f64 {
        let u1 = self.next_open01();
        let u2 = self.next_open01();
        ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()).abs()
    }
}

/// Compress the rows of `a` down to `cfg.rows` sketch rows: `B = S·A`,
/// `B` being `cfg.rows × n`, with `S ≥ 0` (see the module docs for why
/// the coefficients are sign-free).
///
/// Sweeps `a` once via [`MatKernels::accumulate_row_into`]; dense and CSR
/// inputs yield bitwise identical sketches, and a nonnegative input
/// always yields a nonnegative sketch. Fails with
/// [`LinalgError::ShapeMismatch`] when `cfg.rows == 0` or `a` is empty.
pub fn sketch_rows<A: MatKernels + ?Sized>(
    a: &A,
    cfg: &SketchConfig,
) -> Result<Matrix, LinalgError> {
    let (m, n) = a.shape();
    if cfg.rows == 0 || m == 0 || n == 0 {
        return Err(LinalgError::ShapeMismatch {
            op: "sketch_rows",
            left: (m, n),
            right: (cfg.rows, n),
        });
    }
    let s = cfg.rows;
    let mut buf = vec![0.0; s * n];
    match cfg.kind {
        SketchKind::Gaussian => {
            // Sparse half-normal: row i contributes to d buckets with
            // |N(0, 1/d)| weights. Draw order per row: (bucket, weight)
            // pairs from row i's own stream.
            let d = GAUSSIAN_SPARSITY.min(s);
            let scale = 1.0 / (d as f64).sqrt();
            for i in 0..m {
                let mut rng = RowRng::new(cfg.seed, i);
                for _ in 0..d {
                    let base = (rng.next_u64() % s as u64) as usize * n;
                    let c = rng.next_half_normal() * scale;
                    a.accumulate_row_into(i, c, &mut buf[base..base + n]);
                }
            }
        }
        SketchKind::CountSketch => {
            // Row i is accumulated into one bucket; a single add per
            // stored entry.
            for i in 0..m {
                let mut rng = RowRng::new(cfg.seed, i);
                let base = (rng.next_u64() % s as u64) as usize * n;
                a.accumulate_row_into(i, 1.0, &mut buf[base..base + n]);
            }
        }
    }
    Ok(Matrix::from_vec(s, n, buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;

    fn sample(m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |i, j| {
            if (i * 31 + j * 17) % 3 == 0 {
                ((i + 1) * (j + 2)) as f64 * 0.125
            } else {
                0.0
            }
        })
    }

    #[test]
    fn dense_and_csr_sketches_are_bitwise_identical() {
        let d = sample(23, 9);
        let s = CsrMatrix::from_dense(&d);
        for cfg in [
            SketchConfig::gaussian(6, 42),
            SketchConfig::count_sketch(6, 42),
        ] {
            let from_dense = sketch_rows(&d, &cfg).expect("dense sketch");
            let from_csr = sketch_rows(&s, &cfg).expect("csr sketch");
            assert_eq!(from_dense.shape(), (6, 9));
            assert_eq!(
                from_dense.as_slice(),
                from_csr.as_slice(),
                "{:?} sketch must not depend on storage",
                cfg.kind
            );
        }
    }

    #[test]
    fn sketches_are_deterministic_in_seed_and_sensitive_to_it() {
        let a = sample(17, 7);
        for kind in [SketchKind::Gaussian, SketchKind::CountSketch] {
            let cfg = SketchConfig {
                kind,
                rows: 5,
                seed: 7,
            };
            let b1 = sketch_rows(&a, &cfg).expect("sketch");
            let b2 = sketch_rows(&a, &cfg).expect("sketch again");
            assert_eq!(b1.as_slice(), b2.as_slice(), "{kind} deterministic");
            let other = sketch_rows(&a, &SketchConfig { seed: 8, ..cfg }).expect("other seed");
            assert_ne!(b1.as_slice(), other.as_slice(), "{kind} varies with seed");
        }
    }

    #[test]
    fn nonnegative_input_yields_nonnegative_sketch() {
        // The property the NMF consumer depends on: S ≥ 0, so conical
        // structure survives the compression.
        let a = sample(31, 11);
        for cfg in [
            SketchConfig::gaussian(8, 3),
            SketchConfig::count_sketch(8, 3),
        ] {
            let b = sketch_rows(&a, &cfg).expect("sketch");
            assert!(
                b.is_nonnegative(),
                "{:?} sketch of nonneg input must be nonneg",
                cfg.kind
            );
            assert!(b.sum() > 0.0, "{:?} sketch must not be all-zero", cfg.kind);
        }
    }

    #[test]
    fn row_coefficients_do_not_depend_on_matrix_height() {
        // Appending rows to A must not perturb the contributions of the
        // rows already present: per-row streams are keyed by (seed, i).
        let tall = sample(12, 8);
        let prefix = Matrix::from_fn(6, 8, |i, j| tall.get(i, j));
        let cfg = SketchConfig::count_sketch(4, 99);
        let b_prefix = sketch_rows(&prefix, &cfg).expect("prefix");
        let b_same = sketch_rows(&prefix, &cfg).expect("again");
        assert_eq!(b_prefix.as_slice(), b_same.as_slice());
        // The tall sketch equals the prefix sketch plus the remaining
        // rows' contributions — for CountSketch, subtracting the suffix
        // rows bucket-by-bucket recovers the prefix sketch bitwise is
        // not guaranteed under fp addition order, so assert the cheaper
        // invariant: prefix contributions are unchanged when the suffix
        // happens to land in other buckets. Every sketch here is over
        // nonneg data, so bucket sums only grow.
        let b_tall = sketch_rows(&tall, &cfg).expect("tall");
        for (t, p) in b_tall.as_slice().iter().zip(b_prefix.as_slice()) {
            assert!(t >= p, "bucket sums can only grow with more rows");
        }
    }

    #[test]
    fn empty_configs_are_rejected() {
        let a = sample(4, 4);
        let err = sketch_rows(&a, &SketchConfig::gaussian(0, 1)).unwrap_err();
        assert!(matches!(
            err,
            LinalgError::ShapeMismatch {
                op: "sketch_rows",
                ..
            }
        ));
        let empty = Matrix::zeros(0, 0);
        assert!(sketch_rows(&empty, &SketchConfig::gaussian(3, 1)).is_err());
    }
}
