//! Property-based tests for the linear-algebra substrate.

use anchors_linalg::matrix::Matrix;
use anchors_linalg::*;
use proptest::prelude::*;

/// Strategy: a matrix with dims in [1, max_dim] and entries in [-10, 10].
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Strategy: two multiply-compatible matrices.
fn compatible_pair(max_dim: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(m, k, n)| {
        (
            prop::collection::vec(-5.0f64..5.0, m * k),
            prop::collection::vec(-5.0f64..5.0, k * n),
        )
            .prop_map(move |(a, b)| (Matrix::from_vec(m, k, a), Matrix::from_vec(k, n, b)))
    })
}

proptest! {
    #[test]
    fn transpose_is_involutive(m in matrix_strategy(12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn parallel_matmul_equals_sequential((a, b) in compatible_pair(20)) {
        let p = matmul(&a, &b);
        let s = matmul_seq(&a, &b);
        prop_assert_eq!(p, s);
    }

    #[test]
    fn matmul_transpose_identity((a, b) in compatible_pair(10)) {
        // (A B)ᵀ == Bᵀ Aᵀ
        let lhs = matmul(&a, &b).transpose();
        let rhs = matmul(&b.transpose(), &a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn at_b_consistent_with_explicit((a, b) in (1usize..8, 1usize..8, 1usize..8)
        .prop_flat_map(|(m, p, q)| (
            prop::collection::vec(-5.0f64..5.0, m * p),
            prop::collection::vec(-5.0f64..5.0, m * q),
        ).prop_map(move |(x, y)| (Matrix::from_vec(m, p, x), Matrix::from_vec(m, q, y))))) {
        let direct = matmul_at_b(&a, &b);
        let explicit = matmul(&a.transpose(), &b);
        prop_assert!(direct.approx_eq(&explicit, 1e-9));
    }

    #[test]
    fn identity_is_matmul_neutral(m in matrix_strategy(10)) {
        let left = matmul(&Matrix::identity(m.rows()), &m);
        let right = matmul(&m, &Matrix::identity(m.cols()));
        prop_assert!(left.approx_eq(&m, 1e-12));
        prop_assert!(right.approx_eq(&m, 1e-12));
    }

    #[test]
    fn gram_is_symmetric_psd_trace(m in matrix_strategy(10)) {
        let g = gram(&m);
        // Symmetric.
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                prop_assert!((g.get(i, j) - g.get(j, i)).abs() < 1e-9);
            }
        }
        // Trace equals ‖A‖_F².
        let trace: f64 = (0..g.rows()).map(|i| g.get(i, i)).sum();
        prop_assert!((trace - frobenius_sq(&m)).abs() < 1e-6 * (1.0 + trace.abs()));
    }

    #[test]
    fn eigen_reconstructs_symmetric(m in matrix_strategy(8)) {
        // Build a symmetric matrix from m.
        let s = if m.rows() == m.cols() {
            ops::add(&m, &m.transpose())
        } else {
            gram(&m)
        };
        let e = sym_eigen(&s);
        let d = Matrix::diag(&e.values);
        let rec = matmul(&matmul(&e.vectors, &d), &e.vectors.transpose());
        let scale = frobenius(&s).max(1.0);
        prop_assert!(frobenius_diff(&rec, &s) < 1e-7 * scale);
    }

    #[test]
    fn svd_reconstructs(m in matrix_strategy(9)) {
        let svd = thin_svd(&m);
        let rec = svd.reconstruct();
        let scale = frobenius(&m).max(1.0);
        prop_assert!(frobenius_diff(&rec, &m) < 1e-6 * scale);
        // Singular values are nonnegative and sorted descending.
        for w in svd.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        for &s in &svd.s {
            prop_assert!(s >= 0.0);
        }
    }

    #[test]
    fn frobenius_triangle_inequality(m in matrix_strategy(8), t in -3.0f64..3.0) {
        let b = m.map(|v| v * t + 1.0);
        let lhs = frobenius(&ops::add(&m, &b));
        prop_assert!(lhs <= frobenius(&m) + frobenius(&b) + 1e-9);
    }

    #[test]
    fn cosine_distance_bounds(
        x in prop::collection::vec(-10.0f64..10.0, 1..20),
    ) {
        let y: Vec<f64> = x.iter().map(|v| v * -0.5 + 1.0).collect();
        let d = distance::distance(&x, &y, Metric::Cosine);
        prop_assert!((0.0..=2.0).contains(&d));
        let self_d = distance::distance(&x, &x, Metric::Cosine);
        prop_assert!(self_d.abs() < 1e-9);
    }

    #[test]
    fn jaccard_is_metric_like(
        bits_a in prop::collection::vec(0u8..2, 1..30),
    ) {
        let a: Vec<f64> = bits_a.iter().map(|&b| b as f64).collect();
        let flipped: Vec<f64> = bits_a.iter().map(|&b| (1 - b) as f64).collect();
        let d_self = distance::distance(&a, &a, Metric::Jaccard);
        prop_assert_eq!(d_self, 0.0);
        let d = distance::distance(&a, &flipped, Metric::Jaccard);
        prop_assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn pairwise_distances_symmetric_zero_diag(m in matrix_strategy(8)) {
        let d = pairwise_distances(&m, Metric::Euclidean);
        prop_assert!(distance::validate_distance_matrix(&d).is_ok());
    }

    #[test]
    fn survival_counts_monotone(values in prop::collection::vec(0usize..10, 0..50)) {
        let s = stats::survival_counts(&values);
        for w in s.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        prop_assert_eq!(s[0], values.len());
        prop_assert_eq!(*s.last().unwrap(), 0);
    }

    #[test]
    fn normalize_rows_yields_unit_or_zero(m in matrix_strategy(10)) {
        let mut n = m.clone();
        norms::normalize_rows(&mut n);
        for i in 0..n.rows() {
            let r = norms::norm2(n.row(i));
            prop_assert!(r.abs() < 1e-9 || (r - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn permutation_roundtrip(m in matrix_strategy(10)) {
        let n = m.rows();
        // Reverse permutation applied twice is identity.
        let perm: Vec<usize> = (0..n).rev().collect();
        let p = m.permute_rows(&perm).permute_rows(&perm);
        prop_assert_eq!(p, m);
    }
}
