//! Property-based parity suite for the cache-blocked microkernels: under
//! `ANCHORS_KERNEL=scalar` and `ANCHORS_KERNEL=blocked` every multiply
//! kernel must agree within 1 ulp — and in practice bitwise, since the
//! blocked kernels preserve the scalar per-entry reduction order (see
//! `microkernel` module docs) — across random shapes including ragged
//! tails, for dense and CSR storage alike.
//!
//! The kernel-mode override is process-global, so every property that
//! flips it runs under one mutex; the matrices themselves are per-case.

use anchors_linalg::kernels::MatKernels;
use anchors_linalg::ops::{gram, matmul, matmul_a_bt, matmul_at_b};
use anchors_linalg::sparse::CsrMatrix;
use anchors_linalg::{set_kernel_mode, KernelMode, Matrix};
use proptest::prelude::*;
use std::sync::Mutex;

static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` twice — once forced scalar, once forced blocked — and return
/// both results. Serialized because the override is process-global.
fn under_both_modes<R>(mut f: impl FnMut() -> R) -> (R, R) {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_kernel_mode(Some(KernelMode::Scalar));
    let scalar = f();
    set_kernel_mode(Some(KernelMode::Blocked));
    let blocked = f();
    set_kernel_mode(None);
    (scalar, blocked)
}

/// Distance in units-in-the-last-place between two finite doubles.
fn ulp_distance(a: f64, b: f64) -> u64 {
    // Map the sign-magnitude bit pattern onto a monotone integer line so
    // adjacent floats (of either sign) differ by exactly 1.
    fn ordered(x: f64) -> i64 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN.wrapping_sub(bits)
        } else {
            bits
        }
    }
    ordered(a).abs_diff(ordered(b))
}

fn assert_within_one_ulp(scalar: &Matrix, blocked: &Matrix) -> Result<(), TestCaseError> {
    prop_assert_eq!(scalar.shape(), blocked.shape());
    for (i, (s, b)) in scalar.as_slice().iter().zip(blocked.as_slice()).enumerate() {
        prop_assert!(
            ulp_distance(*s, *b) <= 1,
            "entry {i}: scalar {s:e} vs blocked {b:e}"
        );
    }
    Ok(())
}

/// Strategy: a dense matrix with the given shape, entries in [-5, 5] with
/// ~25% exact zeros so the scalar skip rules are exercised.
fn matrix_with(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(
        prop_oneof![3 => -5.0f64..5.0, 1 => Just(0.0f64)],
        rows * cols,
    )
    .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: multiply-compatible `(m×k, k×n)` pairs whose dims straddle
/// the 4×8 register tile (ragged tails included) and whose work crosses
/// the auto-dispatch threshold in both directions.
fn compatible_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..40, 1usize..40, 1usize..40)
        .prop_flat_map(|(m, k, n)| (matrix_with(m, k), matrix_with(k, n)))
}

/// Strategy: same-height pairs `(m×k, n×k)` for the `A·Bᵀ` kernel.
fn abt_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..40, 1usize..40, 1usize..40)
        .prop_flat_map(|(m, k, n)| (matrix_with(m, k), matrix_with(n, k)))
}

proptest! {
    #[test]
    fn matmul_scalar_blocked_parity((a, b) in compatible_pair()) {
        let (s, p) = under_both_modes(|| matmul(&a, &b));
        assert_within_one_ulp(&s, &p)?;
    }

    #[test]
    fn matmul_at_b_scalar_blocked_parity((a, b) in (1usize..40, 1usize..24, 1usize..24)
        .prop_flat_map(|(m, p, q)| (matrix_with(m, p), matrix_with(m, q)))) {
        let (s, bl) = under_both_modes(|| matmul_at_b(&a, &b));
        assert_within_one_ulp(&s, &bl)?;
    }

    #[test]
    fn matmul_a_bt_scalar_blocked_parity((a, b) in abt_pair()) {
        let (s, p) = under_both_modes(|| matmul_a_bt(&a, &b));
        assert_within_one_ulp(&s, &p)?;
    }

    #[test]
    fn gram_scalar_blocked_parity(a in (1usize..40, 1usize..24)
        .prop_flat_map(|(m, n)| matrix_with(m, n))) {
        let (s, p) = under_both_modes(|| gram(&a));
        assert_within_one_ulp(&s, &p)?;
    }

    #[test]
    fn csr_a_bt_scalar_blocked_parity((a, b) in abt_pair()) {
        let csr = CsrMatrix::from_dense(&a);
        let (s, p) = under_both_modes(|| {
            let mut out = Matrix::zeros(a.rows(), b.rows());
            csr.a_bt_into(&b, &mut out);
            out
        });
        assert_within_one_ulp(&s, &p)?;
        // And CSR stays bitwise-paired with the dense kernel in both modes.
        let (ds, dp) = under_both_modes(|| matmul_a_bt(&a, &b));
        assert_within_one_ulp(&ds, &s)?;
        assert_within_one_ulp(&dp, &p)?;
    }

    #[test]
    fn csr_at_b_scalar_blocked_parity((a, b) in (1usize..40, 1usize..24, 1usize..24)
        .prop_flat_map(|(m, p, q)| (matrix_with(m, p), matrix_with(m, q)))) {
        let csr = CsrMatrix::from_dense(&a);
        let (s, p) = under_both_modes(|| {
            let mut out = Matrix::zeros(a.cols(), b.cols());
            csr.at_b_into(&b, &mut out);
            out
        });
        assert_within_one_ulp(&s, &p)?;
    }
}
