//! Property-based tests of the task-graph substrate: every random DAG must
//! sort, analyze, and schedule correctly, and every schedule must respect
//! the classical bounds.

use anchors_sched::{graham_bounds, layered_dag, list_schedule, random_dag, Priority, TaskGraph};
use proptest::prelude::*;

fn dag_strategy() -> impl Strategy<Value = TaskGraph> {
    (2usize..40, 0.0f64..0.4, 0u64..1000).prop_map(|(n, p, seed)| random_dag(n, p, 0.5..=6.0, seed))
}

fn layered_strategy() -> impl Strategy<Value = TaskGraph> {
    (2usize..6, 2usize..8, 0.1f64..0.6, 0u64..500)
        .prop_map(|(l, w, p, seed)| layered_dag(l, w, p, 1.0..=5.0, seed))
}

proptest! {
    #[test]
    fn random_dags_are_acyclic_and_sortable(g in dag_strategy()) {
        let order = g.topological_sort().expect("generator builds DAGs");
        prop_assert!(g.is_topological_order(&order));
        prop_assert_eq!(order.len(), g.len());
    }

    #[test]
    fn critical_path_length_equals_span(g in dag_strategy()) {
        let span = g.span().unwrap();
        let path = g.critical_path().unwrap();
        let len: f64 = path.iter().map(|&t| g.duration(t)).sum();
        prop_assert!((len - span).abs() < 1e-9);
        // Path edges actually exist.
        for w in path.windows(2) {
            prop_assert!(g.successors(w[0]).contains(&w[1]));
        }
    }

    #[test]
    fn work_bounds_span(g in dag_strategy()) {
        let span = g.span().unwrap();
        prop_assert!(span <= g.work() + 1e-9);
        let par = g.average_parallelism().unwrap();
        prop_assert!(par >= 1.0 - 1e-9 || g.is_empty());
        prop_assert!(par <= g.len() as f64 + 1e-9);
    }

    #[test]
    fn schedules_valid_and_within_graham_bounds(
        g in dag_strategy(),
        m in 1usize..9,
        policy_idx in 0usize..4,
    ) {
        let policy = [
            Priority::CriticalPath,
            Priority::Fifo,
            Priority::LongestFirst,
            Priority::ShortestFirst,
        ][policy_idx];
        let s = list_schedule(&g, m, policy);
        prop_assert!(s.validate(&g).is_ok(), "{:?}", s.validate(&g));
        let (lo, hi) = graham_bounds(&g, m);
        prop_assert!(s.makespan >= lo - 1e-9, "{} < {lo}", s.makespan);
        prop_assert!(s.makespan <= hi + 1e-9, "{} > {hi}", s.makespan);
        // Utilization is a fraction.
        let u = s.utilization();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
    }

    #[test]
    fn single_processor_makespan_is_work(g in dag_strategy()) {
        let s = list_schedule(&g, 1, Priority::CriticalPath);
        prop_assert!((s.makespan - g.work()).abs() < 1e-9);
    }

    #[test]
    fn many_processors_reach_span_on_layered(g in layered_strategy()) {
        // With as many processors as tasks, list scheduling achieves the
        // critical path exactly (greedy never idles a ready task).
        let s = list_schedule(&g, g.len(), Priority::CriticalPath);
        let span = g.span().unwrap();
        prop_assert!((s.makespan - span).abs() < 1e-9, "{} vs {span}", s.makespan);
    }

    #[test]
    fn level_profile_sums_to_task_count(g in dag_strategy()) {
        let profile = g.level_profile().unwrap();
        prop_assert_eq!(profile.iter().sum::<usize>(), g.len());
        prop_assert!(!profile.is_empty());
        prop_assert!(profile[0] >= 1, "at least one source task");
    }

    #[test]
    fn bottom_levels_decrease_along_edges(g in dag_strategy()) {
        let b = g.bottom_levels().unwrap();
        for t in g.tasks() {
            for &s in g.successors(t) {
                prop_assert!(
                    b[t.index()] >= b[s.index()] + g.duration(t) - 1e-9,
                    "bottom level must include own duration plus best successor"
                );
            }
        }
    }
}
