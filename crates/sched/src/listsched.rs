//! List-scheduling simulator.
//!
//! "Implementing a list-scheduling simulator would be a good application of
//! priority queues, and graphs" (§5.2) — this is that simulator, built on
//! two priority queues: a ready queue ordered by the chosen priority policy
//! and an event queue of task completions ordered by time.

use crate::graph::{TaskGraph, TaskId};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Priority policy of the ready queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Priority {
    /// Highest bottom-level first (critical-path scheduling, HLF).
    CriticalPath,
    /// First-come-first-served by task id (what a naive student would do).
    Fifo,
    /// Longest processing time first.
    LongestFirst,
    /// Shortest processing time first.
    ShortestFirst,
}

/// One scheduled task instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// The task.
    pub task: TaskId,
    /// Processor index `0..m`.
    pub proc: usize,
    /// Start time.
    pub start: f64,
    /// Finish time (`start + duration`).
    pub finish: f64,
}

/// A complete schedule produced by [`list_schedule`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schedule {
    /// Number of processors used.
    pub processors: usize,
    /// Placements in order of start time.
    pub placements: Vec<Placement>,
    /// Completion time of the last task.
    pub makespan: f64,
}

impl Schedule {
    /// Placement of a given task.
    pub fn placement_of(&self, t: TaskId) -> Option<&Placement> {
        self.placements.iter().find(|p| p.task == t)
    }

    /// Total busy time across processors divided by `m × makespan` — the
    /// utilization of the schedule in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0.0 || self.processors == 0 {
            return 0.0;
        }
        let busy: f64 = self.placements.iter().map(|p| p.finish - p.start).sum();
        busy / (self.makespan * self.processors as f64)
    }

    /// Validate the schedule against its graph: every task placed exactly
    /// once, dependencies respected, no processor overlap.
    pub fn validate(&self, g: &TaskGraph) -> Result<(), String> {
        if self.placements.len() != g.len() {
            return Err(format!(
                "{} placements for {} tasks",
                self.placements.len(),
                g.len()
            ));
        }
        let mut seen = vec![false; g.len()];
        for p in &self.placements {
            if seen[p.task.index()] {
                return Err(format!("task {} placed twice", p.task.0));
            }
            seen[p.task.index()] = true;
            if p.proc >= self.processors {
                return Err(format!("task {} on invalid processor {}", p.task.0, p.proc));
            }
            if (p.finish - p.start - g.duration(p.task)).abs() > 1e-9 {
                return Err(format!("task {} has wrong duration slot", p.task.0));
            }
        }
        // Dependencies.
        for p in &self.placements {
            for &dep in g.predecessors(p.task) {
                let dp = self
                    .placement_of(dep)
                    .ok_or_else(|| format!("dependency {} unplaced", dep.0))?;
                if dp.finish > p.start + 1e-9 {
                    return Err(format!(
                        "task {} starts at {} before dep {} finishes at {}",
                        p.task.0, p.start, dep.0, dp.finish
                    ));
                }
            }
        }
        // Processor overlap.
        for proc in 0..self.processors {
            let mut slots: Vec<(f64, f64)> = self
                .placements
                .iter()
                .filter(|p| p.proc == proc)
                .map(|p| (p.start, p.finish))
                .collect();
            slots.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
            for w in slots.windows(2) {
                if w[0].1 > w[1].0 + 1e-9 {
                    return Err(format!("overlap on processor {proc}"));
                }
            }
        }
        Ok(())
    }
}

/// Entry of the ready priority queue.
#[derive(Debug, Clone, Copy)]
struct Ready {
    task: TaskId,
    key: f64,
}

impl PartialEq for Ready {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.task == other.task
    }
}
impl Eq for Ready {}
impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ready {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on key; ties broken toward the smaller task id so runs
        // are deterministic.
        self.key
            .partial_cmp(&other.key)
            .expect("finite priority keys")
            .then(other.task.0.cmp(&self.task.0))
    }
}

/// Event of the simulation clock: a processor becomes free.
#[derive(Debug, Clone, Copy)]
struct Completion {
    time: f64,
    proc: usize,
    task: TaskId,
}

impl PartialEq for Completion {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.proc == other.proc
    }
}
impl Eq for Completion {}
impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Completion {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via reversal: earliest completion first, then processor.
        other
            .time
            .partial_cmp(&self.time)
            .expect("finite times")
            .then(other.proc.cmp(&self.proc))
            .then(other.task.0.cmp(&self.task.0))
    }
}

/// Run list scheduling of `g` on `m` identical processors under a priority
/// policy. Event-driven: O((n + e) log n).
///
/// # Panics
/// Panics if `m == 0` or the graph has a cycle.
pub fn list_schedule(g: &TaskGraph, m: usize, policy: Priority) -> Schedule {
    assert!(m > 0, "need at least one processor");
    let keys: Vec<f64> = match policy {
        Priority::CriticalPath => g.bottom_levels().expect("list_schedule requires a DAG"),
        Priority::Fifo => g.tasks().map(|t| -(t.0 as f64)).collect(),
        Priority::LongestFirst => g.tasks().map(|t| g.duration(t)).collect(),
        Priority::ShortestFirst => g.tasks().map(|t| -g.duration(t)).collect(),
    };
    assert!(g.is_dag(), "list_schedule requires a DAG");

    let n = g.len();
    let mut indeg: Vec<usize> = g.tasks().map(|t| g.predecessors(t).len()).collect();
    let mut ready: BinaryHeap<Ready> = g
        .tasks()
        .filter(|&t| indeg[t.index()] == 0)
        .map(|t| Ready {
            task: t,
            key: keys[t.index()],
        })
        .collect();
    let mut events: BinaryHeap<Completion> = BinaryHeap::new();
    let mut free_procs: BinaryHeap<std::cmp::Reverse<usize>> =
        (0..m).map(std::cmp::Reverse).collect();
    let mut placements = Vec::with_capacity(n);
    let mut now = 0.0f64;
    let mut done = 0usize;

    while done < n {
        // Start as many ready tasks as there are free processors.
        while let (Some(&std::cmp::Reverse(proc)), false) = (free_procs.peek(), ready.is_empty()) {
            let r = ready.pop().expect("nonempty checked");
            free_procs.pop();
            let finish = now + g.duration(r.task);
            placements.push(Placement {
                task: r.task,
                proc,
                start: now,
                finish,
            });
            events.push(Completion {
                time: finish,
                proc,
                task: r.task,
            });
        }
        // Advance the clock to the next completion.
        let Some(ev) = events.pop() else {
            // No running tasks but not done ⇒ impossible on a DAG.
            unreachable!("simulation stalled with {done}/{n} tasks done");
        };
        now = ev.time;
        free_procs.push(std::cmp::Reverse(ev.proc));
        done += 1;
        for &s in g.successors(ev.task) {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                ready.push(Ready {
                    task: s,
                    key: keys[s.index()],
                });
            }
        }
        // Drain any simultaneous completions before scheduling again.
        while let Some(&next) = events.peek() {
            if next.time > now + 1e-12 {
                break;
            }
            let ev = events.pop().expect("peeked");
            free_procs.push(std::cmp::Reverse(ev.proc));
            done += 1;
            for &s in g.successors(ev.task) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    ready.push(Ready {
                        task: s,
                        key: keys[s.index()],
                    });
                }
            }
        }
    }

    placements.sort_by(|a, b| {
        a.start
            .partial_cmp(&b.start)
            .expect("finite")
            .then(a.proc.cmp(&b.proc))
    });
    let makespan = placements.iter().map(|p| p.finish).fold(0.0, f64::max);
    Schedule {
        processors: m,
        placements,
        makespan,
    }
}

/// Theoretical bounds on any list schedule (Graham): the makespan is at
/// least `max(work/m, span)` and at most `work/m + span·(m−1)/m`.
pub fn graham_bounds(g: &TaskGraph, m: usize) -> (f64, f64) {
    let work = g.work();
    let span = g.span().expect("graham_bounds requires a DAG");
    let lower = (work / m as f64).max(span);
    let upper = work / m as f64 + span * (m as f64 - 1.0) / m as f64;
    (lower, upper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{fork_join, layered_dag, random_dag};

    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 2.0);
        let c = g.add_task("c", 3.0);
        let d = g.add_task("d", 1.0);
        g.add_dep(a, b);
        g.add_dep(a, c);
        g.add_dep(b, d);
        g.add_dep(c, d);
        g
    }

    #[test]
    fn diamond_on_two_procs_hits_span() {
        let g = diamond();
        let s = list_schedule(&g, 2, Priority::CriticalPath);
        s.validate(&g).expect("valid");
        // b and c run in parallel: makespan = 1 + 3 + 1 = 5 = span.
        assert_eq!(s.makespan, 5.0);
    }

    #[test]
    fn single_proc_makespan_is_work() {
        let g = diamond();
        for policy in [
            Priority::CriticalPath,
            Priority::Fifo,
            Priority::LongestFirst,
            Priority::ShortestFirst,
        ] {
            let s = list_schedule(&g, 1, policy);
            s.validate(&g).expect("valid");
            assert_eq!(s.makespan, g.work(), "{policy:?}");
        }
    }

    #[test]
    fn graham_bounds_hold_on_random_dags() {
        for seed in 0..5 {
            let g = random_dag(40, 0.12, 1.0..=8.0, seed);
            let (lo, hi) = graham_bounds(&g, 4);
            for policy in [
                Priority::CriticalPath,
                Priority::Fifo,
                Priority::LongestFirst,
                Priority::ShortestFirst,
            ] {
                let s = list_schedule(&g, 4, policy);
                s.validate(&g).expect("valid");
                assert!(
                    s.makespan >= lo - 1e-9 && s.makespan <= hi + 1e-9,
                    "seed {seed} {policy:?}: {} ∉ [{lo}, {hi}]",
                    s.makespan
                );
            }
        }
    }

    #[test]
    fn more_processors_never_worse_under_critical_path() {
        // Graham anomalies exist in general, but for these benign layered
        // DAGs with HLF the trend holds; this is the behaviour the §5.2
        // student assignment is meant to expose.
        let g = layered_dag(6, 8, 0.4, 1.0..=4.0, 3);
        let s1 = list_schedule(&g, 1, Priority::CriticalPath);
        let s4 = list_schedule(&g, 4, Priority::CriticalPath);
        let s8 = list_schedule(&g, 8, Priority::CriticalPath);
        assert!(s4.makespan <= s1.makespan + 1e-9);
        assert!(s8.makespan <= s4.makespan * 1.5 + 1e-9);
    }

    #[test]
    fn critical_path_beats_or_matches_fifo_usually() {
        let mut cp_wins = 0;
        let mut fifo_wins = 0;
        for seed in 0..20 {
            let g = layered_dag(5, 6, 0.35, 1.0..=10.0, seed);
            let cp = list_schedule(&g, 3, Priority::CriticalPath).makespan;
            let ff = list_schedule(&g, 3, Priority::Fifo).makespan;
            if cp < ff - 1e-9 {
                cp_wins += 1;
            }
            if ff < cp - 1e-9 {
                fifo_wins += 1;
            }
        }
        assert!(
            cp_wins >= fifo_wins,
            "critical-path priority should not lose overall ({cp_wins} vs {fifo_wins})"
        );
    }

    #[test]
    fn fork_join_utilization() {
        let g = fork_join(16, 1.0, 0.5);
        let s = list_schedule(&g, 4, Priority::CriticalPath);
        s.validate(&g).expect("valid");
        // 16 unit tasks on 4 procs between fork and join: 4 waves.
        assert_eq!(s.makespan, 0.5 + 4.0 + 0.5);
        assert!(s.utilization() > 0.5);
    }

    #[test]
    fn empty_graph_schedules_trivially() {
        let g = TaskGraph::new();
        let s = list_schedule(&g, 2, Priority::Fifo);
        assert_eq!(s.makespan, 0.0);
        assert!(s.placements.is_empty());
        s.validate(&g).expect("valid");
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_panics() {
        let g = diamond();
        let _ = list_schedule(&g, 0, Priority::Fifo);
    }

    #[test]
    fn determinism() {
        let g = random_dag(30, 0.1, 1.0..=5.0, 9);
        let a = list_schedule(&g, 3, Priority::CriticalPath);
        let b = list_schedule(&g, 3, Priority::CriticalPath);
        assert_eq!(a.placements, b.placements);
    }
}
