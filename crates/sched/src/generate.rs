//! Random task-graph generators for the scheduling simulator and benches.

use crate::graph::{TaskGraph, TaskId};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::ops::RangeInclusive;

/// Random layered DAG: `layers` layers of `width` tasks; each task depends
/// on each task of the previous layer with probability `p` (at least one
/// dependency is forced so layers are real).
pub fn layered_dag(
    layers: usize,
    width: usize,
    p: f64,
    durations: RangeInclusive<f64>,
    seed: u64,
) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = TaskGraph::new();
    let mut prev: Vec<TaskId> = Vec::new();
    for l in 0..layers {
        let mut cur = Vec::with_capacity(width);
        for w in 0..width {
            let d = rng.gen_range(durations.clone());
            let t = g.add_task(format!("L{l}T{w}"), d);
            if !prev.is_empty() {
                let mut any = false;
                for &p_task in &prev {
                    if rng.gen::<f64>() < p {
                        g.add_dep(p_task, t);
                        any = true;
                    }
                }
                if !any {
                    let pick = prev[rng.gen_range(0..prev.len())];
                    g.add_dep(pick, t);
                }
            }
            cur.push(t);
        }
        prev = cur;
    }
    g
}

/// Random DAG on `n` tasks: edge `i → j` (for `i < j`) with probability `p`.
pub fn random_dag(n: usize, p: f64, durations: RangeInclusive<f64>, seed: u64) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = TaskGraph::new();
    let ids: Vec<TaskId> = (0..n)
        .map(|i| g.add_task(format!("t{i}"), rng.gen_range(durations.clone())))
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen::<f64>() < p {
                g.add_dep(ids[i], ids[j]);
            }
        }
    }
    g
}

/// Fork-join: a fork task, `width` independent unit tasks of duration
/// `body`, and a join task. Fork and join have duration `overhead`.
pub fn fork_join(width: usize, body: f64, overhead: f64) -> TaskGraph {
    let mut g = TaskGraph::new();
    let fork = g.add_task("fork", overhead);
    let join = g.add_task("join", overhead);
    for i in 0..width {
        let t = g.add_task(format!("body{i}"), body);
        g.add_dep(fork, t);
        g.add_dep(t, join);
    }
    g
}

/// Wavefront DAG of an `n × n` bottom-up dynamic program: cell `(i, j)`
/// depends on `(i−1, j)` and `(i, j−1)` — the §5.2 "bottom-up parallelism"
/// example for DS type-3 courses.
pub fn dp_wavefront(n: usize, cell_cost: f64) -> TaskGraph {
    let mut g = TaskGraph::new();
    let mut ids = vec![vec![]; n];
    for (i, row) in ids.iter_mut().enumerate() {
        for j in 0..n {
            row.push(g.add_task(format!("c{i}_{j}"), cell_cost));
        }
        let _ = i;
    }
    for i in 0..n {
        for j in 0..n {
            if i > 0 {
                g.add_dep(ids[i - 1][j], ids[i][j]);
            }
            if j > 0 {
                g.add_dep(ids[i][j - 1], ids[i][j]);
            }
        }
    }
    g
}

/// Divide-and-conquer binary task tree of the given depth: a recursive
/// "spawn" tree followed by a mirrored "merge" tree (cilk-style brute force,
/// the §5.2 recommendation for DS type-3 courses).
pub fn divide_and_conquer(depth: usize, leaf_cost: f64, node_cost: f64) -> TaskGraph {
    let mut g = TaskGraph::new();
    // Recursive helper building split/merge pairs; returns (entry, exit).
    fn build(
        g: &mut TaskGraph,
        depth: usize,
        leaf_cost: f64,
        node_cost: f64,
        label: String,
    ) -> (TaskId, TaskId) {
        if depth == 0 {
            let t = g.add_task(format!("leaf{label}"), leaf_cost);
            return (t, t);
        }
        let split = g.add_task(format!("split{label}"), node_cost);
        let merge = g.add_task(format!("merge{label}"), node_cost);
        for side in 0..2 {
            let (entry, exit) = build(
                g,
                depth - 1,
                leaf_cost,
                node_cost,
                format!("{label}.{side}"),
            );
            g.add_dep(split, entry);
            g.add_dep(exit, merge);
        }
        (split, merge)
    }
    build(&mut g, depth, leaf_cost, node_cost, String::new());
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layered_is_dag_with_expected_size() {
        let g = layered_dag(4, 5, 0.3, 1.0..=2.0, 0);
        assert_eq!(g.len(), 20);
        assert!(g.is_dag());
        // Every layer-l task (l>0) has at least one dependency.
        let profile = g.level_profile().unwrap();
        assert_eq!(profile.iter().sum::<usize>(), 20);
        assert_eq!(profile.len(), 4, "forced deps keep layers distinct");
    }

    #[test]
    fn random_dag_is_acyclic() {
        for seed in 0..5 {
            let g = random_dag(30, 0.2, 1.0..=3.0, seed);
            assert!(g.is_dag(), "seed {seed}");
        }
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(5, 2.0, 1.0);
        assert_eq!(g.len(), 7);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.span(), Some(1.0 + 2.0 + 1.0));
        assert_eq!(g.level_profile().unwrap(), vec![1, 5, 1]);
    }

    #[test]
    fn wavefront_span_is_antidiagonal() {
        let g = dp_wavefront(4, 1.0);
        assert_eq!(g.len(), 16);
        // Longest path walks 2n−1 cells.
        assert_eq!(g.span(), Some(7.0));
        // Peak parallelism is the main antidiagonal.
        let profile = g.level_profile().unwrap();
        assert_eq!(profile.iter().copied().max(), Some(4));
        assert_eq!(profile.len(), 7);
    }

    #[test]
    fn dnc_tree_sizes() {
        let g = divide_and_conquer(3, 4.0, 1.0);
        // 2^3 leaves + 2·(2^3 − 1) split/merge nodes = 8 + 14 = 22.
        assert_eq!(g.len(), 22);
        assert!(g.is_dag());
        // Span = 3 splits + leaf + 3 merges = 3 + 4 + 3 = 10.
        assert_eq!(g.span(), Some(10.0));
    }

    #[test]
    fn generators_deterministic() {
        let a = layered_dag(3, 4, 0.5, 1.0..=2.0, 7);
        let b = layered_dag(3, 4, 0.5, 1.0..=2.0, 7);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.work(), b.work());
    }
}
