//! Directed acyclic task graphs.
//!
//! Section 5.2 of the paper recommends that Data Structures courses
//! "consider the Parallel Task Graph model of parallel codes and as
//! assignments implement topological sorts to derive a feasible order of
//! tasks and compute metrics like critical path to get a sense how parallel
//! the graph is". This module is that model: weighted DAGs with topological
//! sorting, work/span/critical-path analytics, and parallelism profiles.

use serde::{Deserialize, Serialize};

/// Identifier of a task in a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Index into the graph's task vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A weighted directed acyclic task graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TaskGraph {
    durations: Vec<f64>,
    names: Vec<String>,
    /// Forward edges: `succs[t]` = tasks depending on `t`.
    succs: Vec<Vec<TaskId>>,
    /// Backward edges: `preds[t]` = dependencies of `t`.
    preds: Vec<Vec<TaskId>>,
}

impl TaskGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task with a duration (weight). Returns its id.
    ///
    /// # Panics
    /// Panics if `duration` is negative or non-finite.
    pub fn add_task(&mut self, name: impl Into<String>, duration: f64) -> TaskId {
        assert!(
            duration.is_finite() && duration >= 0.0,
            "invalid duration {duration}"
        );
        let id = TaskId(self.durations.len() as u32);
        self.durations.push(duration);
        self.names.push(name.into());
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    /// Add a dependency edge `from → to` (`to` cannot start before `from`
    /// completes). Duplicate edges are ignored.
    ///
    /// # Panics
    /// Panics on self-loops or unknown ids.
    pub fn add_dep(&mut self, from: TaskId, to: TaskId) {
        assert_ne!(from, to, "self-dependency on task {}", from.0);
        assert!(from.index() < self.len() && to.index() < self.len());
        if !self.succs[from.index()].contains(&to) {
            self.succs[from.index()].push(to);
            self.preds[to.index()].push(from);
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.durations.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.durations.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(|s| s.len()).sum()
    }

    /// Duration of a task.
    pub fn duration(&self, t: TaskId) -> f64 {
        self.durations[t.index()]
    }

    /// Name of a task.
    pub fn name(&self, t: TaskId) -> &str {
        &self.names[t.index()]
    }

    /// Successors of a task.
    pub fn successors(&self, t: TaskId) -> &[TaskId] {
        &self.succs[t.index()]
    }

    /// Predecessors (dependencies) of a task.
    pub fn predecessors(&self, t: TaskId) -> &[TaskId] {
        &self.preds[t.index()]
    }

    /// All task ids.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> {
        (0..self.len() as u32).map(TaskId)
    }

    /// Total work: sum of all durations.
    pub fn work(&self) -> f64 {
        self.durations.iter().sum()
    }

    /// Kahn topological sort. Returns `None` if the graph has a cycle.
    /// Ties are broken by task id, so the order is deterministic.
    pub fn topological_sort(&self) -> Option<Vec<TaskId>> {
        let n = self.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.preds[i].len()).collect();
        // BinaryHeap is a max-heap; use Reverse for id order.
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = indeg
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| std::cmp::Reverse(i as u32))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(i)) = ready.pop() {
            let t = TaskId(i);
            order.push(t);
            for &s in &self.succs[t.index()] {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    ready.push(std::cmp::Reverse(s.0));
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None // cycle
        }
    }

    /// Whether the graph is acyclic.
    pub fn is_dag(&self) -> bool {
        self.topological_sort().is_some()
    }

    /// Verify that `order` is a valid topological order of the graph.
    pub fn is_topological_order(&self, order: &[TaskId]) -> bool {
        if order.len() != self.len() {
            return false;
        }
        let mut pos = vec![usize::MAX; self.len()];
        for (i, &t) in order.iter().enumerate() {
            if t.index() >= self.len() || pos[t.index()] != usize::MAX {
                return false;
            }
            pos[t.index()] = i;
        }
        self.tasks().all(|t| {
            self.succs[t.index()]
                .iter()
                .all(|&s| pos[t.index()] < pos[s.index()])
        })
    }

    /// Bottom levels: `b[t]` = length of the longest duration-weighted path
    /// starting at `t` (inclusive). The critical-path priority of list
    /// scheduling. Returns `None` on a cycle.
    pub fn bottom_levels(&self) -> Option<Vec<f64>> {
        let order = self.topological_sort()?;
        let mut b = vec![0.0; self.len()];
        for &t in order.iter().rev() {
            let succ_max = self.succs[t.index()]
                .iter()
                .map(|&s| b[s.index()])
                .fold(0.0, f64::max);
            b[t.index()] = self.durations[t.index()] + succ_max;
        }
        Some(b)
    }

    /// Span (critical path length): the longest duration-weighted path.
    /// Returns `None` on a cycle.
    pub fn span(&self) -> Option<f64> {
        let b = self.bottom_levels()?;
        Some(b.into_iter().fold(0.0, f64::max))
    }

    /// Extract one critical path (task ids from a source to a sink).
    /// Returns `None` on a cycle or empty graph.
    pub fn critical_path(&self) -> Option<Vec<TaskId>> {
        if self.is_empty() {
            return None;
        }
        let b = self.bottom_levels()?;
        let mut cur = self
            .tasks()
            .max_by(|&x, &y| b[x.index()].partial_cmp(&b[y.index()]).expect("finite"))?;
        let mut path = vec![cur];
        loop {
            let next = self.succs[cur.index()]
                .iter()
                .copied()
                .max_by(|&x, &y| b[x.index()].partial_cmp(&b[y.index()]).expect("finite"));
            match next {
                Some(n) if !self.succs[cur.index()].is_empty() => {
                    path.push(n);
                    cur = n;
                }
                _ => break,
            }
        }
        Some(path)
    }

    /// Average parallelism: `work / span` (∞ convention avoided: returns
    /// `None` for cycles, 0 for empty graphs).
    pub fn average_parallelism(&self) -> Option<f64> {
        if self.is_empty() {
            return Some(0.0);
        }
        let span = self.span()?;
        if span == 0.0 {
            Some(self.len() as f64)
        } else {
            Some(self.work() / span)
        }
    }

    /// Parallelism profile: for each dependency depth level, the number of
    /// tasks at that level (how wide the DAG is, level by level).
    pub fn level_profile(&self) -> Option<Vec<usize>> {
        let order = self.topological_sort()?;
        let mut level = vec![0usize; self.len()];
        for &t in &order {
            let l = self.preds[t.index()]
                .iter()
                .map(|&p| level[p.index()] + 1)
                .max()
                .unwrap_or(0);
            level[t.index()] = l;
        }
        let max_level = level.iter().copied().max().unwrap_or(0);
        let mut profile = vec![0usize; max_level + 1];
        for &l in &level {
            profile[l] += 1;
        }
        Some(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: a → {b, c} → d.
    fn diamond() -> (TaskGraph, [TaskId; 4]) {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 2.0);
        let c = g.add_task("c", 3.0);
        let d = g.add_task("d", 1.0);
        g.add_dep(a, b);
        g.add_dep(a, c);
        g.add_dep(b, d);
        g.add_dep(c, d);
        (g, [a, b, c, d])
    }

    #[test]
    fn topological_sort_of_diamond() {
        let (g, [a, b, c, d]) = diamond();
        let order = g.topological_sort().expect("DAG");
        assert!(g.is_topological_order(&order));
        assert_eq!(order[0], a);
        assert_eq!(order[3], d);
        let _ = (b, c);
    }

    #[test]
    fn cycle_detected() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        g.add_dep(a, b);
        g.add_dep(b, a);
        assert!(g.topological_sort().is_none());
        assert!(!g.is_dag());
        assert!(g.span().is_none());
    }

    #[test]
    fn work_and_span() {
        let (g, _) = diamond();
        assert_eq!(g.work(), 7.0);
        // Critical path a → c → d = 1 + 3 + 1 = 5.
        assert_eq!(g.span(), Some(5.0));
        assert!((g.average_parallelism().unwrap() - 7.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn critical_path_is_the_heavy_route() {
        let (g, [a, _, c, d]) = diamond();
        let path = g.critical_path().expect("path");
        assert_eq!(path, vec![a, c, d]);
        let len: f64 = path.iter().map(|&t| g.duration(t)).sum();
        assert_eq!(len, g.span().unwrap());
    }

    #[test]
    fn bottom_levels_values() {
        let (g, [a, b, c, d]) = diamond();
        let bl = g.bottom_levels().unwrap();
        assert_eq!(bl[d.index()], 1.0);
        assert_eq!(bl[b.index()], 3.0);
        assert_eq!(bl[c.index()], 4.0);
        assert_eq!(bl[a.index()], 5.0);
    }

    #[test]
    fn level_profile_diamond() {
        let (g, _) = diamond();
        assert_eq!(g.level_profile().unwrap(), vec![1, 2, 1]);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0);
        let b = g.add_task("b", 1.0);
        g.add_dep(a, b);
        g.add_dep(a, b);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "self-dependency")]
    fn self_loop_panics() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0);
        g.add_dep(a, a);
    }

    #[test]
    fn independent_tasks_have_full_parallelism() {
        let mut g = TaskGraph::new();
        for i in 0..8 {
            g.add_task(format!("t{i}"), 2.0);
        }
        assert_eq!(g.span(), Some(2.0));
        assert_eq!(g.average_parallelism(), Some(8.0));
        assert_eq!(g.level_profile().unwrap(), vec![8]);
    }

    #[test]
    fn chain_has_no_parallelism() {
        let mut g = TaskGraph::new();
        let ids: Vec<TaskId> = (0..5).map(|i| g.add_task(format!("t{i}"), 1.0)).collect();
        for w in ids.windows(2) {
            g.add_dep(w[0], w[1]);
        }
        assert_eq!(g.span(), Some(5.0));
        assert_eq!(g.average_parallelism(), Some(1.0));
        assert_eq!(g.critical_path().unwrap(), ids);
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.work(), 0.0);
        assert_eq!(g.span(), Some(0.0));
        assert!(g.critical_path().is_none());
        assert_eq!(g.average_parallelism(), Some(0.0));
    }

    #[test]
    fn zero_duration_tasks() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 0.0);
        let b = g.add_task("b", 0.0);
        g.add_dep(a, b);
        assert_eq!(g.span(), Some(0.0));
        assert_eq!(g.average_parallelism(), Some(2.0));
    }
}
