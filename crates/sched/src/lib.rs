//! # anchors-sched
//!
//! The task-graph substrate recommended in §5.2 of the paper as PDC content
//! for Data Structures courses: directed acyclic task graphs with
//! topological sorting and critical-path analytics ([`graph`]), a
//! priority-queue-driven list-scheduling simulator ([`listsched`]), and
//! generators for classic parallel workload shapes ([`generate`]) —
//! fork-join, divide-and-conquer trees, and bottom-up dynamic-programming
//! wavefronts.

pub mod generate;
pub mod graph;
pub mod listsched;

pub use generate::{divide_and_conquer, dp_wavefront, fork_join, layered_dag, random_dag};
pub use graph::{TaskGraph, TaskId};
pub use listsched::{graham_bounds, list_schedule, Placement, Priority, Schedule};
