//! Heat-map renderers for the `W` and `H` matrices of Figures 2, 5, and 7.

use crate::color::{sequential, shade_char};
use crate::svg::SvgDoc;
use anchors_linalg::Matrix;

/// Options for heat-map rendering.
#[derive(Debug, Clone)]
pub struct HeatmapOptions {
    /// Row labels (left side); empty for none.
    pub row_labels: Vec<String>,
    /// Column labels (top); empty for none.
    pub col_labels: Vec<String>,
    /// Pixel size of one cell in SVG output.
    pub cell: f64,
    /// Normalize per column instead of globally (useful for `W`, where
    /// types have different scales).
    pub normalize_columns: bool,
    /// Title rendered above the map.
    pub title: String,
}

impl Default for HeatmapOptions {
    fn default() -> Self {
        HeatmapOptions {
            row_labels: vec![],
            col_labels: vec![],
            cell: 18.0,
            normalize_columns: false,
            title: String::new(),
        }
    }
}

fn normalized(m: &Matrix, per_column: bool) -> Matrix {
    if per_column {
        let mut out = m.clone();
        for j in 0..m.cols() {
            let col_max = (0..m.rows()).map(|i| m.get(i, j)).fold(0.0f64, f64::max);
            if col_max > 0.0 {
                for i in 0..m.rows() {
                    out.set(i, j, m.get(i, j) / col_max);
                }
            }
        }
        out
    } else {
        let max = m.max().max(0.0);
        if max > 0.0 {
            m.map(|v| v / max)
        } else {
            m.clone()
        }
    }
}

/// Render a matrix as a text heat map using unicode shade blocks. Rows are
/// labeled if labels are provided; intensities are normalized to the matrix
/// maximum (or per column).
pub fn text_heatmap(m: &Matrix, opts: &HeatmapOptions) -> String {
    let norm = normalized(m, opts.normalize_columns);
    let label_w = opts
        .row_labels
        .iter()
        .map(|l| l.chars().count())
        .max()
        .unwrap_or(0)
        .min(48);
    let mut out = String::new();
    if !opts.title.is_empty() {
        out.push_str(&opts.title);
        out.push('\n');
    }
    if !opts.col_labels.is_empty() {
        out.push_str(&" ".repeat(label_w + 1));
        for l in &opts.col_labels {
            let c = l.chars().next().unwrap_or(' ');
            out.push(c);
        }
        out.push('\n');
    }
    for i in 0..m.rows() {
        let label: String = opts
            .row_labels
            .get(i)
            .map(|l| l.chars().take(48).collect())
            .unwrap_or_default();
        out.push_str(&format!("{label:>label_w$} "));
        for j in 0..m.cols() {
            out.push(shade_char(norm.get(i, j)));
        }
        out.push('\n');
    }
    out
}

/// Render a matrix as an SVG heat map with labels and a sequential scale.
pub fn svg_heatmap(m: &Matrix, opts: &HeatmapOptions) -> String {
    let norm = normalized(m, opts.normalize_columns);
    let cell = opts.cell;
    let label_w = if opts.row_labels.is_empty() {
        8.0
    } else {
        260.0
    };
    let top = if opts.title.is_empty() { 8.0 } else { 28.0 }
        + if opts.col_labels.is_empty() {
            0.0
        } else {
            70.0
        };
    let width = label_w + m.cols() as f64 * cell + 16.0;
    let height = top + m.rows() as f64 * cell + 16.0;
    let mut doc = SvgDoc::new(width, height);
    if !opts.title.is_empty() {
        doc.text(8.0, 18.0, &opts.title, 14.0, "start");
    }
    for (j, l) in opts.col_labels.iter().enumerate() {
        // Column labels drawn horizontally, truncated.
        let x = label_w + j as f64 * cell + cell / 2.0;
        let short: String = l.chars().take(9).collect();
        doc.text(x, top - 6.0, &short, 9.0, "middle");
    }
    for i in 0..m.rows() {
        if let Some(l) = opts.row_labels.get(i) {
            let short: String = l.chars().take(40).collect();
            doc.text(
                label_w - 6.0,
                top + i as f64 * cell + cell * 0.7,
                &short,
                10.0,
                "end",
            );
        }
        for j in 0..m.cols() {
            doc.rect(
                label_w + j as f64 * cell,
                top + i as f64 * cell,
                cell,
                cell,
                &sequential(norm.get(i, j)),
                Some("#cccccc"),
            );
        }
    }
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![0.0, 0.5], vec![1.0, 0.25]])
    }

    #[test]
    fn text_heatmap_shape() {
        let opts = HeatmapOptions {
            row_labels: vec!["alpha".into(), "beta".into()],
            title: "T".into(),
            ..Default::default()
        };
        let s = text_heatmap(&sample(), &opts);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3, "title + 2 rows");
        assert!(lines[1].contains("alpha"));
        assert!(lines[2].contains('█'), "max cell is full shade");
        assert!(lines[1].starts_with(" alpha") || lines[1].contains("alpha "));
    }

    #[test]
    fn column_normalization_differs() {
        let m = Matrix::from_rows(&[vec![10.0, 1.0], vec![5.0, 0.5]]);
        let global = text_heatmap(&m, &HeatmapOptions::default());
        let percol = text_heatmap(
            &m,
            &HeatmapOptions {
                normalize_columns: true,
                ..Default::default()
            },
        );
        assert_ne!(global, percol);
        // Per-column: both columns have a full-shade max.
        let first_line = percol.lines().next().unwrap();
        assert_eq!(first_line.matches('█').count(), 2);
    }

    #[test]
    fn svg_heatmap_has_cells() {
        let opts = HeatmapOptions {
            row_labels: vec!["r1".into(), "r2".into()],
            col_labels: vec!["c1".into(), "c2".into()],
            title: "demo".into(),
            ..Default::default()
        };
        let svg = svg_heatmap(&sample(), &opts);
        // 4 data cells + background.
        assert_eq!(svg.matches("<rect").count(), 5);
        assert!(svg.contains("demo"));
        assert!(svg.contains("#ffffff"), "zero cell is white");
    }

    #[test]
    fn zero_matrix_renders_blank() {
        let m = Matrix::zeros(2, 3);
        let s = text_heatmap(&m, &HeatmapOptions::default());
        assert!(s.lines().all(|l| l.trim_end().chars().all(|c| c == ' ')));
    }
}
