//! Color scales for heat maps and divergent alignment views.

/// Clamp to `[0, 1]`.
fn unit(v: f64) -> f64 {
    if v.is_nan() {
        0.0
    } else {
        v.clamp(0.0, 1.0)
    }
}

fn hex(r: f64, g: f64, b: f64) -> String {
    format!(
        "#{:02x}{:02x}{:02x}",
        (unit(r) * 255.0).round() as u8,
        (unit(g) * 255.0).round() as u8,
        (unit(b) * 255.0).round() as u8
    )
}

/// Sequential white → dark blue scale (heat-map intensity), input `[0, 1]`.
pub fn sequential(v: f64) -> String {
    let v = unit(v);
    // Interpolate white (1,1,1) → dark blue (0.03, 0.19, 0.42).
    hex(
        1.0 - v * (1.0 - 0.03),
        1.0 - v * (1.0 - 0.19),
        1.0 - v * (1.0 - 0.42),
    )
}

/// Divergent blue ← white → red scale, input `[-1, +1]` (the paper's
/// alignment views use a divergent scale where mid-range means aligned).
pub fn divergent(v: f64) -> String {
    let v = if v.is_nan() { 0.0 } else { v.clamp(-1.0, 1.0) };
    if v < 0.0 {
        // toward blue
        let t = -v;
        hex(1.0 - t * (1.0 - 0.13), 1.0 - t * (1.0 - 0.40), 1.0)
    } else {
        // toward red
        let t = v;
        hex(1.0, 1.0 - t * (1.0 - 0.25), 1.0 - t * (1.0 - 0.18))
    }
}

/// Categorical palette (10 colors, colorblind-leaning).
pub fn categorical(i: usize) -> &'static str {
    const PALETTE: [&str; 10] = [
        "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
        "#9c755f", "#bab0ac",
    ];
    PALETTE[i % PALETTE.len()]
}

/// Unicode shade character for a `[0, 1]` intensity (text heat maps).
pub fn shade_char(v: f64) -> char {
    const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];
    let v = unit(v);
    let idx = (v * (SHADES.len() - 1) as f64).round() as usize;
    SHADES[idx.min(SHADES.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_endpoints() {
        assert_eq!(sequential(0.0), "#ffffff");
        assert_eq!(sequential(1.0), "#08306b");
        assert_eq!(sequential(-5.0), "#ffffff");
        assert_eq!(sequential(7.0), "#08306b");
    }

    #[test]
    fn divergent_center_is_white() {
        assert_eq!(divergent(0.0), "#ffffff");
        let lo = divergent(-1.0);
        let hi = divergent(1.0);
        assert_ne!(lo, hi);
        assert!(lo.ends_with("ff"), "negative pole is blue: {lo}");
        assert!(hi.starts_with("#ff"), "positive pole is red: {hi}");
    }

    #[test]
    fn nan_maps_to_neutral() {
        assert_eq!(sequential(f64::NAN), "#ffffff");
        assert_eq!(divergent(f64::NAN), "#ffffff");
    }

    #[test]
    fn shades_monotone() {
        assert_eq!(shade_char(0.0), ' ');
        assert_eq!(shade_char(1.0), '█');
        assert_eq!(shade_char(0.5), '▒');
    }

    #[test]
    fn categorical_cycles() {
        assert_eq!(categorical(0), categorical(10));
        assert_ne!(categorical(0), categorical(1));
    }
}
