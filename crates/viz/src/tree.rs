//! Indented text rendering of ontology subtrees (console-friendly
//! companion to the radial SVG views).

use anchors_curricula::{NodeId, Ontology};
use std::collections::BTreeSet;

/// Render the subtree induced by `nodes` (ancestor-closed, as produced by
//  an agreement tree) as an indented text tree. `annotate` may add a
/// per-node suffix such as a hit count.
pub fn text_tree(
    ontology: &Ontology,
    nodes: &[NodeId],
    annotate: impl Fn(NodeId) -> Option<String>,
) -> String {
    let set: BTreeSet<NodeId> = nodes.iter().copied().collect();
    let mut out = String::new();
    if set.is_empty() {
        return out;
    }
    // Depth-first from the root, only descending into included nodes.
    let mut stack: Vec<(NodeId, usize)> = vec![(ontology.root(), 0)];
    while let Some((id, depth)) = stack.pop() {
        if !set.contains(&id) {
            continue;
        }
        let node = ontology.node(id);
        let label: String = node.label.chars().take(64).collect();
        let suffix = annotate(id).map(|s| format!("  [{s}]")).unwrap_or_default();
        out.push_str(&"  ".repeat(depth));
        if depth == 0 {
            out.push_str(&format!("{label}{suffix}\n"));
        } else {
            out.push_str(&format!("{} {label}{suffix}\n", node.code));
        }
        for &c in node.children.iter().rev() {
            if set.contains(&c) {
                stack.push((c, depth + 1));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_curricula::cs2013;

    fn induced(codes: &[&str]) -> Vec<NodeId> {
        let g = cs2013();
        let mut set = BTreeSet::new();
        for c in codes {
            let id = g.by_code(c).unwrap();
            set.extend(g.path(id));
        }
        set.into_iter().collect()
    }

    #[test]
    fn renders_nested_structure() {
        let g = cs2013();
        let nodes = induced(&["SDF.FPC.t1", "SDF.FPC.t2", "AL.BA.t1"]);
        let txt = text_tree(g, &nodes, |_| None);
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), nodes.len());
        // Root first, then areas alphabetical by arena order (AL before SDF).
        assert!(lines[0].contains("ACM/IEEE CS2013"));
        let al_pos = lines.iter().position(|l| l.contains("AL ")).unwrap();
        let sdf_pos = lines.iter().position(|l| l.contains("SDF ")).unwrap();
        assert!(al_pos < sdf_pos);
        // Indentation grows with depth.
        assert!(lines[1].starts_with("  "));
        let leaf_line = lines.iter().find(|l| l.contains("SDF.FPC.t1")).unwrap();
        assert!(leaf_line.starts_with("      "), "{leaf_line:?}");
    }

    #[test]
    fn annotations_appear() {
        let g = cs2013();
        let fpc_t1 = g.by_code("SDF.FPC.t1").unwrap();
        let nodes = induced(&["SDF.FPC.t1"]);
        let txt = text_tree(g, &nodes, |n| {
            (n == fpc_t1).then(|| "4 courses".to_string())
        });
        assert!(txt.contains("[4 courses]"));
    }

    #[test]
    fn empty_input_renders_empty() {
        let g = cs2013();
        assert_eq!(text_tree(g, &[], |_| None), "");
    }
}
