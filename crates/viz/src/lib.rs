//! # anchors-viz
//!
//! Text and SVG renderers for the paper's visualizations:
//!
//! * [`heatmap`] — the `W`/`H` matrix heat maps of Figures 2, 5, 7;
//! * [`radial`] — radial hit-tree layout and rendering (Figures 4, 6, 8),
//!   implementing the reference-level layout of §3.1.1;
//! * [`plot`] — the tag-agreement distributions of Figure 3 and scatter
//!   plots for MDS embeddings;
//! * [`svg`], [`color`] — a minimal deterministic SVG builder and the
//!   sequential/divergent color scales.

pub mod color;
pub mod gantt;
pub mod heatmap;
pub mod plot;
pub mod radial;
pub mod svg;
pub mod tree;

pub use color::{categorical, divergent, sequential, shade_char};
pub use gantt::{svg_gantt, GanttBar};
pub use heatmap::{svg_heatmap, text_heatmap, HeatmapOptions};
pub use plot::{svg_agreement_plot, svg_scatter, text_agreement_plot, ScatterPoint};
pub use radial::{radial_layout, render_radial, NodeStyle, PolarPos, RadialLayout};
pub use svg::{escape, SvgDoc};
pub use tree::text_tree;
