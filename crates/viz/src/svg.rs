//! Minimal SVG document builder.
//!
//! The figure binaries write self-contained `.svg` files; this builder
//! covers the handful of primitives the renderers need, with correct XML
//! escaping and fixed-precision coordinates (so outputs are byte-stable
//! across runs).

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgDoc {
    width: f64,
    height: f64,
    body: String,
}

/// Escape a string for XML text/attribute context.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_coord(v: f64) -> String {
    format!("{v:.2}")
}

impl SvgDoc {
    /// Start a document of the given pixel size.
    pub fn new(width: f64, height: f64) -> Self {
        SvgDoc {
            width,
            height,
            body: String::new(),
        }
    }

    /// Add a filled rectangle (optionally stroked).
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, stroke: Option<&str>) {
        let stroke_attr = stroke
            .map(|s| format!(r#" stroke="{}" stroke-width="0.5""#, escape(s)))
            .unwrap_or_default();
        let _ = write!(
            self.body,
            r#"<rect x="{}" y="{}" width="{}" height="{}" fill="{}"{}/>"#,
            fmt_coord(x),
            fmt_coord(y),
            fmt_coord(w),
            fmt_coord(h),
            escape(fill),
            stroke_attr
        );
        self.body.push('\n');
    }

    /// Add a circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str, stroke: Option<&str>) {
        let stroke_attr = stroke
            .map(|s| format!(r#" stroke="{}" stroke-width="0.75""#, escape(s)))
            .unwrap_or_default();
        let _ = write!(
            self.body,
            r#"<circle cx="{}" cy="{}" r="{}" fill="{}"{}/>"#,
            fmt_coord(cx),
            fmt_coord(cy),
            fmt_coord(r),
            escape(fill),
            stroke_attr
        );
        self.body.push('\n');
    }

    /// Add a line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = write!(
            self.body,
            r#"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="{}" stroke-width="{}"/>"#,
            fmt_coord(x1),
            fmt_coord(y1),
            fmt_coord(x2),
            fmt_coord(y2),
            escape(stroke),
            fmt_coord(width)
        );
        self.body.push('\n');
    }

    /// Add a text label. `anchor` is one of `start`, `middle`, `end`.
    pub fn text(&mut self, x: f64, y: f64, content: &str, size: f64, anchor: &str) {
        let _ = write!(
            self.body,
            r#"<text x="{}" y="{}" font-size="{}" font-family="sans-serif" text-anchor="{}">{}</text>"#,
            fmt_coord(x),
            fmt_coord(y),
            fmt_coord(size),
            escape(anchor),
            escape(content)
        );
        self.body.push('\n');
    }

    /// Add a polyline through the given points.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        let pts: Vec<String> = points
            .iter()
            .map(|&(x, y)| format!("{},{}", fmt_coord(x), fmt_coord(y)))
            .collect();
        let _ = write!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="{}"/>"#,
            pts.join(" "),
            escape(stroke),
            fmt_coord(width)
        );
        self.body.push('\n');
    }

    /// Finish the document.
    pub fn finish(self) -> String {
        format!(
            concat!(
                r#"<?xml version="1.0" encoding="UTF-8"?>"#,
                "\n",
                r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#,
                "\n",
                r#"<rect x="0" y="0" width="{w}" height="{h}" fill="white"/>"#,
                "\n{body}</svg>\n"
            ),
            w = fmt_coord(self.width),
            h = fmt_coord(self.height),
            body = self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn document_structure() {
        let mut d = SvgDoc::new(100.0, 50.0);
        d.rect(0.0, 0.0, 10.0, 10.0, "#ff0000", None);
        d.circle(5.0, 5.0, 2.0, "blue", Some("black"));
        d.line(0.0, 0.0, 100.0, 50.0, "#000", 1.0);
        d.text(10.0, 10.0, "hello <world>", 12.0, "middle");
        d.polyline(&[(0.0, 0.0), (1.0, 2.0)], "green", 0.5);
        let svg = d.finish();
        assert!(svg.starts_with("<?xml"));
        assert!(svg.contains("<svg xmlns"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("hello &lt;world&gt;"));
        assert!(svg.contains(r#"width="100.00""#));
        assert_eq!(svg.matches("<rect").count(), 2, "background + one rect");
    }

    #[test]
    fn deterministic_output() {
        let build = || {
            let mut d = SvgDoc::new(10.0, 10.0);
            d.circle(1.0 / 3.0, 2.0 / 3.0, 0.1234567, "red", None);
            d.finish()
        };
        assert_eq!(build(), build());
    }
}
