//! Simple plots: the tag-agreement distributions of Figure 3 and scatter
//! plots for MDS embeddings.

use crate::color::categorical;
use crate::svg::SvgDoc;

/// Render Figure 3's scatter-style distribution as text: x = tag index
/// (sorted by count, descending), y = number of courses the tag appears in.
pub fn text_agreement_plot(counts: &[usize], title: &str) -> String {
    let mut sorted = counts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let ymax = sorted.first().copied().unwrap_or(0);
    let mut out = format!("{title}\n");
    for y in (1..=ymax).rev() {
        let mut line = format!("{y:>3} |");
        // Bucket tags into 60 columns.
        let buckets = 60usize;
        for b in 0..buckets {
            let lo = b * sorted.len() / buckets;
            let hi = ((b + 1) * sorted.len() / buckets)
                .max(lo + 1)
                .min(sorted.len());
            let any = sorted
                .get(lo..hi)
                .is_some_and(|s| s.iter().any(|&v| v >= y));
            line.push(if any { '*' } else { ' ' });
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out.push_str(&format!("    +{}\n", "-".repeat(60)));
    out.push_str(&format!(
        "     tags (n={}), sorted by how many courses each appears in\n",
        sorted.len()
    ));
    out
}

/// Render Figure 3 as an SVG scatter: x = tag index, y = course count.
pub fn svg_agreement_plot(counts: &[usize], title: &str) -> String {
    let w = 560.0;
    let h = 360.0;
    let margin = 50.0;
    let mut sorted = counts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let ymax = sorted.first().copied().unwrap_or(1).max(1) as f64;
    let n = sorted.len().max(1) as f64;
    let mut doc = SvgDoc::new(w, h);
    doc.text(margin, 22.0, title, 14.0, "start");
    // Axes.
    doc.line(margin, h - margin, w - 10.0, h - margin, "#000000", 1.0);
    doc.line(margin, h - margin, margin, 30.0, "#000000", 1.0);
    doc.text(w / 2.0, h - 12.0, "Tags", 11.0, "middle");
    doc.text(14.0, h / 2.0, "courses", 11.0, "middle");
    for y in 0..=(ymax as usize) {
        let py = h - margin - (y as f64 / ymax) * (h - margin - 40.0);
        doc.text(margin - 8.0, py + 3.0, &y.to_string(), 9.0, "end");
        doc.line(margin - 3.0, py, margin, py, "#000000", 1.0);
    }
    for (i, &c) in sorted.iter().enumerate() {
        let px = margin + (i as f64 / n) * (w - margin - 20.0);
        let py = h - margin - (c as f64 / ymax) * (h - margin - 40.0);
        doc.circle(px, py, 2.0, categorical(0), None);
    }
    doc.finish()
}

/// A labeled 2-D point for scatter plots.
#[derive(Debug, Clone)]
pub struct ScatterPoint {
    /// X coordinate (data space).
    pub x: f64,
    /// Y coordinate (data space).
    pub y: f64,
    /// Label drawn next to the marker.
    pub label: String,
    /// Color group index.
    pub group: usize,
}

/// Render a labeled scatter plot (used for MDS embeddings of search
/// results and courses).
pub fn svg_scatter(points: &[ScatterPoint], title: &str) -> String {
    let w = 640.0;
    let h = 480.0;
    let margin = 40.0;
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in points {
        xmin = xmin.min(p.x);
        xmax = xmax.max(p.x);
        ymin = ymin.min(p.y);
        ymax = ymax.max(p.y);
    }
    if points.is_empty() || !xmin.is_finite() {
        xmin = 0.0;
        xmax = 1.0;
        ymin = 0.0;
        ymax = 1.0;
    }
    let xr = (xmax - xmin).max(1e-9);
    let yr = (ymax - ymin).max(1e-9);
    let mut doc = SvgDoc::new(w, h);
    doc.text(margin, 22.0, title, 14.0, "start");
    for p in points {
        let px = margin + (p.x - xmin) / xr * (w - 2.0 * margin);
        let py = h - margin - (p.y - ymin) / yr * (h - 2.0 * margin - 20.0);
        doc.circle(px, py, 5.0, categorical(p.group), Some("#333333"));
        let short: String = p.label.chars().take(28).collect();
        doc.text(px + 7.0, py + 3.0, &short, 9.0, "start");
    }
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_plot_has_ymax_rows() {
        let counts = vec![1, 1, 2, 5, 3];
        let s = text_agreement_plot(&counts, "demo");
        let lines: Vec<&str> = s.lines().collect();
        // title + 5 y-rows + axis + caption
        assert_eq!(lines.len(), 1 + 5 + 2);
        assert!(lines[1].starts_with("  5 |"));
        assert!(s.contains("n=5"));
    }

    #[test]
    fn text_plot_empty() {
        let s = text_agreement_plot(&[], "empty");
        assert!(s.contains("n=0"));
    }

    #[test]
    fn svg_plot_point_count() {
        let counts = vec![3, 1, 2];
        let svg = svg_agreement_plot(&counts, "fig");
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains("fig"));
        assert!(svg.contains("Tags"));
    }

    #[test]
    fn scatter_renders_labels_and_groups() {
        let pts = vec![
            ScatterPoint {
                x: 0.0,
                y: 0.0,
                label: "query".into(),
                group: 0,
            },
            ScatterPoint {
                x: 1.0,
                y: 2.0,
                label: "material".into(),
                group: 1,
            },
        ];
        let svg = svg_scatter(&pts, "mds");
        assert_eq!(svg.matches("<circle").count(), 2);
        assert!(svg.contains("query"));
        assert!(svg.contains("material"));
    }

    #[test]
    fn scatter_handles_degenerate_input() {
        let svg = svg_scatter(&[], "none");
        assert!(svg.contains("none"));
        let one = vec![ScatterPoint {
            x: 5.0,
            y: 5.0,
            label: "p".into(),
            group: 0,
        }];
        let svg = svg_scatter(&one, "one");
        assert_eq!(svg.matches("<circle").count(), 1);
    }
}
