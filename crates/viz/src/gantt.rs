//! Gantt charts for schedules (the §5.2 list-scheduling assignment's
//! natural visualization).

use crate::color::categorical;
use crate::svg::SvgDoc;

/// One bar of a Gantt chart.
#[derive(Debug, Clone)]
pub struct GanttBar {
    /// Label drawn inside/beside the bar (truncated).
    pub label: String,
    /// Lane (e.g. processor index).
    pub lane: usize,
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
    /// Color group (e.g. task family).
    pub group: usize,
}

/// Render a Gantt chart to SVG. Lanes are stacked top to bottom; the time
/// axis is scaled to the data.
pub fn svg_gantt(bars: &[GanttBar], title: &str) -> String {
    let lanes = bars
        .iter()
        .map(|b| b.lane)
        .max()
        .map(|m| m + 1)
        .unwrap_or(1);
    let t_end = bars.iter().map(|b| b.end).fold(0.0f64, f64::max).max(1e-9);
    let lane_h = 26.0;
    let left = 70.0;
    let top = 40.0;
    let width = 760.0;
    let height = top + lanes as f64 * lane_h + 40.0;
    let scale = (width - left - 20.0) / t_end;

    let mut doc = SvgDoc::new(width, height);
    doc.text(12.0, 22.0, title, 14.0, "start");
    // Lane guides + labels.
    for lane in 0..lanes {
        let y = top + lane as f64 * lane_h;
        doc.line(left, y + lane_h, width - 10.0, y + lane_h, "#dddddd", 0.5);
        doc.text(
            left - 8.0,
            y + lane_h * 0.65,
            &format!("P{lane}"),
            10.0,
            "end",
        );
    }
    // Time axis ticks (5 ticks).
    for k in 0..=5 {
        let t = t_end * k as f64 / 5.0;
        let x = left + t * scale;
        doc.line(x, top, x, top + lanes as f64 * lane_h, "#eeeeee", 0.5);
        doc.text(
            x,
            top + lanes as f64 * lane_h + 14.0,
            &format!("{t:.1}"),
            9.0,
            "middle",
        );
    }
    // Bars.
    for b in bars {
        let x = left + b.start * scale;
        let w = ((b.end - b.start) * scale).max(0.5);
        let y = top + b.lane as f64 * lane_h + 3.0;
        doc.rect(x, y, w, lane_h - 6.0, categorical(b.group), Some("#333333"));
        if w > 28.0 {
            let short: String = b.label.chars().take((w / 6.0) as usize).collect();
            doc.text(x + 3.0, y + lane_h * 0.55, &short, 8.0, "start");
        }
    }
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bars() -> Vec<GanttBar> {
        vec![
            GanttBar {
                label: "a".into(),
                lane: 0,
                start: 0.0,
                end: 2.0,
                group: 0,
            },
            GanttBar {
                label: "b".into(),
                lane: 1,
                start: 0.0,
                end: 3.0,
                group: 1,
            },
            GanttBar {
                label: "c".into(),
                lane: 0,
                start: 2.0,
                end: 5.0,
                group: 2,
            },
        ]
    }

    #[test]
    fn renders_all_bars() {
        let svg = svg_gantt(&bars(), "schedule");
        // Background + 3 bars.
        assert_eq!(svg.matches("<rect").count(), 4);
        assert!(svg.contains("schedule"));
        assert!(svg.contains("P0"));
        assert!(svg.contains("P1"));
    }

    #[test]
    fn empty_input_is_fine() {
        let svg = svg_gantt(&[], "empty");
        assert!(svg.contains("empty"));
        assert_eq!(svg.matches("<rect").count(), 1, "background only");
    }

    #[test]
    fn deterministic() {
        assert_eq!(svg_gantt(&bars(), "t"), svg_gantt(&bars(), "t"));
    }
}
