//! Radial tree layout and rendering (the hit-tree views of Figures 4, 6, 8).
//!
//! Section 3.1.1: "The tree is arranged radially by identifying the level
//! with the most nodes, known as the reference level, and uniformly spacing
//! all nodes at that level." Nodes above the reference level sit at the
//! angular centroid of their children; nodes below inherit their parent's
//! angle. Node size encodes hit count; node color is free (plain coverage
//! or a divergent alignment scale).

use crate::svg::SvgDoc;
use anchors_curricula::{NodeId, Ontology};
use std::collections::{BTreeMap, BTreeSet};

/// Computed polar position of one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolarPos {
    /// Angle in radians.
    pub angle: f64,
    /// Depth in the displayed subtree (root = 0).
    pub depth: usize,
}

/// A radial layout over a subset of an ontology.
#[derive(Debug, Clone)]
pub struct RadialLayout {
    /// Positions keyed by node.
    pub positions: BTreeMap<NodeId, PolarPos>,
    /// The reference depth (widest level).
    pub reference_level: usize,
    /// Maximum depth present.
    pub max_depth: usize,
}

/// Compute the radial layout of the subtree induced by `nodes` (which must
/// be closed under ancestors — as produced by
/// `anchors_materials::AgreementTree`). The ontology root anchors the
/// layout even if absent from `nodes`.
#[allow(clippy::needless_range_loop)] // depth sweep over by_depth levels
pub fn radial_layout(ontology: &Ontology, nodes: &[NodeId]) -> RadialLayout {
    let set: BTreeSet<NodeId> = nodes.iter().copied().collect();
    let mut depth_of: BTreeMap<NodeId, usize> = BTreeMap::new();
    let mut max_depth = 0;
    for &n in &set {
        let d = ontology.path(n).len() - 1;
        depth_of.insert(n, d);
        max_depth = max_depth.max(d);
    }
    // Reference level: the depth with the most nodes.
    let mut widths: Vec<usize> = vec![0; max_depth + 1];
    for &d in depth_of.values() {
        widths[d] += 1;
    }
    let reference_level = widths
        .iter()
        .enumerate()
        .max_by_key(|&(_, w)| *w)
        .map(|(d, _)| d)
        .unwrap_or(0);

    // Order reference-level nodes by preorder so siblings stay adjacent.
    let order = ontology.preorder(ontology.root());
    let ref_nodes: Vec<NodeId> = order
        .iter()
        .copied()
        .filter(|n| set.contains(n) && depth_of[n] == reference_level)
        .collect();
    let mut positions: BTreeMap<NodeId, PolarPos> = BTreeMap::new();
    let n_ref = ref_nodes.len().max(1);
    for (i, &n) in ref_nodes.iter().enumerate() {
        let angle = std::f64::consts::TAU * i as f64 / n_ref as f64;
        positions.insert(
            n,
            PolarPos {
                angle,
                depth: reference_level,
            },
        );
    }

    // Above the reference level (shallower): centroid of children, computed
    // bottom-up (children first = deeper first).
    let mut by_depth: Vec<Vec<NodeId>> = vec![Vec::new(); max_depth + 1];
    for (&n, &d) in &depth_of {
        by_depth[d].push(n);
    }
    for d in (0..reference_level).rev() {
        for &n in &by_depth[d] {
            if positions.contains_key(&n) {
                continue;
            }
            let child_angles: Vec<f64> = ontology
                .node(n)
                .children
                .iter()
                .filter_map(|c| positions.get(c))
                .map(|p| p.angle)
                .collect();
            let angle = if child_angles.is_empty() {
                0.0
            } else {
                // Circular mean to handle the wrap-around.
                let (s, c) = child_angles
                    .iter()
                    .fold((0.0, 0.0), |(s, c), &a| (s + a.sin(), c + a.cos()));
                s.atan2(c).rem_euclid(std::f64::consts::TAU)
            };
            positions.insert(n, PolarPos { angle, depth: d });
        }
    }
    // Below the reference level: inherit the parent's angle, with a small
    // deterministic spread among siblings.
    for d in (reference_level + 1)..=max_depth {
        for &n in &by_depth[d] {
            if positions.contains_key(&n) {
                continue;
            }
            let parent = ontology.node(n).parent;
            let base = parent
                .and_then(|p| positions.get(&p))
                .map(|p| p.angle)
                .unwrap_or(0.0);
            // Spread siblings ±0.03 rad around the parent angle.
            let siblings: Vec<NodeId> = parent
                .map(|p| {
                    ontology
                        .node(p)
                        .children
                        .iter()
                        .copied()
                        .filter(|c| set.contains(c))
                        .collect()
                })
                .unwrap_or_default();
            let idx = siblings.iter().position(|&s| s == n).unwrap_or(0);
            let k = siblings.len().max(1);
            let offset = if k == 1 {
                0.0
            } else {
                (idx as f64 / (k - 1) as f64 - 0.5) * 0.06 * k as f64
            };
            positions.insert(
                n,
                PolarPos {
                    angle: (base + offset).rem_euclid(std::f64::consts::TAU),
                    depth: d,
                },
            );
        }
    }

    RadialLayout {
        positions,
        reference_level,
        max_depth,
    }
}

/// Visual attributes of a node in a radial rendering.
#[derive(Debug, Clone)]
pub struct NodeStyle {
    /// Circle radius in px.
    pub radius: f64,
    /// Fill color.
    pub fill: String,
    /// Optional label.
    pub label: Option<String>,
}

/// Render a radial layout to SVG. `style` is consulted per node; edges are
/// drawn from each node to its parent (when the parent is in the layout).
pub fn render_radial(
    ontology: &Ontology,
    layout: &RadialLayout,
    style: impl Fn(NodeId) -> NodeStyle,
    title: &str,
) -> String {
    let size = 640.0;
    let center = size / 2.0;
    let ring = (size / 2.0 - 60.0) / layout.max_depth.max(1) as f64;
    let pos_xy = |p: &PolarPos| {
        let r = ring * p.depth as f64;
        (center + r * p.angle.cos(), center + r * p.angle.sin())
    };
    let mut doc = SvgDoc::new(size, size + 30.0);
    if !title.is_empty() {
        doc.text(12.0, 20.0, title, 14.0, "start");
    }
    // Edges first.
    for (&n, p) in &layout.positions {
        if let Some(parent) = ontology.node(n).parent {
            if let Some(pp) = layout.positions.get(&parent) {
                let (x1, y1) = pos_xy(p);
                let (x2, y2) = pos_xy(pp);
                doc.line(x1, y1 + 30.0, x2, y2 + 30.0, "#999999", 0.8);
            }
        }
    }
    // Nodes on top.
    for (&n, p) in &layout.positions {
        let s = style(n);
        let (x, y) = pos_xy(p);
        doc.circle(x, y + 30.0, s.radius, &s.fill, Some("#555555"));
        if let Some(label) = s.label {
            doc.text(x, y + 30.0 - s.radius - 3.0, &label, 9.0, "middle");
        }
    }
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_curricula::cs2013;

    fn induced(tags: &[&str]) -> (Vec<NodeId>, Vec<NodeId>) {
        let g = cs2013();
        let leaves: Vec<NodeId> = tags.iter().map(|c| g.by_code(c).unwrap()).collect();
        let mut set = BTreeSet::new();
        for &l in &leaves {
            set.extend(g.path(l));
        }
        (leaves, set.into_iter().collect())
    }

    #[test]
    fn layout_covers_all_nodes() {
        let g = cs2013();
        let (_, nodes) = induced(&["SDF.FPC.t1", "SDF.FPC.t2", "AL.BA.t1"]);
        let layout = radial_layout(g, &nodes);
        assert_eq!(layout.positions.len(), nodes.len());
        for p in layout.positions.values() {
            assert!((0.0..std::f64::consts::TAU + 1e-9).contains(&p.angle));
        }
    }

    #[test]
    fn reference_level_is_widest() {
        let g = cs2013();
        // Three leaves, two KUs, two KAs + root: widest level is leaves (3).
        let (_, nodes) = induced(&["SDF.FPC.t1", "SDF.FPC.t2", "AL.BA.t1"]);
        let layout = radial_layout(g, &nodes);
        assert_eq!(layout.reference_level, 3);
        assert_eq!(layout.max_depth, 3);
    }

    #[test]
    fn reference_nodes_uniformly_spaced() {
        let g = cs2013();
        let (leaves, nodes) = induced(&["SDF.FPC.t1", "SDF.FPC.t2", "AL.BA.t1", "DS.GT.t1"]);
        let layout = radial_layout(g, &nodes);
        let mut angles: Vec<f64> = leaves.iter().map(|l| layout.positions[l].angle).collect();
        angles.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let gaps: Vec<f64> = angles.windows(2).map(|w| w[1] - w[0]).collect();
        for g in &gaps {
            assert!(
                (g - std::f64::consts::TAU / 4.0).abs() < 1e-9,
                "uniform spacing, got gap {g}"
            );
        }
    }

    #[test]
    fn parent_sits_at_child_centroid() {
        let g = cs2013();
        let (leaves, nodes) = induced(&["SDF.FPC.t1", "SDF.FPC.t2"]);
        let layout = radial_layout(g, &nodes);
        let ku = g.knowledge_unit_of(leaves[0]).unwrap();
        let a0 = layout.positions[&leaves[0]].angle;
        let a1 = layout.positions[&leaves[1]].angle;
        let pk = layout.positions[&ku].angle;
        // Circular mean of two angles.
        let expect = ((a0.sin() + a1.sin()) / 2.0)
            .atan2((a0.cos() + a1.cos()) / 2.0)
            .rem_euclid(std::f64::consts::TAU);
        assert!((pk - expect).abs() < 1e-9);
    }

    #[test]
    fn renders_svg_with_nodes_and_edges() {
        let g = cs2013();
        let (_, nodes) = induced(&["SDF.FPC.t1", "AL.BA.t1"]);
        let layout = radial_layout(g, &nodes);
        let svg = render_radial(
            g,
            &layout,
            |n| NodeStyle {
                radius: 4.0,
                fill: if g.node(n).level == anchors_curricula::Level::Root {
                    "red".into()
                } else {
                    "#4e79a7".into()
                },
                label: None,
            },
            "test",
        );
        assert_eq!(svg.matches("<circle").count(), nodes.len());
        // Every non-root node has an edge to its parent.
        assert_eq!(svg.matches("<line").count(), nodes.len() - 1);
        assert!(svg.contains("red"), "root drawn in red per the paper");
    }
}
