//! One-vs-rest averaged-SGD logistic regression with per-tag
//! threshold calibration.
//!
//! The trainer is deliberately boring: `n_tags` independent binary
//! logistic regressions over the shared hashed TF-IDF vectors, each run
//! with plain SGD under a `1/(1 + t/n)` step decay and a deterministic
//! Fisher–Yates shuffle per epoch (seeded per `(tag, epoch)`, so results
//! are bitwise reproducible and tags are trainable in parallel). The
//! weights served are the *tail average* over the final epoch's steps —
//! cheap insurance against the last minibatch's noise.
//!
//! Per-tag base rates in a guideline corpus differ wildly (a popular
//! topic appears in half the documents, a niche one in 2%), so a global
//! 0.5 cutoff over-predicts common tags and never predicts rare ones.
//! Calibration fixes the cutoff per tag: the threshold is the midpoint
//! between the mean positive-example score and the mean
//! negative-example score, clamped to `[0.05, 0.95]`.

use crate::error::TextError;
use crate::featurize::{document_frequencies, idf_from_df, mix64, tf_idf_vector, FeaturizerConfig};
use crate::model::TextModel;
use anchors_curricula::Ontology;
use anchors_linalg::{parallel, Matrix};

/// One training document: raw text plus its true tag codes.
#[derive(Debug, Clone, PartialEq)]
pub struct TextExample {
    /// Raw document text.
    pub text: String,
    /// True dotted tag codes (a subset of the declared tag space).
    pub tag_codes: Vec<String>,
}

/// Trainer hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Passes over the corpus.
    pub epochs: usize,
    /// Base learning rate.
    pub lr: f64,
    /// L2 regularization strength (applied to touched coordinates).
    pub l2: f64,
    /// Shuffle seed.
    pub seed: u64,
    /// Feature-space geometry.
    pub featurizer: FeaturizerConfig,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            lr: 0.5,
            l2: 1e-5,
            seed: 7,
            featurizer: FeaturizerConfig::default(),
        }
    }
}

impl TrainConfig {
    fn validate(&self) -> Result<(), TextError> {
        self.featurizer.validate()?;
        let fail = |detail: String| Err(TextError::Config { detail });
        if self.epochs == 0 {
            return fail("epochs must be ≥ 1".into());
        }
        if !(self.lr.is_finite() && self.lr > 0.0) {
            return fail(format!("learning rate {} must be positive", self.lr));
        }
        if !(self.l2.is_finite() && self.l2 >= 0.0) {
            return fail(format!("l2 {} must be non-negative", self.l2));
        }
        Ok(())
    }
}

/// In-place Fisher–Yates driven by a splitmix64 counter stream.
fn shuffle(order: &mut [usize], seed: u64) {
    for i in (1..order.len()).rev() {
        let j = (mix64(seed ^ (i as u64)) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

struct TagFit {
    weights: Vec<f64>,
    bias: f64,
    threshold: f64,
}

/// Fit one binary classifier (tag `tag`) over the shared vectors.
fn fit_tag(
    tag: usize,
    vectors: &[Vec<(usize, f64)>],
    positive: &[bool],
    cfg: &TrainConfig,
) -> TagFit {
    let n = vectors.len();
    let n_buckets = cfg.featurizer.n_buckets;
    let mut w = vec![0.0f64; n_buckets];
    let mut b = 0.0f64;
    let mut w_avg = vec![0.0f64; n_buckets];
    let mut b_avg = 0.0f64;
    let mut avg_steps = 0usize;
    let mut order: Vec<usize> = (0..n).collect();
    let mut t = 0usize;
    for epoch in 0..cfg.epochs {
        shuffle(
            &mut order,
            mix64(cfg.seed ^ (tag as u64).wrapping_mul(0x9E37_79B9) ^ (epoch as u64) << 32),
        );
        let last_epoch = epoch + 1 == cfg.epochs;
        for &i in &order {
            t += 1;
            let lr_t = cfg.lr / (1.0 + t as f64 / n as f64);
            let x = &vectors[i];
            let margin: f64 = b + x.iter().map(|&(bk, v)| w[bk] * v).sum::<f64>();
            let y = if positive[i] { 1.0 } else { 0.0 };
            let g = sigmoid(margin) - y;
            for &(bk, v) in x {
                w[bk] -= lr_t * (g * v + cfg.l2 * w[bk]);
            }
            b -= lr_t * g;
            if last_epoch {
                for (acc, &wi) in w_avg.iter_mut().zip(&w) {
                    *acc += wi;
                }
                b_avg += b;
                avg_steps += 1;
            }
        }
    }
    let scale = 1.0 / avg_steps.max(1) as f64;
    for acc in &mut w_avg {
        *acc *= scale;
    }
    b_avg *= scale;

    // Calibrate: midpoint between the mean positive and negative scores.
    let (mut pos_sum, mut pos_n, mut neg_sum, mut neg_n) = (0.0, 0usize, 0.0, 0usize);
    for (x, &is_pos) in vectors.iter().zip(positive) {
        let margin: f64 = b_avg + x.iter().map(|&(bk, v)| w_avg[bk] * v).sum::<f64>();
        let p = sigmoid(margin);
        if is_pos {
            pos_sum += p;
            pos_n += 1;
        } else {
            neg_sum += p;
            neg_n += 1;
        }
    }
    let threshold = if pos_n == 0 || neg_n == 0 {
        0.5
    } else {
        (0.5 * (pos_sum / pos_n as f64 + neg_sum / neg_n as f64)).clamp(0.05, 0.95)
    };
    TagFit {
        weights: w_avg,
        bias: b_avg,
        threshold,
    }
}

/// Train a [`TextModel`] over `tag_codes` from labeled examples.
///
/// `ontology` pins the guideline revision: every declared tag code must
/// resolve in it, and its fingerprint is baked into the model so serving
/// against a drifted revision is a typed refusal. Examples must label
/// only declared codes; documents that tokenize to nothing are rejected
/// up front (a silent skip would shift every index-based diagnostic).
/// Training is deterministic for a fixed config and bitwise identical
/// at any thread count (tags fan out through
/// [`anchors_linalg::parallel::outer_map`]).
pub fn train(
    name: &str,
    ontology: &Ontology,
    tag_codes: &[String],
    examples: &[TextExample],
    cfg: &TrainConfig,
) -> Result<TextModel, TextError> {
    cfg.validate()?;
    if examples.is_empty() {
        return Err(TextError::EmptyCorpus);
    }
    if tag_codes.is_empty() {
        return Err(TextError::Config {
            detail: "empty tag space".into(),
        });
    }
    let mut seen = std::collections::BTreeSet::new();
    for code in tag_codes {
        if ontology.by_code(code).is_none() {
            return Err(TextError::UnknownTag { code: code.clone() });
        }
        if !seen.insert(code.as_str()) {
            return Err(TextError::Config {
                detail: format!("duplicate tag code {code:?}"),
            });
        }
    }
    let index_of: std::collections::BTreeMap<&str, usize> = tag_codes
        .iter()
        .enumerate()
        .map(|(i, c)| (c.as_str(), i))
        .collect();

    // Featurize once; every tag shares the vectors.
    let counts: Vec<_> = examples
        .iter()
        .map(|ex| cfg.featurizer.raw_counts(&ex.text))
        .collect();
    if counts.iter().any(|c| c.is_empty()) {
        return Err(TextError::EmptyText);
    }
    let df = document_frequencies(cfg.featurizer.n_buckets, &counts);
    let idf = idf_from_df(&df, counts.len());
    let vectors = counts
        .iter()
        .map(|c| tf_idf_vector(c, &idf))
        .collect::<Result<Vec<_>, _>>()?;

    let n_tags = tag_codes.len();
    let mut labels = vec![vec![false; examples.len()]; n_tags];
    for (i, ex) in examples.iter().enumerate() {
        for code in &ex.tag_codes {
            let &tag = index_of
                .get(code.as_str())
                .ok_or_else(|| TextError::UnknownTag { code: code.clone() })?;
            labels[tag][i] = true;
        }
    }

    let fits = parallel::outer_map(n_tags, |tag| fit_tag(tag, &vectors, &labels[tag], cfg));

    let mut weights = Vec::with_capacity(n_tags * cfg.featurizer.n_buckets);
    let mut bias = Vec::with_capacity(n_tags);
    let mut thresholds = Vec::with_capacity(n_tags);
    for fit in &fits {
        weights.extend_from_slice(&fit.weights);
        bias.push(fit.bias);
        thresholds.push(fit.threshold);
    }
    let mut model = TextModel {
        name: name.to_string(),
        guideline: ontology.name.clone(),
        fingerprint: ontology.fingerprint(),
        tag_codes: tag_codes.to_vec(),
        config: cfg.featurizer,
        idf,
        weights: Matrix::from_vec(n_tags, cfg.featurizer.n_buckets, weights),
        bias,
        thresholds,
        train_docs: examples.len(),
        train_seed: cfg.seed,
        train_f1: 0.0,
    };
    model.train_f1 = micro_f1(&model, examples)?;
    model.check_shapes()?;
    Ok(model)
}

/// Micro-averaged F1 of `model` over labeled examples — the quality
/// number the bench gate and the training diagnostic both use.
pub fn micro_f1(model: &TextModel, examples: &[TextExample]) -> Result<f64, TextError> {
    if examples.is_empty() {
        return Err(TextError::EmptyCorpus);
    }
    let (mut tp, mut fp, mut fne) = (0usize, 0usize, 0usize);
    for ex in examples {
        let got = model.classify(&ex.text)?;
        let truth: std::collections::BTreeSet<&str> =
            ex.tag_codes.iter().map(String::as_str).collect();
        let predicted: std::collections::BTreeSet<&str> =
            got.predicted.iter().map(String::as_str).collect();
        tp += truth.intersection(&predicted).count();
        fp += predicted.difference(&truth).count();
        fne += truth.difference(&predicted).count();
    }
    let denom = 2 * tp + fp + fne;
    Ok(if denom == 0 {
        1.0
    } else {
        2.0 * tp as f64 / denom as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_curricula::cs2013;

    fn codes(n: usize) -> Vec<String> {
        let cs = cs2013();
        cs.leaf_items()
            .into_iter()
            .take(n)
            .map(|id| cs.node(id).code.clone())
            .collect()
    }

    /// A tiny hand-rolled corpus with one unmistakable word per tag.
    fn corpus(codes: &[String], docs_per_tag: usize) -> Vec<TextExample> {
        let mut out = Vec::new();
        for (t, code) in codes.iter().enumerate() {
            for d in 0..docs_per_tag {
                out.push(TextExample {
                    text: format!(
                        "lecture {d} covers signalword{t} and signalword{t} again \
                         plus general course admin"
                    ),
                    tag_codes: vec![code.clone()],
                });
            }
        }
        out
    }

    #[test]
    fn separable_corpus_trains_to_high_f1() {
        let codes = codes(4);
        let examples = corpus(&codes, 6);
        let cfg = TrainConfig {
            featurizer: FeaturizerConfig {
                n_buckets: 512,
                ..FeaturizerConfig::default()
            },
            ..TrainConfig::default()
        };
        let model = train("sep", cs2013(), &codes, &examples, &cfg).unwrap();
        assert!(model.train_f1 > 0.95, "train F1 {}", model.train_f1);
        let got = model.classify("today signalword2 appears").unwrap();
        assert_eq!(got.predicted, vec![codes[2].clone()]);
    }

    #[test]
    fn training_is_deterministic() {
        let codes = codes(3);
        let examples = corpus(&codes, 4);
        let cfg = TrainConfig {
            featurizer: FeaturizerConfig {
                n_buckets: 256,
                ..FeaturizerConfig::default()
            },
            ..TrainConfig::default()
        };
        let a = train("det", cs2013(), &codes, &examples, &cfg).unwrap();
        let b = train("det", cs2013(), &codes, &examples, &cfg).unwrap();
        assert_eq!(a, b, "same config, same corpus, same bits");
        let other = train(
            "det",
            cs2013(),
            &codes,
            &examples,
            &TrainConfig { seed: 99, ..cfg },
        )
        .unwrap();
        assert_ne!(a.weights, other.weights, "seed changes the trajectory");
    }

    #[test]
    fn bad_inputs_are_typed() {
        let codes = codes(2);
        let cfg = TrainConfig::default();
        assert_eq!(
            train("e", cs2013(), &codes, &[], &cfg).unwrap_err(),
            TextError::EmptyCorpus
        );
        let bogus = vec!["NOPE.xx".to_string()];
        assert!(matches!(
            train("e", cs2013(), &bogus, &corpus(&codes, 1), &cfg).unwrap_err(),
            TextError::UnknownTag { .. }
        ));
        let mut stray = corpus(&codes, 1);
        stray[0].tag_codes = vec!["NOPE.yy".into()];
        assert!(matches!(
            train("e", cs2013(), &codes, &stray, &cfg).unwrap_err(),
            TextError::UnknownTag { .. }
        ));
        let mut blank = corpus(&codes, 1);
        blank[0].text = " … ".into();
        assert_eq!(
            train("e", cs2013(), &codes, &blank, &cfg).unwrap_err(),
            TextError::EmptyText
        );
        assert!(matches!(
            train(
                "e",
                cs2013(),
                &codes,
                &corpus(&codes, 1),
                &TrainConfig {
                    epochs: 0,
                    ..TrainConfig::default()
                }
            )
            .unwrap_err(),
            TextError::Config { .. }
        ));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut order: Vec<usize> = (0..50).collect();
        shuffle(&mut order, 123);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(order, sorted, "50 elements almost surely move");
    }
}
