//! Hashed TF-IDF featurizer: word tokens + character n-grams → a fixed
//! bucket space.
//!
//! There is deliberately **no stored vocabulary**. Every token and every
//! character n-gram is hashed — seeded FNV-1a mixed through a
//! splitmix64 finalizer — into one of `n_buckets` buckets, with the
//! hash's low bit choosing a sign (the classic signed feature-hashing
//! trick, which makes collisions cancel in expectation instead of
//! piling up). The `(seed, n_buckets, char_ngram)` triple therefore *is*
//! the vocabulary: two processes with the same [`FeaturizerConfig`]
//! produce bitwise-identical vectors for the same text, which is what
//! lets the artifact layer round-trip a trained model without shipping
//! a token table.
//!
//! The vector pipeline is the standard text-classification stack:
//! sublinear TF (`sign · (1 + ln |count|)`), multiplied by a stored
//! per-bucket IDF (`ln((1+N)/(1+df)) + 1`, fitted on the training
//! corpus), then L2-normalized so document length cancels out.

use crate::error::TextError;
use std::collections::BTreeMap;

/// Geometry and seeding of the hashed feature space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeaturizerConfig {
    /// Number of hash buckets (feature dimensionality).
    pub n_buckets: usize,
    /// Character n-gram width (over `#`-padded tokens).
    pub char_ngram: usize,
    /// Hash seed — part of the model identity, not a tuning knob.
    pub seed: u64,
}

impl Default for FeaturizerConfig {
    fn default() -> Self {
        FeaturizerConfig {
            n_buckets: 4096,
            char_ngram: 3,
            seed: 0x7E47_5EED,
        }
    }
}

impl FeaturizerConfig {
    /// Reject geometries that cannot produce a meaningful feature space.
    pub fn validate(&self) -> Result<(), TextError> {
        let fail = |detail: String| Err(TextError::Config { detail });
        if self.n_buckets < 16 {
            return fail(format!("n_buckets {} < 16", self.n_buckets));
        }
        if !(2..=8).contains(&self.char_ngram) {
            return fail(format!("char_ngram {} outside 2..=8", self.char_ngram));
        }
        Ok(())
    }

    /// Hashed signed term counts for one document — the raw layer the
    /// TF-IDF transform and the IDF fit both consume.
    pub fn raw_counts(&self, text: &str) -> BTreeMap<usize, f64> {
        let mut counts = BTreeMap::new();
        for token in tokenize(text) {
            self.bump(&mut counts, b'w', token.as_bytes());
            let padded: Vec<char> = std::iter::once('#')
                .chain(token.chars())
                .chain(std::iter::once('#'))
                .collect();
            if padded.len() >= self.char_ngram {
                let mut gram = String::new();
                for window in padded.windows(self.char_ngram) {
                    gram.clear();
                    gram.extend(window.iter());
                    self.bump(&mut counts, b'g', gram.as_bytes());
                }
            }
        }
        counts
    }

    fn bump(&self, counts: &mut BTreeMap<usize, f64>, kind: u8, bytes: &[u8]) {
        let (bucket, sign) = self.bucket_of(kind, bytes);
        *counts.entry(bucket).or_insert(0.0) += sign;
    }

    /// The bucket and sign a feature hashes to. `kind` namespaces word
    /// features away from n-gram features so `"the"` the token and
    /// `"the"` the trigram are independent coordinates.
    fn bucket_of(&self, kind: u8, bytes: &[u8]) -> (usize, f64) {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET ^ (kind as u64);
        h = h.wrapping_mul(PRIME);
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        let mixed = mix64(self.seed ^ h);
        let bucket = ((mixed >> 1) % self.n_buckets as u64) as usize;
        let sign = if mixed & 1 == 0 { 1.0 } else { -1.0 };
        (bucket, sign)
    }
}

/// splitmix64 finalizer — the avalanche step that decorrelates the FNV
/// hash from the seed. Deterministic and dependency-free.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Lowercased alphanumeric tokens, length ≥ 2. Case, punctuation, and
/// whitespace carry no signal for guideline classification, so they are
/// normalized away before hashing.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            if current.chars().count() >= 2 {
                tokens.push(std::mem::take(&mut current));
            } else {
                current.clear();
            }
        }
    }
    if current.chars().count() >= 2 {
        tokens.push(current);
    }
    tokens
}

/// Per-bucket document frequencies over a corpus of raw-count maps.
/// A bucket is "present" in a document when its signed count is nonzero
/// (equal-and-opposite collisions cancel to absent — deterministically).
pub fn document_frequencies(n_buckets: usize, docs: &[BTreeMap<usize, f64>]) -> Vec<u64> {
    let mut df = vec![0u64; n_buckets];
    for counts in docs {
        for (&bucket, &c) in counts {
            if c != 0.0 {
                df[bucket] += 1;
            }
        }
    }
    df
}

/// Smoothed IDF: `ln((1+N)/(1+df)) + 1` — never zero, so a bucket seen
/// in every training document still contributes.
pub fn idf_from_df(df: &[u64], n_docs: usize) -> Vec<f64> {
    df.iter()
        .map(|&d| ((1.0 + n_docs as f64) / (1.0 + d as f64)).ln() + 1.0)
        .collect()
}

/// Sublinear-TF × IDF over raw counts, L2-normalized, as a sparse
/// `(bucket, weight)` list in ascending bucket order.
pub fn tf_idf_vector(
    counts: &BTreeMap<usize, f64>,
    idf: &[f64],
) -> Result<Vec<(usize, f64)>, TextError> {
    let mut vector: Vec<(usize, f64)> = counts
        .iter()
        .filter(|&(_, &c)| c != 0.0)
        .map(|(&bucket, &c)| {
            let tf = c.signum() * (1.0 + c.abs().ln());
            (bucket, tf * idf[bucket])
        })
        .collect();
    let norm = vector.iter().map(|&(_, v)| v * v).sum::<f64>().sqrt();
    if norm == 0.0 || !norm.is_finite() {
        return Err(TextError::EmptyText);
    }
    for (_, v) in &mut vector {
        *v /= norm;
    }
    Ok(vector)
}

/// The full featurization pipeline for one document: tokenize, hash,
/// TF-IDF, normalize. `idf.len()` must equal `config.n_buckets`.
pub fn featurize(
    config: &FeaturizerConfig,
    idf: &[f64],
    text: &str,
) -> Result<Vec<(usize, f64)>, TextError> {
    debug_assert_eq!(idf.len(), config.n_buckets);
    let counts = config.raw_counts(text);
    if counts.is_empty() {
        return Err(TextError::EmptyText);
    }
    tf_idf_vector(&counts, idf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_normalizes_case_and_punctuation() {
        assert_eq!(
            tokenize("MPI_Send, barriers & dead-locks!"),
            vec!["mpi", "send", "barriers", "dead", "locks"]
        );
        assert_eq!(tokenize("a I . ;"), Vec::<String>::new());
        assert_eq!(tokenize(""), Vec::<String>::new());
    }

    #[test]
    fn hashing_is_deterministic_and_seed_sensitive() {
        let cfg = FeaturizerConfig::default();
        assert_eq!(
            cfg.raw_counts("openmp pragma"),
            cfg.raw_counts("openmp pragma")
        );
        let other = FeaturizerConfig {
            seed: cfg.seed ^ 1,
            ..cfg
        };
        assert_ne!(
            cfg.raw_counts("openmp pragma"),
            other.raw_counts("openmp pragma"),
            "a different seed is a different vocabulary"
        );
    }

    #[test]
    fn vectors_are_unit_norm_and_sparse_sorted() {
        let cfg = FeaturizerConfig::default();
        let idf = vec![1.0; cfg.n_buckets];
        let v = featurize(&cfg, &idf, "deadlock occurs when threads wait forever").unwrap();
        let norm: f64 = v.iter().map(|&(_, x)| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12, "unit norm, got {norm}");
        assert!(v.windows(2).all(|w| w[0].0 < w[1].0), "ascending buckets");
        assert!(v.iter().all(|&(b, _)| b < cfg.n_buckets));
    }

    #[test]
    fn empty_text_is_typed() {
        let cfg = FeaturizerConfig::default();
        let idf = vec![1.0; cfg.n_buckets];
        assert_eq!(
            featurize(&cfg, &idf, "  !! ").unwrap_err(),
            TextError::EmptyText
        );
    }

    #[test]
    fn idf_downweights_ubiquitous_buckets() {
        let cfg = FeaturizerConfig {
            n_buckets: 64,
            ..FeaturizerConfig::default()
        };
        let docs: Vec<_> = [
            "course syllabus threads",
            "course syllabus cache",
            "course syllabus mpi",
        ]
        .iter()
        .map(|t| cfg.raw_counts(t))
        .collect();
        let df = document_frequencies(cfg.n_buckets, &docs);
        let idf = idf_from_df(&df, docs.len());
        assert_eq!(idf.len(), cfg.n_buckets);
        let (common, _) = cfg.bucket_of(b'w', b"course");
        let (rare, _) = cfg.bucket_of(b'w', b"mpi");
        assert!(
            idf[rare] > idf[common],
            "rare {} must out-weigh common {}",
            idf[rare],
            idf[common]
        );
        assert!(idf.iter().all(|&x| x >= 1.0), "smoothed IDF never hits 0");
    }

    #[test]
    fn config_validation_rejects_degenerate_geometry() {
        let bad = FeaturizerConfig {
            n_buckets: 2,
            ..FeaturizerConfig::default()
        };
        assert!(matches!(bad.validate(), Err(TextError::Config { .. })));
        let bad = FeaturizerConfig {
            char_ngram: 1,
            ..FeaturizerConfig::default()
        };
        assert!(matches!(bad.validate(), Err(TextError::Config { .. })));
        assert!(FeaturizerConfig::default().validate().is_ok());
    }
}
