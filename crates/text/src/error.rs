//! Typed failure taxonomy for text classification.

use std::fmt;

/// Everything that can go wrong between raw text and a tag prediction.
///
/// The variants split along the same retry-vs-reject line the serving
/// stack uses everywhere: caller mistakes ([`TextError::EmptyText`],
/// [`TextError::UnknownTag`]) map to 4xx at the HTTP edge, while model
/// defects ([`TextError::Invalid`], [`TextError::FingerprintMismatch`])
/// mean the artifact must not serve.
#[derive(Debug, Clone, PartialEq)]
pub enum TextError {
    /// The input text produced no usable tokens.
    EmptyText,
    /// A training corpus with no examples (or no usable examples).
    EmptyCorpus,
    /// A tag code that does not exist in the target ontology (or, at
    /// training time, in the declared tag space).
    UnknownTag {
        /// The offending dotted code.
        code: String,
    },
    /// The model was trained against a different ontology revision.
    FingerprintMismatch {
        /// Guideline name the model declares.
        guideline: String,
        /// Fingerprint baked into the model.
        expected: u64,
        /// Fingerprint of the ontology offered at load/classify time.
        found: u64,
    },
    /// A nonsensical featurizer or trainer configuration.
    Config {
        /// What was wrong with it.
        detail: String,
    },
    /// A model whose internal geometry is inconsistent (wrong vector
    /// lengths, non-finite weights) — a decode bug or corrupt artifact.
    Invalid {
        /// What failed validation.
        detail: String,
    },
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextError::EmptyText => write!(f, "input text contains no usable tokens"),
            TextError::EmptyCorpus => write!(f, "training corpus is empty"),
            TextError::UnknownTag { code } => write!(f, "unknown tag code {code:?}"),
            TextError::FingerprintMismatch {
                guideline,
                expected,
                found,
            } => write!(
                f,
                "text model was trained against {guideline} revision {expected:016x}, \
                 but the loaded ontology fingerprints as {found:016x}"
            ),
            TextError::Config { detail } => write!(f, "invalid text configuration: {detail}"),
            TextError::Invalid { detail } => write!(f, "invalid text model: {detail}"),
        }
    }
}

impl std::error::Error for TextError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TextError::UnknownTag {
            code: "PDC.bogus".into(),
        };
        assert!(e.to_string().contains("PDC.bogus"));
        let e = TextError::FingerprintMismatch {
            guideline: "CS2013".into(),
            expected: 1,
            found: 2,
        };
        let s = e.to_string();
        assert!(
            s.contains("CS2013") && s.contains("0000000000000001"),
            "{s}"
        );
    }
}
