//! # anchors-text — raw text → ontology tags
//!
//! Everything downstream of the fold-in [`QueryEngine`] assumes a course
//! already carries curated tag assignments. This crate learns that step:
//! it maps raw course/material text (a syllabus, an assignment handout, a
//! forum post) to guideline tag codes, so content nobody hand-labeled can
//! enter the anchor-point pipeline.
//!
//! The design follows the classification-against-guidelines related work:
//! a lightweight bag-of-words model is enough for this mapping, and it
//! must be cheap enough to run per request on the serving hot path.
//!
//! * [`FeaturizerConfig`] / [`featurize`] — a **hashed** TF-IDF
//!   featurizer: word tokens plus character n-grams, each hashed into a
//!   fixed bucket space with a seeded signed hash (no vocabulary to
//!   store or version — the seed *is* the vocabulary), sublinear TF
//!   scaling, stored IDF weights, L2 normalization. Fully deterministic
//!   for a given `(seed, n_buckets, char_ngram)` triple.
//! * [`train`] — one-vs-rest logistic regression via averaged SGD with a
//!   deterministic per-epoch shuffle, plus per-tag threshold calibration
//!   (midpoint of the mean positive/negative training scores), so
//!   `predicted` answers are comparable across tags with very different
//!   base rates.
//! * [`TextModel`] — the frozen artifact: featurizer config, IDF vector,
//!   weight matrix, biases, calibrated thresholds, and the ontology
//!   fingerprint it was trained against. [`TextModel::classify`] returns
//!   calibrated per-tag scores and the thresholded tag set.
//! * [`TextError`] — the typed failure taxonomy (empty input, unknown
//!   tags, fingerprint drift, invalid geometry), folded into
//!   `AnchorsError` by `anchors-core`.
//!
//! Serialization lives in `anchors-serve` (`text_artifact`), where the
//! model rides the same checksum-framed JSON/binary codec and registry
//! machinery as `FittedModel`.

#![warn(missing_docs)]

pub mod error;
pub mod featurize;
pub mod model;
pub mod train;

pub use error::TextError;
pub use featurize::{featurize, mix64, tokenize, FeaturizerConfig};
pub use model::{TagScore, TextClassification, TextModel};
pub use train::{micro_f1, train, TextExample, TrainConfig};
