//! The frozen text-classification artifact and its inference path.

use crate::error::TextError;
use crate::featurize::{featurize, FeaturizerConfig};
use anchors_curricula::Ontology;
use anchors_linalg::Matrix;

/// A trained one-vs-rest linear text classifier over a guideline tag
/// space. Everything needed to reproduce a classification bitwise is in
/// the struct — featurizer geometry and seed, IDF, weights, biases,
/// calibrated thresholds — plus enough provenance (ontology fingerprint,
/// training diagnostics) to refuse to serve against the wrong guideline
/// revision.
#[derive(Debug, Clone, PartialEq)]
pub struct TextModel {
    /// Human-readable model name.
    pub name: String,
    /// Guideline the tag codes come from (e.g. `"ACM/IEEE CS2013"`).
    pub guideline: String,
    /// [`Ontology::fingerprint`] of the guideline revision trained
    /// against.
    pub fingerprint: u64,
    /// Dotted tag codes, one per classifier row, in training order.
    pub tag_codes: Vec<String>,
    /// Hashed-featurizer geometry and seed.
    pub config: FeaturizerConfig,
    /// Per-bucket IDF weights fitted on the training corpus
    /// (`n_buckets` long).
    pub idf: Vec<f64>,
    /// Classifier weights, `n_tags × n_buckets`.
    pub weights: Matrix,
    /// Per-tag intercepts (`n_tags` long).
    pub bias: Vec<f64>,
    /// Per-tag calibrated decision thresholds in probability space
    /// (`n_tags` long).
    pub thresholds: Vec<f64>,
    /// Number of training documents.
    pub train_docs: usize,
    /// Trainer shuffle seed (provenance).
    pub train_seed: u64,
    /// Micro-averaged F1 on the training corpus after calibration.
    pub train_f1: f64,
}

/// One tag's calibrated score.
#[derive(Debug, Clone, PartialEq)]
pub struct TagScore {
    /// Dotted guideline code.
    pub code: String,
    /// Calibrated probability-space score in `[0, 1]`.
    pub score: f64,
    /// Whether the score cleared this tag's calibrated threshold.
    pub predicted: bool,
}

/// The result of classifying one document.
#[derive(Debug, Clone, PartialEq)]
pub struct TextClassification {
    /// Every tag's score, descending by score (ties broken by code), so
    /// the head of the list is always the model's best guess.
    pub scores: Vec<TagScore>,
    /// The predicted tag codes in score order. Never empty: when no tag
    /// clears its threshold, the single best-scoring tag is predicted
    /// anyway — downstream fold-in needs at least one coordinate.
    pub predicted: Vec<String>,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl TextModel {
    /// Classify one document: featurize, score every tag, threshold.
    pub fn classify(&self, text: &str) -> Result<TextClassification, TextError> {
        let vector = featurize(&self.config, &self.idf, text)?;
        let mut scores: Vec<TagScore> = self
            .tag_codes
            .iter()
            .enumerate()
            .map(|(tag, code)| {
                let row = self.weights.row(tag);
                let margin: f64 =
                    self.bias[tag] + vector.iter().map(|&(b, v)| row[b] * v).sum::<f64>();
                let score = sigmoid(margin);
                TagScore {
                    code: code.clone(),
                    score,
                    predicted: score >= self.thresholds[tag],
                }
            })
            .collect();
        scores.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.code.cmp(&b.code))
        });
        if !scores.iter().any(|s| s.predicted) {
            if let Some(top) = scores.first_mut() {
                top.predicted = true;
            }
        }
        let predicted = scores
            .iter()
            .filter(|s| s.predicted)
            .map(|s| s.code.clone())
            .collect();
        Ok(TextClassification { scores, predicted })
    }

    /// Number of tags this model scores.
    pub fn n_tags(&self) -> usize {
        self.tag_codes.len()
    }

    /// Refuse to serve against a different guideline revision than the
    /// one trained against, and require every tag code to still resolve.
    pub fn check_ontology(&self, ontology: &Ontology) -> Result<(), TextError> {
        let found = ontology.fingerprint();
        if found != self.fingerprint {
            return Err(TextError::FingerprintMismatch {
                guideline: self.guideline.clone(),
                expected: self.fingerprint,
                found,
            });
        }
        for code in &self.tag_codes {
            if ontology.by_code(code).is_none() {
                return Err(TextError::UnknownTag { code: code.clone() });
            }
        }
        Ok(())
    }

    /// Validate internal geometry — the decode-side defense that turns a
    /// structurally plausible but inconsistent artifact into a typed
    /// error instead of an out-of-bounds panic on the first query.
    pub fn check_shapes(&self) -> Result<(), TextError> {
        let fail = |detail: String| Err(TextError::Invalid { detail });
        self.config.validate()?;
        let (n_tags, n_buckets) = (self.tag_codes.len(), self.config.n_buckets);
        if n_tags == 0 {
            return fail("no tag codes".into());
        }
        let mut seen = std::collections::BTreeSet::new();
        for code in &self.tag_codes {
            if !seen.insert(code) {
                return fail(format!("duplicate tag code {code:?}"));
            }
        }
        if self.weights.shape() != (n_tags, n_buckets) {
            return fail(format!(
                "weights are {:?}, want ({n_tags}, {n_buckets})",
                self.weights.shape()
            ));
        }
        if self.idf.len() != n_buckets {
            return fail(format!(
                "idf has {} entries, want {n_buckets}",
                self.idf.len()
            ));
        }
        if self.bias.len() != n_tags {
            return fail(format!(
                "bias has {} entries, want {n_tags}",
                self.bias.len()
            ));
        }
        if self.thresholds.len() != n_tags {
            return fail(format!(
                "thresholds has {} entries, want {n_tags}",
                self.thresholds.len()
            ));
        }
        let finite = |xs: &[f64]| xs.iter().all(|x| x.is_finite());
        if !finite(&self.idf) || !finite(&self.bias) || !finite(self.weights.as_slice()) {
            return fail("non-finite model parameters".into());
        }
        if !finite(&self.thresholds) || self.thresholds.iter().any(|&t| !(0.0..=1.0).contains(&t)) {
            return fail("thresholds outside [0, 1]".into());
        }
        if !self.train_f1.is_finite() {
            return fail("non-finite training F1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_curricula::cs2013;

    /// A hand-built two-tag model whose weights make the word "threads"
    /// (hashed under the default seed) vote for tag 0.
    fn toy() -> TextModel {
        let cs = cs2013();
        let codes: Vec<String> = cs
            .leaf_items()
            .into_iter()
            .take(2)
            .map(|id| cs.node(id).code.clone())
            .collect();
        let config = FeaturizerConfig {
            n_buckets: 64,
            ..FeaturizerConfig::default()
        };
        let counts = config.raw_counts("threads");
        let mut weights = Matrix::zeros(2, config.n_buckets);
        for (&bucket, &sign) in &counts {
            weights.row_mut(0)[bucket] = 8.0 * sign;
        }
        TextModel {
            name: "toy".into(),
            guideline: cs.name.clone(),
            fingerprint: cs.fingerprint(),
            tag_codes: codes,
            config,
            idf: vec![1.0; config.n_buckets],
            weights,
            bias: vec![0.0, 0.0],
            thresholds: vec![0.6, 0.6],
            train_docs: 0,
            train_seed: 0,
            train_f1: 1.0,
        }
    }

    #[test]
    fn classify_scores_thresholds_and_orders() {
        let model = toy();
        model.check_shapes().unwrap();
        let got = model.classify("threads").unwrap();
        assert_eq!(got.scores.len(), 2);
        assert_eq!(got.scores[0].code, model.tag_codes[0]);
        assert!(
            got.scores[0].score > 0.9,
            "strong vote: {}",
            got.scores[0].score
        );
        assert_eq!(got.predicted, vec![model.tag_codes[0].clone()]);
        // A document with no signal still predicts its best guess.
        let neutral = model.classify("pumpkin carving for fun").unwrap();
        assert_eq!(neutral.predicted.len(), 1);
        assert!(neutral.scores[0].predicted);
    }

    #[test]
    fn empty_text_refuses() {
        assert_eq!(toy().classify("  ").unwrap_err(), TextError::EmptyText);
    }

    #[test]
    fn ontology_gate_catches_drift_and_unknown_codes() {
        let cs = cs2013();
        let model = toy();
        model.check_ontology(cs).unwrap();
        let mut drifted = model.clone();
        drifted.fingerprint ^= 1;
        assert!(matches!(
            drifted.check_ontology(cs),
            Err(TextError::FingerprintMismatch { .. })
        ));
        let mut bad_code = model.clone();
        bad_code.tag_codes[0] = "NOPE.xx".into();
        assert!(matches!(
            bad_code.check_ontology(cs),
            Err(TextError::UnknownTag { .. })
        ));
    }

    #[test]
    fn shape_gate_catches_geometry_defects() {
        let good = toy();
        let mut bad = good.clone();
        bad.idf.pop();
        assert!(matches!(bad.check_shapes(), Err(TextError::Invalid { .. })));
        let mut bad = good.clone();
        bad.bias[0] = f64::NAN;
        assert!(matches!(bad.check_shapes(), Err(TextError::Invalid { .. })));
        let mut bad = good.clone();
        bad.thresholds[1] = 1.5;
        assert!(matches!(bad.check_shapes(), Err(TextError::Invalid { .. })));
        let mut bad = good;
        bad.tag_codes[1] = bad.tag_codes[0].clone();
        assert!(matches!(bad.check_shapes(), Err(TextError::Invalid { .. })));
    }
}
