//! Property-based round-trip of the text front door: a seeded tag set
//! becomes synthetic syllabus text (via `anchors-corpus`), the trained
//! classifier reads the text back, and the original tags are recovered
//! above a fixed quality floor. Also pins the structural invariants of
//! classification output on arbitrary inputs.

use anchors_corpus::text::{document_for_tags, generate_text_corpus, TextCorpusConfig};
use anchors_curricula::cs2013;
use anchors_text::{micro_f1, train, TextExample, TextModel, TrainConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Held-out documents per proptest case. Recovery is asserted over the
/// batch, not per document — individual synthetic docs are allowed to be
/// noisy, the classifier is not.
const DOCS_PER_CASE: usize = 10;

/// Micro-F1 floor on *held-out* batches (fresh document seeds the
/// trainer never saw). Deliberately below the ≥0.9 training-corpus gate
/// in `BENCH_text.json`: generalization to unseen seeds is the property,
/// the margin absorbs unlucky batches.
const HELD_OUT_F1_FLOOR: f64 = 0.55;

/// One model for the whole suite: training is the expensive step and the
/// properties quantify over *inputs*, not over retrainings (determinism
/// of training itself is covered by unit tests in `anchors_text::train`).
fn model() -> &'static TextModel {
    static MODEL: OnceLock<TextModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let corpus = generate_text_corpus(&TextCorpusConfig {
            tags: 12,
            ..TextCorpusConfig::default()
        });
        train(
            "prop-text",
            cs2013(),
            &corpus.tag_codes,
            &corpus.examples,
            &TrainConfig::default(),
        )
        .expect("training on the synthetic corpus succeeds")
    })
}

/// A held-out batch: `DOCS_PER_CASE` fresh documents, all carrying the
/// same tag set, generated from seeds the training corpus never used.
fn held_out_batch(tag_codes: &[String], base_seed: u64) -> Vec<TextExample> {
    (0..DOCS_PER_CASE)
        .map(|i| {
            let seed = base_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1);
            TextExample {
                text: document_for_tags(tag_codes, 60, 0.35, seed),
                tag_codes: tag_codes.to_vec(),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn seeded_single_tag_text_recovers_its_tag(
        tag in 0usize..12,
        base_seed in any::<u64>(),
    ) {
        // Round trip: tag → text → classify → tag. For single-tag
        // documents the batch must clear the recovery floor, and the
        // true tag must be the top-scoring prediction on most of the
        // batch — the front door's "best guess" is what fold-in uses.
        let model = model();
        let code = model.tag_codes[tag].clone();
        let batch = held_out_batch(std::slice::from_ref(&code), base_seed);
        let f1 = micro_f1(model, &batch).expect("held-out batch scores");
        prop_assert!(
            f1 >= HELD_OUT_F1_FLOOR,
            "tag {code}: held-out micro-F1 {f1:.3} below {HELD_OUT_F1_FLOOR}"
        );
        let top_hits = batch
            .iter()
            .filter(|ex| {
                let got = model.classify(&ex.text).expect("classifies");
                got.scores[0].code == code
            })
            .count();
        prop_assert!(
            top_hits * 2 > DOCS_PER_CASE,
            "tag {code}: top-1 recovered on only {top_hits}/{DOCS_PER_CASE} docs"
        );
    }

    #[test]
    fn seeded_multi_tag_text_recovers_its_tags(
        first in 0usize..12,
        stride in 1usize..11,
        extra in 0usize..2,
        base_seed in any::<u64>(),
    ) {
        // Multi-label round trip: 2–3 distinct tags share one document;
        // batch-level recovery must still clear the floor.
        let model = model();
        let mut codes: Vec<String> = (0..2 + extra)
            .map(|i| model.tag_codes[(first + i * stride) % 12].clone())
            .collect();
        codes.dedup();
        let batch = held_out_batch(&codes, base_seed);
        let f1 = micro_f1(model, &batch).expect("held-out batch scores");
        prop_assert!(
            f1 >= HELD_OUT_F1_FLOOR,
            "tags {codes:?}: held-out micro-F1 {f1:.3} below {HELD_OUT_F1_FLOOR}"
        );
    }

    #[test]
    fn classification_output_is_deterministic_and_well_formed(
        tag in 0usize..12,
        seed in any::<u64>(),
        words in 5usize..80,
    ) {
        // Structural invariants on any classifiable input: scores cover
        // every tag exactly once in descending order, probabilities stay
        // in [0, 1], `predicted` is a non-empty score-ordered subset,
        // and classifying twice is bitwise identical.
        let model = model();
        let text = document_for_tags(
            std::slice::from_ref(&model.tag_codes[tag]),
            words,
            0.5,
            seed,
        );
        let got = model.classify(&text).expect("classifies");
        prop_assert_eq!(got.scores.len(), model.n_tags());
        let mut seen: Vec<&str> = got.scores.iter().map(|s| s.code.as_str()).collect();
        seen.sort_unstable();
        let mut all: Vec<&str> = model.tag_codes.iter().map(|c| c.as_str()).collect();
        all.sort_unstable();
        prop_assert_eq!(seen, all, "scores cover the tag space exactly once");
        for pair in got.scores.windows(2) {
            prop_assert!(pair[0].score >= pair[1].score, "scores sorted descending");
        }
        for s in &got.scores {
            prop_assert!((0.0..=1.0).contains(&s.score), "{}: score {}", s.code, s.score);
        }
        prop_assert!(!got.predicted.is_empty(), "predicted never empty");
        let predicted_by_scores: Vec<&String> = got
            .scores
            .iter()
            .filter(|s| s.predicted)
            .map(|s| &s.code)
            .collect();
        prop_assert_eq!(
            got.predicted.iter().collect::<Vec<_>>(),
            predicted_by_scores,
            "predicted mirrors the thresholded scores in order"
        );
        let again = model.classify(&text).expect("classifies again");
        prop_assert_eq!(again, got, "classification is deterministic");
    }
}
