//! The 20-course roster of the paper's Figure 1.
//!
//! Course names, institutions, instructors, and family labels are
//! transcribed from the figure; the *classifications* of each course are
//! synthetic (see `crate::generate`), since the workshop data itself is not
//! public. Mixture weights encode the course structure the paper reports in
//! §4.4–4.7 (e.g. WashU Singh is the OOP-flavored CS1; UCF Ahmed hits all
//! three DS types evenly).

use crate::profiles::{self, TypeProfile};
use anchors_materials::CourseLabel;

/// Static description of one course of the corpus.
pub struct CourseSpec {
    /// Full display name as in Figure 1.
    pub name: &'static str,
    /// Institution short name.
    pub institution: &'static str,
    /// Instructor surname.
    pub instructor: &'static str,
    /// Family labels (the X marks of Figure 1).
    pub labels: &'static [CourseLabel],
    /// Primary implementation language.
    pub language: &'static str,
    /// Latent type mixture: `(profile, weight)` with weights in `[0, 1]`.
    pub mixture: &'static [(&'static TypeProfile, f64)],
    /// Rate of idiosyncratic tags: expected number of extra leaf items
    /// drawn from anywhere in the guideline (instructor quirks — the main
    /// driver of the long disagreement tail in Figure 3).
    pub idiosyncrasy: f64,
}

use CourseLabel::*;

/// The corpus roster (Figure 1, 20 courses).
pub static ROSTER: &[CourseSpec] = &[
    CourseSpec {
        name: "UNCC ITCS 2214 KRS Data Structures and Algorithms",
        institution: "UNCC",
        instructor: "KRS",
        labels: &[DataStructures],
        language: "Java",
        mixture: &[(&profiles::DS_CORE, 1.0), (&profiles::DS_APPLIED, 0.9)],
        idiosyncrasy: 10.0,
    },
    CourseSpec {
        name: "UNCC ITCS 2214 Saule Data Structures and Algorithms",
        institution: "UNCC",
        instructor: "Saule",
        labels: &[DataStructures],
        language: "Java",
        mixture: &[
            (&profiles::DS_CORE, 1.0),
            (&profiles::DS_APPLIED, 0.8),
            (&profiles::DS_OOP, 0.15),
            (&profiles::DS_COMBINATORIAL, 0.15),
        ],
        idiosyncrasy: 10.0,
    },
    CourseSpec {
        name: "UNCC ITCS 3145 Saule Parallel and Distributed Computing",
        institution: "UNCC",
        instructor: "Saule",
        labels: &[Pdc],
        language: "C",
        mixture: &[(&profiles::PDC, 1.0)],
        idiosyncrasy: 10.0,
    },
    CourseSpec {
        name: "UNCC ITCS 3112 KRS Object Oriented Programming",
        institution: "UNCC",
        instructor: "KRS",
        labels: &[Oop],
        language: "Java",
        mixture: &[(&profiles::OOP_COURSE, 1.0)],
        idiosyncrasy: 10.0,
    },
    CourseSpec {
        name: "CCC CSCI 40 Kerney CS1",
        institution: "CCC",
        instructor: "Kerney",
        labels: &[Cs1],
        language: "C",
        mixture: &[
            (&profiles::CS1_IMPERATIVE, 1.0),
            (&profiles::CS1_SYSTEMS, 0.40),
            (&profiles::CS1_TESTING, 0.40),
        ],
        idiosyncrasy: 9.0,
    },
    CourseSpec {
        name: "Hanover cs225 Wahl Algorithmic Analysis 2021",
        institution: "Hanover",
        instructor: "Wahl",
        labels: &[Algorithms],
        language: "Python",
        mixture: &[
            (&profiles::DS_CORE, 0.7),
            (&profiles::DS_COMBINATORIAL, 1.0),
        ],
        idiosyncrasy: 10.0,
    },
    CourseSpec {
        name: "VCU CMSC 256 Duke Data Structures and Object-oriented Programming",
        institution: "VCU",
        instructor: "Duke",
        labels: &[DataStructures],
        language: "Java",
        mixture: &[(&profiles::DS_CORE, 0.95), (&profiles::DS_OOP, 1.0)],
        idiosyncrasy: 10.0,
    },
    CourseSpec {
        name: "CCC CSCI 41 Kerney CS2",
        institution: "CCC",
        instructor: "Kerney",
        labels: &[Cs2],
        language: "C++",
        mixture: &[(&profiles::CS2, 1.0)],
        idiosyncrasy: 10.0,
    },
    CourseSpec {
        name: "BSC CAC 210 Wagner Data Structures and Algorithms",
        institution: "BSC",
        instructor: "Wagner",
        labels: &[DataStructures],
        language: "Java",
        mixture: &[
            (&profiles::DS_CORE, 0.95),
            (&profiles::DS_COMBINATORIAL, 0.8),
        ],
        idiosyncrasy: 10.0,
    },
    CourseSpec {
        name: "UNCC ITCS 2215 KRS Algorithms",
        institution: "UNCC",
        instructor: "KRS",
        labels: &[Algorithms],
        language: "C++",
        mixture: &[
            (&profiles::DS_CORE, 0.75),
            (&profiles::DS_COMBINATORIAL, 1.0),
        ],
        idiosyncrasy: 10.0,
    },
    CourseSpec {
        name: "GSU CSC4350 Levine Software Engineering",
        institution: "GSU",
        instructor: "Levine",
        labels: &[SoftEng],
        language: "Java",
        mixture: &[(&profiles::SOFTENG, 1.0)],
        idiosyncrasy: 10.0,
    },
    CourseSpec {
        name: "Tulane CMPS1100 Kurdia Intro to Programming",
        institution: "Tulane",
        instructor: "Kurdia",
        labels: &[Cs1],
        language: "Python",
        mixture: &[
            (&profiles::CS1_IMPERATIVE, 0.9),
            (&profiles::CS1_DATA, 0.55),
            (&profiles::CS1_FUNCTIONAL, 0.45),
        ],
        idiosyncrasy: 9.0,
    },
    CourseSpec {
        name: "Knox CS309 Bunde Parallel Computing",
        institution: "Knox",
        instructor: "Bunde",
        labels: &[Pdc],
        language: "C",
        mixture: &[(&profiles::PDC, 0.9)],
        idiosyncrasy: 10.0,
    },
    CourseSpec {
        name: "LSU CSC 1350 Kundu Parallel Computation",
        institution: "LSU",
        instructor: "Kundu",
        labels: &[Pdc],
        language: "C++",
        mixture: &[(&profiles::PDC, 0.85)],
        idiosyncrasy: 10.0,
    },
    CourseSpec {
        name: "UCF COP3502 Ahmed Computer Science 1 (CS1) Data structure and algorithm",
        institution: "UCF",
        instructor: "Ahmed",
        labels: &[Cs1, DataStructures],
        language: "C",
        // §4.6: "UCF's course seems to hit all three types evenly".
        mixture: &[
            (&profiles::CS1_IMPERATIVE, 0.15),
            (&profiles::DS_CORE, 0.7),
            (&profiles::DS_APPLIED, 0.35),
            (&profiles::DS_OOP, 0.35),
            (&profiles::DS_COMBINATORIAL, 0.35),
        ],
        idiosyncrasy: 9.0,
    },
    CourseSpec {
        name: "WashU CSE131 Singh Computer Science 1",
        institution: "WashU",
        instructor: "Singh",
        labels: &[Cs1],
        language: "Java",
        mixture: &[(&profiles::CS1_OOP, 1.0)],
        idiosyncrasy: 9.0,
    },
    CourseSpec {
        name: "UNL CSCE 155E Bourke Computer Science I using C",
        institution: "UNL",
        instructor: "Bourke",
        labels: &[Cs1],
        language: "C",
        mixture: &[
            (&profiles::CS1_IMPERATIVE, 0.95),
            (&profiles::CS1_SYSTEMS, 0.65),
        ],
        idiosyncrasy: 9.0,
    },
    CourseSpec {
        name: "UNCC ITCS 4155 Payton Software Development Projects",
        institution: "UNCC",
        instructor: "Payton",
        labels: &[SoftEng],
        language: "JavaScript",
        mixture: &[(&profiles::SOFTENG, 0.9)],
        idiosyncrasy: 10.0,
    },
    CourseSpec {
        name: "Tulane CMPS1500 Toups CS1",
        institution: "Tulane",
        instructor: "Toups",
        labels: &[Cs1],
        language: "Python",
        // §4.5: CMPS1500 "contains significant data structure and
        // algorithm topics" — a blend.
        mixture: &[
            (&profiles::CS1_IMPERATIVE, 0.45),
            (&profiles::CS1_ALGO, 0.65),
            (&profiles::CS1_DATA, 0.3),
        ],
        idiosyncrasy: 9.0,
    },
    CourseSpec {
        name: "UTSA Bopana Computer Network",
        institution: "UTSA",
        instructor: "Bopana",
        labels: &[Network],
        language: "Python",
        mixture: &[(&profiles::NETWORK, 1.0)],
        idiosyncrasy: 10.0,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_courses() {
        assert_eq!(ROSTER.len(), 20);
    }

    #[test]
    fn label_census_matches_figure_1() {
        let count = |l: CourseLabel| ROSTER.iter().filter(|c| c.labels.contains(&l)).count();
        assert_eq!(count(Cs1), 6, "six CS1/intro courses");
        assert_eq!(count(DataStructures), 5, "five DS courses");
        assert_eq!(count(Algorithms), 2, "two Algorithms courses");
        assert_eq!(count(Pdc), 3, "three PDC courses");
        assert_eq!(count(SoftEng), 2, "two SoftEng courses");
        assert_eq!(count(Oop), 1);
        assert_eq!(count(Cs2), 1);
        assert_eq!(count(Network), 1);
    }

    #[test]
    fn names_unique_and_nonempty() {
        let mut names: Vec<&str> = ROSTER.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
        assert!(ROSTER.iter().all(|c| !c.name.is_empty()));
    }

    #[test]
    fn mixtures_have_positive_weights() {
        for c in ROSTER {
            assert!(!c.mixture.is_empty(), "{} has no mixture", c.name);
            for (p, w) in c.mixture {
                assert!(*w > 0.0 && *w <= 1.0, "{}: {} weight {}", c.name, p.name, w);
            }
        }
    }

    #[test]
    fn paper_course_facts() {
        // Singh teaches the Java OOP-flavored CS1.
        let singh = ROSTER.iter().find(|c| c.instructor == "Singh").unwrap();
        assert_eq!(singh.language, "Java");
        assert_eq!(singh.mixture[0].0.name, "cs1-oop");
        // UCF hits many DS types.
        let ucf = ROSTER.iter().find(|c| c.institution == "UCF").unwrap();
        assert!(ucf.mixture.len() >= 4);
        assert_eq!(ucf.labels.len(), 2);
    }
}
