//! # anchors-corpus
//!
//! The data substrate of the `pdc-anchors` reproduction: the 20-course
//! roster of the paper's Figure 1 ([`roster`]) and a calibrated synthetic
//! classification generator ([`generate`]) standing in for the private
//! workshop data.
//!
//! The generator samples each course as a noisy-OR mixture of latent type
//! profiles ([`profiles`]) over the CS2013 ontology — precisely the
//! generative assumption NNMF makes — plus uniform idiosyncratic tags. Its
//! calibration is locked by tests that assert the aggregate statistics the
//! paper reports (Figure 3's agreement curves, Figure 4/6/8's agreement
//! spans, the §4.5 CS1-vs-DS comparison).

pub mod faults;
pub mod generate;
pub mod pdc_library;
pub mod profiles;
pub mod roster;
pub mod text;

pub use faults::{
    corrupt_json, drop_group_materials, drop_materials, duplicate_columns, strip_tags,
    zero_columns, JsonFault, MANGLED_CODE,
};
pub use generate::{
    default_corpus, generate, generate_scaled, generate_subset, GeneratedCorpus, DEFAULT_SEED,
};
pub use pdc_library::{pdc_library, PdcMaterial, Source};
pub use profiles::{KuCoverage, TypeProfile};
pub use roster::{CourseSpec, ROSTER};
pub use text::{
    document_for_tags, generate_text_corpus, tag_vocabulary, TextCorpus, TextCorpusConfig,
    BACKGROUND_VOCAB, DEFAULT_TEXT_SEED,
};
