//! A library of PDC learning materials classified against both guidelines.
//!
//! The paper's conclusion names this as future work: *"we would like to
//! classify more of the publicly available PDC materials in the system to
//! help recommend PDC materials for particular courses."* This module is
//! that library: materials in the style of the public repositories the
//! paper reviews (§2.2 — Peachy Parallel Assignments, PDC Unplugged, Nifty)
//! classified against PDC12 topics (what they teach) and CS2013 knowledge
//! units (where they anchor in an early course).
//!
//! Topic references are label substrings resolved against the live
//! ontologies at load time, so every entry is verified to exist.

use anchors_curricula::{cs2013, pdc12, Level, NodeId, Ontology};
use anchors_materials::MaterialKind;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Which public repository style the material comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Source {
    /// Peer-reviewed programming assignments (EduPar/EduHPC style).
    PeachyParallel,
    /// Unplugged activities without a machine.
    PdcUnplugged,
    /// Nifty-style general assignments with a PDC twist.
    Nifty,
}

/// A PDC learning material with dual classification.
#[derive(Debug, Clone)]
pub struct PdcMaterial {
    /// Display name.
    pub name: &'static str,
    /// Pedagogical kind.
    pub kind: MaterialKind,
    /// Repository style.
    pub source: Source,
    /// Languages the material supports (empty = language-free).
    pub languages: &'static [&'static str],
    /// PDC12 topics taught (resolved).
    pub pdc_topics: Vec<NodeId>,
    /// CS2013 knowledge units it anchors at (resolved).
    pub anchors: Vec<NodeId>,
}

struct Entry {
    name: &'static str,
    kind: MaterialKind,
    source: Source,
    languages: &'static [&'static str],
    /// Case-insensitive substrings of PDC12 topic labels.
    pdc: &'static [&'static str],
    /// CS2013 KU codes.
    kus: &'static [&'static str],
}

const ENTRIES: &[Entry] = &[
    Entry {
        name: "Parallel card-sorting race",
        kind: MaterialKind::Lab,
        source: Source::PdcUnplugged,
        languages: &[],
        pdc: &["why and what is parallel", "parallel sorting"],
        kus: &["SDF.FPC", "SDF.AD"],
    },
    Entry {
        name: "Lost-update coin jar (race conditions unplugged)",
        kind: MaterialKind::Lab,
        source: Source::PdcUnplugged,
        languages: &[],
        pdc: &["concurrency defects", "mutual exclusion primitives"],
        kus: &["SDF.FPC", "SDF.FDS"],
    },
    Entry {
        name: "Summing floats in any order",
        kind: MaterialKind::Assignment,
        source: Source::PeachyParallel,
        languages: &["C", "Python"],
        pdc: &["floating-point reduction order", "reduction (map-reduce"],
        kus: &["AR.MLRD", "SDF.FPC"],
    },
    Entry {
        name: "Mandelbrot with a parallel-for",
        kind: MaterialKind::Assignment,
        source: Source::PeachyParallel,
        languages: &["C", "C++"],
        pdc: &["data-parallel constructs", "load balancing"],
        kus: &["SDF.AD", "AL.BA"],
    },
    Entry {
        name: "Image blur: loops to parallel loops",
        kind: MaterialKind::Assignment,
        source: Source::Nifty,
        languages: &["Python", "Java"],
        pdc: &["data-parallel constructs", "speedup measurement"],
        kus: &["SDF.FPC", "SDF.AD"],
    },
    Entry {
        name: "Bank accounts with promises",
        kind: MaterialKind::Assignment,
        source: Source::Nifty,
        languages: &["Java", "JavaScript"],
        pdc: &["futures and promises", "tasks and threads"],
        kus: &["PL.OOP", "PL.EDRP"],
    },
    Entry {
        name: "Chat server with distributed objects",
        kind: MaterialKind::Assignment,
        source: Source::PeachyParallel,
        languages: &["Java"],
        pdc: &[
            "client-server and distributed-object",
            "message-passing programming",
        ],
        kus: &["PL.OOP", "NC.NA"],
    },
    Entry {
        name: "Thread-safe stack lab (ArrayList vs Vector)",
        kind: MaterialKind::Lab,
        source: Source::PeachyParallel,
        languages: &["Java"],
        pdc: &[
            "thread safety of library types",
            "synchronization: critical sections",
        ],
        kus: &["PL.OOP", "SDF.FDS"],
    },
    Entry {
        name: "Two threads, one queue",
        kind: MaterialKind::Lab,
        source: Source::Nifty,
        languages: &["Java", "C++"],
        pdc: &["synchronization: critical sections", "concurrency defects"],
        kus: &["SDF.FDS", "AL.FDSA"],
    },
    Entry {
        name: "Fork-join parallel merge sort",
        kind: MaterialKind::Assignment,
        source: Source::PeachyParallel,
        languages: &["Java", "C"],
        pdc: &["parallel sorting", "divide and conquer as a source"],
        kus: &["AL.FDSA", "SDF.AD"],
    },
    Entry {
        name: "Subset-sum brute force with task spawning",
        kind: MaterialKind::Assignment,
        source: Source::PeachyParallel,
        languages: &["C", "C++"],
        pdc: &["brute-force and exhaustive search", "task/thread spawning"],
        kus: &["AL.AS", "DS.BC"],
    },
    Entry {
        name: "Edit-distance wavefront",
        kind: MaterialKind::Assignment,
        source: Source::PeachyParallel,
        languages: &["C", "Python"],
        pdc: &[
            "dynamic programming: bottom-up wavefront",
            "notions of dependency",
        ],
        kus: &["AL.AS", "AL.BA"],
    },
    Entry {
        name: "List-scheduling simulator",
        kind: MaterialKind::Assignment,
        source: Source::PeachyParallel,
        languages: &["Java", "C++", "Python"],
        pdc: &[
            "list scheduling",
            "topological sort and scheduling",
            "critical path length",
        ],
        kus: &["DS.GT", "AL.FDSA", "SDF.FDS"],
    },
    Entry {
        name: "Build-dependency critical paths",
        kind: MaterialKind::Lab,
        source: Source::Nifty,
        languages: &["Python"],
        pdc: &["directed acyclic graphs as a model", "critical path length"],
        kus: &["DS.GT", "AL.FDSA"],
    },
    Entry {
        name: "MapReduce word count on song lyrics",
        kind: MaterialKind::Assignment,
        source: Source::Nifty,
        languages: &["Python", "Java"],
        pdc: &["reduction (map-reduce", "embarrassingly parallel"],
        kus: &["CN.DIK", "IM.IMC", "SDF.FPC"],
    },
    Entry {
        name: "Earthquake feed parallel aggregation",
        kind: MaterialKind::Assignment,
        source: Source::PeachyParallel,
        languages: &["Java"],
        pdc: &[
            "embarrassingly parallel",
            "speedup measurement",
            "load balancing",
        ],
        kus: &["CN.DIK", "IM.IMC"],
    },
    Entry {
        name: "Amdahl's law, by hand and by plot",
        kind: MaterialKind::Lecture,
        source: Source::PdcUnplugged,
        languages: &[],
        pdc: &[
            "speedup, efficiency, and amdahl",
            "scalability: strong versus weak",
        ],
        kus: &["AL.BA", "SF.EVAL"],
    },
    Entry {
        name: "Parallel BFS over a social graph",
        kind: MaterialKind::Assignment,
        source: Source::PeachyParallel,
        languages: &["C++", "Java"],
        pdc: &[
            "parallel graph algorithms",
            "parallel search over structured",
        ],
        kus: &["DS.GT", "AL.FDSA"],
    },
    Entry {
        name: "Token ring in the classroom",
        kind: MaterialKind::Lab,
        source: Source::PdcUnplugged,
        languages: &[],
        pdc: &[
            "message-passing programming",
            "parallel communication operations",
        ],
        kus: &["NC.INT", "SF.SSM"],
    },
    Entry {
        name: "Matrix multiply: cache blocking and threads",
        kind: MaterialKind::Assignment,
        source: Source::PeachyParallel,
        languages: &["C"],
        pdc: &["parallel matrix computations", "data locality and memory"],
        kus: &["AL.BA", "AR.MSO"],
    },
];

fn resolve_pdc(pdc: &Ontology, labels: &[&str]) -> Vec<NodeId> {
    labels
        .iter()
        .map(|needle| {
            let lower = needle.to_lowercase();
            pdc.nodes()
                .iter()
                .find(|n| n.level == Level::Topic && n.label.to_lowercase().contains(&lower))
                .unwrap_or_else(|| panic!("library references unknown PDC topic {needle:?}"))
                .id
        })
        .collect()
}

fn resolve_kus(cs: &Ontology, codes: &[&str]) -> Vec<NodeId> {
    codes
        .iter()
        .map(|code| {
            cs.by_code(code)
                .unwrap_or_else(|| panic!("library references unknown KU {code:?}"))
        })
        .collect()
}

/// The resolved PDC materials library (memoized per process).
pub fn pdc_library() -> &'static [PdcMaterial] {
    static LIB: OnceLock<Vec<PdcMaterial>> = OnceLock::new();
    LIB.get_or_init(|| {
        let cs = cs2013();
        let pdc = pdc12();
        ENTRIES
            .iter()
            .map(|e| PdcMaterial {
                name: e.name,
                kind: e.kind,
                source: e.source,
                languages: e.languages,
                pdc_topics: resolve_pdc(pdc, e.pdc),
                anchors: resolve_kus(cs, e.kus),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_resolves_fully() {
        let lib = pdc_library();
        assert!(lib.len() >= 18, "a real library, not a stub");
        for m in lib {
            assert!(!m.pdc_topics.is_empty(), "{} teaches nothing", m.name);
            assert!(!m.anchors.is_empty(), "{} anchors nowhere", m.name);
        }
    }

    #[test]
    fn names_unique() {
        let lib = pdc_library();
        let mut names: Vec<&str> = lib.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), lib.len());
    }

    #[test]
    fn unplugged_materials_are_language_free() {
        for m in pdc_library() {
            if m.source == Source::PdcUnplugged {
                assert!(
                    m.languages.is_empty(),
                    "{} is unplugged but lists languages",
                    m.name
                );
            }
        }
    }

    #[test]
    fn sources_all_represented() {
        let lib = pdc_library();
        for s in [Source::PeachyParallel, Source::PdcUnplugged, Source::Nifty] {
            assert!(lib.iter().any(|m| m.source == s), "missing source {s:?}");
        }
    }

    #[test]
    fn anchors_are_knowledge_units() {
        let cs = cs2013();
        for m in pdc_library() {
            for &a in &m.anchors {
                assert_eq!(
                    cs.node(a).level,
                    Level::KnowledgeUnit,
                    "{}: anchor {} is not a KU",
                    m.name,
                    cs.node(a).code
                );
            }
        }
    }
}
