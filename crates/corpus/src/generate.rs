//! Synthetic workshop-classification generator.
//!
//! The paper's raw data — per-material curriculum classifications entered by
//! instructors during the CS Materials workshops — is not public. This
//! generator produces a synthetic corpus with the same *structure*:
//!
//! 1. Each course samples curriculum leaf items from its latent type
//!    mixture ([`crate::roster`]): a leaf of knowledge unit `u` enters the
//!    course with probability `1 − Π_i (1 − w_i · p_i(u))` over mixture
//!    components — the noisy-OR of the paper's "linear combination of a few
//!    types" model.
//! 2. Each course adds a number of *idiosyncratic* tags drawn uniformly
//!    from the whole guideline — instructor quirks, which drive the long
//!    disagreement tail of Figure 3.
//! 3. Course tags are distributed across lectures, assignments, labs, and
//!    assessments (materials), with assessments re-sampling lecture tags so
//!    that alignment analyses have realistic structure.
//!
//! Everything is deterministic in the seed; per-course RNG streams make the
//! corpus stable under roster reordering.

use crate::roster::{CourseSpec, ROSTER};
use anchors_curricula::{cs2013, NodeId, Ontology};
use anchors_materials::{CourseId, CourseLabel, MaterialKind, MaterialStore};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Default corpus seed (the one the figure binaries use).
pub const DEFAULT_SEED: u64 = 20231112; // SC-W 2023 opening day

/// A generated corpus: the store plus the course ids in roster order.
#[derive(Debug, Clone)]
pub struct GeneratedCorpus {
    /// The populated material store.
    pub store: MaterialStore,
    /// Course ids, aligned with [`ROSTER`] order.
    pub courses: Vec<CourseId>,
}

impl GeneratedCorpus {
    /// Courses carrying a label, in roster order.
    pub fn with_label(&self, label: CourseLabel) -> Vec<CourseId> {
        self.store.courses_with_label(label)
    }

    /// The paper's "CS1 or intro programming" group (6 courses).
    pub fn cs1_group(&self) -> Vec<CourseId> {
        self.with_label(CourseLabel::Cs1)
    }

    /// The Data Structures group (5 courses).
    pub fn ds_group(&self) -> Vec<CourseId> {
        self.with_label(CourseLabel::DataStructures)
    }

    /// The §4.6 analysis group: Data Structures plus Algorithms courses.
    pub fn ds_and_algo_group(&self) -> Vec<CourseId> {
        let mut v = self.with_label(CourseLabel::DataStructures);
        for c in self.with_label(CourseLabel::Algorithms) {
            if !v.contains(&c) {
                v.push(c);
            }
        }
        v.sort_unstable();
        v
    }

    /// The PDC group (3 courses).
    pub fn pdc_group(&self) -> Vec<CourseId> {
        self.with_label(CourseLabel::Pdc)
    }

    /// All course ids in roster order.
    pub fn all(&self) -> &[CourseId] {
        &self.courses
    }
}

/// Generate the full 20-course corpus with the default seed.
pub fn default_corpus() -> GeneratedCorpus {
    generate(DEFAULT_SEED)
}

/// Generate the full 20-course corpus.
pub fn generate(seed: u64) -> GeneratedCorpus {
    generate_subset(seed, ROSTER)
}

/// Generate a corpus from a subset of (or alternative) course specs.
pub fn generate_subset(seed: u64, specs: &[CourseSpec]) -> GeneratedCorpus {
    let guideline = cs2013();
    let mut store = MaterialStore::new();
    let mut courses = Vec::with_capacity(specs.len());
    for (ci, spec) in specs.iter().enumerate() {
        let cid = store.add_course(
            spec.name,
            spec.institution,
            spec.instructor,
            spec.labels.to_vec(),
            Some(spec.language.to_string()),
        );
        // Independent, stable RNG stream per course.
        let mut rng =
            StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(ci as u64 + 1)));
        let tags = sample_course_tags(guideline, spec, &mut rng);
        distribute_materials(&mut store, guideline, cid, spec, &tags, &mut rng);
        courses.push(cid);
    }
    #[cfg(debug_assertions)]
    if let Err(e) = store.validate(guideline) {
        panic!("generated corpus violates store invariants: {e}");
    }
    GeneratedCorpus { store, courses }
}

/// Probability boost for canonical unit items (clamped to 1).
const CANONICAL_BOOST: f64 = 1.30;
/// Probability factor for the long tail of a unit.
const TAIL_FACTOR: f64 = 0.30;
/// Fraction of a unit's topics that are canonical.
const CANONICAL_TOPIC_FRACTION: f64 = 0.60;
/// Fraction of a unit's outcomes that are canonical.
const CANONICAL_OUTCOME_FRACTION: f64 = 0.50;

/// Leaves of a knowledge unit with a canonicalness flag: guidelines list
/// the defining topics/outcomes of a unit first, so the opening
/// `CANONICAL_*_FRACTION` of each group is marked canonical.
fn leaves_with_canonicalness(guideline: &Ontology, ku: NodeId) -> Vec<(NodeId, bool)> {
    use anchors_curricula::Level;
    let mut out = Vec::new();
    for level in [Level::Topic, Level::LearningOutcome] {
        let group: Vec<NodeId> = guideline
            .node(ku)
            .children
            .iter()
            .copied()
            .filter(|&c| guideline.node(c).level == level)
            .collect();
        let frac = if level == Level::Topic {
            CANONICAL_TOPIC_FRACTION
        } else {
            CANONICAL_OUTCOME_FRACTION
        };
        let cut = (group.len() as f64 * frac).ceil() as usize;
        for (i, leaf) in group.into_iter().enumerate() {
            out.push((leaf, i < cut));
        }
    }
    out
}

/// Sample the tag set of one course from its mixture (noisy-OR) plus
/// idiosyncratic uniform tags.
fn sample_course_tags(guideline: &Ontology, spec: &CourseSpec, rng: &mut StdRng) -> Vec<NodeId> {
    let mut tags = BTreeSet::new();
    // Mixture part: walk each covered KU once, accumulating the noisy-OR
    // inclusion probability per leaf.
    let mut ku_prob: std::collections::BTreeMap<&str, f64> = std::collections::BTreeMap::new();
    for (profile, weight) in spec.mixture {
        for cov in profile.coverages {
            let q = ku_prob.entry(cov.ku).or_insert(0.0);
            let p = (weight * cov.p).clamp(0.0, 1.0);
            *q = 1.0 - (1.0 - *q) * (1.0 - p);
        }
    }
    for (ku_code, p) in &ku_prob {
        let Some(ku) = guideline.by_code(ku_code) else {
            panic!("profile references unknown KU {ku_code}");
        };
        for (leaf, canonical) in leaves_with_canonicalness(guideline, ku) {
            // Canonical items (the opening topics/outcomes of a unit — "the
            // most basic agreement" of §4.3) are near-certain once a course
            // covers the unit at all; the long tail of a unit is what
            // individual instructors pick differently.
            let p_item = if canonical {
                (p * CANONICAL_BOOST).min(1.0)
            } else {
                p * TAIL_FACTOR
            };
            if rng.gen::<f64>() < p_item {
                tags.insert(leaf);
            }
        }
    }
    // Idiosyncratic part: expected `spec.idiosyncrasy` uniform leaves.
    let all_leaves = guideline.leaf_items();
    let n_idio = {
        // Deterministic Poisson-ish count: floor + Bernoulli remainder.
        let base = spec.idiosyncrasy.floor() as usize;
        let rem = spec.idiosyncrasy - base as f64;
        base + usize::from(rng.gen::<f64>() < rem)
    };
    for _ in 0..n_idio {
        let pick = all_leaves[rng.gen_range(0..all_leaves.len())];
        tags.insert(pick);
    }
    tags.into_iter().collect()
}

/// Split a course's tags into a realistic set of materials.
fn distribute_materials(
    store: &mut MaterialStore,
    guideline: &Ontology,
    cid: CourseId,
    spec: &CourseSpec,
    tags: &[NodeId],
    rng: &mut StdRng,
) {
    let mut shuffled: Vec<NodeId> = tags.to_vec();
    shuffled.shuffle(rng);

    // Lectures: cover the whole tag pool in chunks of 2–6 (a weekly topic).
    let mut week = 1;
    let mut i = 0;
    while i < shuffled.len() {
        let chunk = rng.gen_range(2..=6).min(shuffled.len() - i);
        let chunk_tags: Vec<NodeId> = shuffled[i..i + chunk].to_vec();
        let title = lecture_title(guideline, &chunk_tags, week);
        store.add_material(
            cid,
            title,
            MaterialKind::Lecture,
            spec.instructor,
            Some(spec.language.to_string()),
            vec![],
            chunk_tags,
        );
        i += chunk;
        week += 1;
    }

    // Assignments: ~1 per 3 lectures, each re-sampling 3–8 covered tags.
    let n_assign = (week / 3).max(2);
    for a in 0..n_assign {
        let k = rng.gen_range(3..=8).min(tags.len().max(1));
        let mut pick: Vec<NodeId> = shuffled.choose_multiple(rng, k).copied().collect();
        pick.sort_unstable();
        pick.dedup();
        let datasets = if spec.mixture.iter().any(|(p, _)| p.name == "ds-applied") {
            vec![ASSIGNMENT_DATASETS[a % ASSIGNMENT_DATASETS.len()].to_string()]
        } else {
            vec![]
        };
        store.add_material(
            cid,
            format!("Assignment {}", a + 1),
            if a % 2 == 0 {
                MaterialKind::Assignment
            } else {
                MaterialKind::Lab
            },
            spec.instructor,
            Some(spec.language.to_string()),
            datasets,
            pick,
        );
    }

    // Assessments: midterm + final, each re-sampling a broad slice.
    for (name, frac) in [("Midterm", 0.35), ("Final exam", 0.55)] {
        let k = ((tags.len() as f64 * frac) as usize)
            .max(1)
            .min(tags.len().max(1));
        let mut pick: Vec<NodeId> = shuffled.choose_multiple(rng, k).copied().collect();
        pick.sort_unstable();
        pick.dedup();
        store.add_material(
            cid,
            name,
            MaterialKind::Assessment,
            spec.instructor,
            None,
            vec![],
            pick,
        );
    }
}

/// Real-data dataset names used by the applied (BRIDGES-style) courses.
const ASSIGNMENT_DATASETS: &[&str] = &[
    "earthquakes",
    "imdb-actors",
    "osm-city-maps",
    "song-lyrics",
    "wildfires",
];

fn lecture_title(guideline: &Ontology, tags: &[NodeId], week: usize) -> String {
    // Name the lecture after the KU of its first tag.
    let ku = tags
        .first()
        .and_then(|&t| guideline.knowledge_unit_of(t))
        .map(|ku| guideline.node(ku).label.clone())
        .unwrap_or_else(|| "Topics".to_string());
    format!("Week {week}: {ku}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_materials::CourseMatrix;

    #[test]
    fn generates_twenty_valid_courses() {
        let c = default_corpus();
        assert_eq!(c.courses.len(), 20);
        c.store.validate(cs2013()).expect("valid store");
        assert!(c.store.material_count() > 200, "materials across courses");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(7);
        let b = generate(7);
        assert_eq!(a.store.material_count(), b.store.material_count());
        for (x, y) in a.store.materials().iter().zip(b.store.materials()) {
            assert_eq!(x.tags, y.tags);
            assert_eq!(x.name, y.name);
        }
        let c = generate(8);
        let differs = a
            .store
            .materials()
            .iter()
            .zip(c.store.materials())
            .any(|(x, y)| x.tags != y.tags);
        assert!(differs, "different seeds produce different corpora");
    }

    #[test]
    fn groups_have_paper_sizes() {
        let c = default_corpus();
        assert_eq!(c.cs1_group().len(), 6);
        assert_eq!(c.ds_group().len(), 5);
        assert_eq!(c.pdc_group().len(), 3);
        assert_eq!(c.ds_and_algo_group().len(), 7, "5 DS + 2 Algo");
    }

    #[test]
    fn course_sizes_plausible() {
        let c = default_corpus();
        for &cid in c.all() {
            let n = c.store.course_tags(cid).len();
            assert!(
                (25..=160).contains(&n),
                "course {} has {} tags",
                c.store.course(cid).name,
                n
            );
        }
    }

    /// Figure 3a calibration: CS1 courses map to 200+ tags in total, ~50 in
    /// two or more courses, ~25 in three or more.
    #[test]
    fn cs1_agreement_shape_matches_paper() {
        let c = default_corpus();
        let cm = CourseMatrix::build(&c.store, &c.cs1_group());
        let total = cm.n_tags();
        assert!(
            (170..=300).contains(&total),
            "paper: 'map in total to over 200 curriculum tags', got {total}"
        );
        // Paper: "only 50 tags appear in 2 or more courses". The synthetic
        // corpus runs somewhat hotter here (~80) while matching the rest of
        // the curve; EXPERIMENTS.md records the deviation.
        let ge2 = cm.tags_with_agreement(2).len();
        assert!(
            (35..=95).contains(&ge2),
            "CS1 2-course agreement out of calibration band, got {ge2}"
        );
        let ge3 = cm.tags_with_agreement(3).len();
        assert!(
            (15..=40).contains(&ge3),
            "paper: 'only about 25 appear in 3 or more courses', got {ge3}"
        );
        let ge4 = cm.tags_with_agreement(4).len();
        assert!(
            (7..=20).contains(&ge4),
            "paper: '13 curriculum mappings appear in 4 courses or more', got {ge4}"
        );
    }

    /// Figure 4c calibration: agreement@4 collapses into SDF, concentrated
    /// in Fundamental Programming Concepts.
    #[test]
    fn cs1_agreement_at_4_is_sdf_fpc() {
        let g = cs2013();
        let c = default_corpus();
        let cm = CourseMatrix::build(&c.store, &c.cs1_group());
        let agreed = cm.tags_with_agreement(4);
        assert!(!agreed.is_empty());
        let sdf = g.by_code("SDF").unwrap();
        let fpc = g.by_code("SDF.FPC").unwrap();
        let in_sdf = agreed
            .iter()
            .filter(|&&(t, _)| g.is_ancestor(sdf, t))
            .count();
        let in_fpc = agreed
            .iter()
            .filter(|&&(t, _)| g.is_ancestor(fpc, t))
            .count();
        assert!(
            in_sdf * 10 >= agreed.len() * 9,
            "agreement@4 must fall (almost) entirely within SDF: {in_sdf}/{}",
            agreed.len()
        );
        assert!(
            in_fpc * 10 >= agreed.len() * 7,
            "most agreement@4 in Fundamental Programming Concepts: {in_fpc}/{}",
            agreed.len()
        );
    }

    /// Figure 3b calibration: DS courses agree much more: ~250 tags total,
    /// ~120 in 2+, ~50 in 4+.
    #[test]
    fn ds_agreement_shape_matches_paper() {
        let c = default_corpus();
        let cm = CourseMatrix::build(&c.store, &c.ds_group());
        let total = cm.n_tags();
        assert!(
            (190..=320).contains(&total),
            "paper: 'about 250 curriculum tags', got {total}"
        );
        let ge2 = cm.tags_with_agreement(2).len();
        assert!(
            (90..=160).contains(&ge2),
            "paper: 'about 120 appear in two or more', got {ge2}"
        );
        let ge4 = cm.tags_with_agreement(4).len();
        assert!(
            (35..=75).contains(&ge4),
            "paper: '50 appear in more than 3 courses', got {ge4}"
        );
    }

    /// DS agreement is stronger than CS1 agreement (the paper's §4.5
    /// headline comparison).
    #[test]
    fn ds_agrees_more_than_cs1() {
        let c = default_corpus();
        let cs1 = CourseMatrix::build(&c.store, &c.cs1_group());
        let ds = CourseMatrix::build(&c.store, &c.ds_group());
        // Compare the fraction of tags reaching 2-course agreement, to
        // control for group size.
        let f_cs1 = cs1.tags_with_agreement(2).len() as f64 / cs1.n_tags() as f64;
        let f_ds = ds.tags_with_agreement(2).len() as f64 / ds.n_tags() as f64;
        assert!(
            f_ds > f_cs1 * 1.25,
            "DS agreement ({f_ds:.2}) must clearly exceed CS1 ({f_cs1:.2})"
        );
    }

    /// §4.7: PDC pairwise agreement outside the PDC knowledge area reduces
    /// to CS1/DS concepts (graphs, recursion/divide-and-conquer, Big-Oh).
    #[test]
    fn pdc_agreement_outside_pd_is_small_and_core() {
        let g = cs2013();
        let c = default_corpus();
        let cm = CourseMatrix::build(&c.store, &c.pdc_group());
        let agreed = cm.tags_with_agreement(2);
        assert!(!agreed.is_empty());
        let pd = g.by_code("PD").unwrap();
        let inside = agreed
            .iter()
            .filter(|&&(t, _)| g.is_ancestor(pd, t))
            .count();
        assert!(
            inside * 2 > agreed.len(),
            "most PDC agreement is in the PD knowledge area: {inside}/{}",
            agreed.len()
        );
        let outside = agreed.len() - inside;
        assert!(
            outside > 0 && outside <= 30,
            "a small non-PDC agreed set (got {outside})"
        );
    }

    #[test]
    fn applied_courses_use_datasets() {
        let c = default_corpus();
        let uncc = c
            .store
            .courses()
            .iter()
            .find(|x| x.name.contains("2214 KRS"))
            .unwrap();
        let has_dataset = uncc
            .materials
            .iter()
            .any(|&m| !c.store.material(m).datasets.is_empty());
        assert!(has_dataset, "BRIDGES-style DS course uses real datasets");
    }

    #[test]
    fn material_kinds_all_present() {
        let c = default_corpus();
        for kind in MaterialKind::ALL {
            if kind == MaterialKind::Reading {
                continue; // generator does not synthesize readings
            }
            assert!(
                c.store.materials().iter().any(|m| m.kind == kind),
                "missing kind {kind:?}"
            );
        }
    }

    #[test]
    fn subset_generation_is_stable_under_roster_extension() {
        // Generating only the first 3 specs yields the same tags as those
        // courses get in the full run (per-course RNG streams).
        let full = generate(42);
        let part = generate_subset(42, &ROSTER[..3]);
        for i in 0..3 {
            assert_eq!(
                full.store.course_tags(full.courses[i]),
                part.store.course_tags(part.courses[i])
            );
        }
    }
}

/// Generate a synthetic corpus of `n` courses for scaling studies by
/// cycling the roster archetypes with fresh per-course randomness. Course
/// names are suffixed with the replica index. The 20-course default corpus
/// is `generate(seed)`; this function exists for the benchmark harness,
/// which factors corpora far larger than the paper's.
pub fn generate_scaled(n: usize, seed: u64) -> GeneratedCorpus {
    let guideline = cs2013();
    let mut store = MaterialStore::new();
    let mut courses = Vec::with_capacity(n);
    for ci in 0..n {
        let spec = &ROSTER[ci % ROSTER.len()];
        let cid = store.add_course(
            format!("{} [replica {}]", spec.name, ci / ROSTER.len()),
            spec.institution,
            spec.instructor,
            spec.labels.to_vec(),
            Some(spec.language.to_string()),
        );
        let mut rng =
            StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(ci as u64 + 1)));
        let tags = sample_course_tags(guideline, spec, &mut rng);
        distribute_materials(&mut store, guideline, cid, spec, &tags, &mut rng);
        courses.push(cid);
    }
    GeneratedCorpus { store, courses }
}

#[cfg(test)]
mod scaled_tests {
    use super::*;

    #[test]
    fn scaled_corpus_has_requested_size() {
        let c = generate_scaled(45, 7);
        assert_eq!(c.courses.len(), 45);
        c.store.validate(cs2013()).expect("valid");
        // Replicas of the same archetype are distinct samples.
        let t0 = c.store.course_tags(c.courses[0]);
        let t20 = c.store.course_tags(c.courses[20]);
        assert_ne!(t0, t20, "replicas must differ");
    }

    #[test]
    fn scaled_matches_default_for_first_twenty() {
        let scaled = generate_scaled(20, DEFAULT_SEED);
        let plain = generate(DEFAULT_SEED);
        for i in 0..20 {
            assert_eq!(
                scaled.store.course_tags(scaled.courses[i]),
                plain.store.course_tags(plain.courses[i])
            );
        }
    }
}
