//! Seeded synthetic *text* corpus: raw documents with known tag labels.
//!
//! The paper's corpus substitutes curated course↔tag assignments for the
//! private workshop data; this module substitutes one level further down
//! and fabricates the raw text those assignments would have been read
//! off of. Each ontology tag gets a small distinctive vocabulary —
//! the words of its human-readable label plus synthetic marker tokens
//! derived from its dotted code — and documents are sampled as a mix of
//! tag-vocabulary words and a shared background vocabulary of generic
//! course-administration words. The result is a corpus where tag
//! identity is *learnable but not trivial*: background words dominate
//! roughly a third of every document, label words are shared between
//! sibling topics, and multi-tag documents interleave vocabularies.
//!
//! Everything is seeded and deterministic, in the same style as
//! [`crate::generate`]: one base seed fans out per document through a
//! golden-ratio multiply, so corpora are reproducible and individual
//! documents can be regenerated in isolation (which is what the
//! round-trip proptests in `anchors-text` do).

use anchors_curricula::cs2013;
use anchors_text::TextExample;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Default base seed for text corpora (distinct from
/// [`crate::generate::DEFAULT_SEED`] so the two synthetic layers never
/// accidentally correlate).
pub const DEFAULT_TEXT_SEED: u64 = 20231107;

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Generic course-administration words every document draws from.
/// Deliberately tag-free: a classifier that keys on these learns
/// nothing.
pub const BACKGROUND_VOCAB: &[&str] = &[
    "course",
    "syllabus",
    "week",
    "assignment",
    "lecture",
    "exam",
    "students",
    "grade",
    "homework",
    "project",
    "reading",
    "chapter",
    "quiz",
    "office",
    "hours",
    "semester",
    "credit",
    "policy",
    "late",
    "submission",
    "group",
    "team",
    "slides",
    "notes",
    "lab",
    "tutorial",
    "review",
    "midterm",
    "final",
    "topics",
    "schedule",
    "introduction",
    "overview",
    "materials",
    "textbook",
    "instructor",
    "email",
    "campus",
    "online",
    "due",
];

/// Shape of a generated text corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TextCorpusConfig {
    /// Number of CS2013 leaf tags to draw the tag space from.
    pub tags: usize,
    /// Documents whose *primary* tag is each tag.
    pub docs_per_tag: usize,
    /// Probability a document carries one extra secondary tag.
    pub extra_tag_prob: f64,
    /// Content words per document.
    pub words: usize,
    /// Fraction of words drawn from [`BACKGROUND_VOCAB`] instead of the
    /// document's tag vocabularies.
    pub background_ratio: f64,
    /// Base seed.
    pub seed: u64,
}

impl Default for TextCorpusConfig {
    fn default() -> Self {
        TextCorpusConfig {
            tags: 16,
            docs_per_tag: 12,
            extra_tag_prob: 0.3,
            words: 60,
            background_ratio: 0.35,
            seed: DEFAULT_TEXT_SEED,
        }
    }
}

/// A generated corpus: the tag space and the labeled documents.
#[derive(Debug, Clone, PartialEq)]
pub struct TextCorpus {
    /// Dotted codes of the tag space, in ontology leaf order.
    pub tag_codes: Vec<String>,
    /// Labeled documents, primary-tag-major order.
    pub examples: Vec<TextExample>,
}

/// The distinctive vocabulary of one tag: the words of its CS2013 label
/// (when the code resolves) plus synthetic marker tokens derived from
/// the code itself. Marker tokens make every tag separable even when
/// sibling topics share label words; label words keep the text looking
/// like prose about the topic rather than pure noise.
pub fn tag_vocabulary(code: &str) -> Vec<String> {
    let mut vocab: Vec<String> = Vec::new();
    let cs = cs2013();
    if let Some(id) = cs.by_code(code) {
        for word in cs.node(id).label.split(|c: char| !c.is_alphanumeric()) {
            let w = word.to_lowercase();
            if w.chars().count() >= 3 {
                vocab.push(w);
            }
        }
    }
    let stem: String = code
        .chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(|c| c.to_lowercase())
        .collect();
    for k in 0..6 {
        vocab.push(format!("{stem}mark{k}"));
    }
    vocab
}

/// Generate one document for a set of tags. Deterministic in `seed`;
/// the text interleaves background words with words drawn uniformly
/// from the union's per-tag vocabularies, with light punctuation so the
/// output resembles syllabus prose.
pub fn document_for_tags(
    tag_codes: &[String],
    words: usize,
    background_ratio: f64,
    seed: u64,
) -> String {
    let vocabs: Vec<Vec<String>> = tag_codes.iter().map(|c| tag_vocabulary(c)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    for w in 0..words.max(1) {
        if w > 0 {
            out.push_str(if w % 12 == 0 { ". " } else { " " });
        }
        if vocabs.is_empty() || rng.gen_bool(background_ratio) {
            out.push_str(BACKGROUND_VOCAB[rng.gen_range(0..BACKGROUND_VOCAB.len())]);
        } else {
            let vocab = &vocabs[rng.gen_range(0..vocabs.len())];
            out.push_str(&vocab[rng.gen_range(0..vocab.len())]);
        }
    }
    out.push('.');
    out
}

/// Generate a labeled corpus over the first `cfg.tags` CS2013 leaf tags.
///
/// Every tag is the primary label of exactly `cfg.docs_per_tag`
/// documents; with probability `cfg.extra_tag_prob` a document also
/// carries one secondary tag, so the corpus exercises genuine multi-label
/// classification. Panics if `cfg.tags` exceeds the ontology's leaf
/// count or is zero — corpus shape is programmer input, not runtime data.
pub fn generate_text_corpus(cfg: &TextCorpusConfig) -> TextCorpus {
    let cs = cs2013();
    let leaves = cs.leaf_items();
    assert!(
        cfg.tags > 0 && cfg.tags <= leaves.len(),
        "tags {} outside 1..={}",
        cfg.tags,
        leaves.len()
    );
    let tag_codes: Vec<String> = leaves
        .into_iter()
        .take(cfg.tags)
        .map(|id| cs.node(id).code.clone())
        .collect();
    let mut examples = Vec::with_capacity(cfg.tags * cfg.docs_per_tag);
    for (t, code) in tag_codes.iter().enumerate() {
        for d in 0..cfg.docs_per_tag {
            let doc_index = (t * cfg.docs_per_tag + d) as u64;
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ GOLDEN.wrapping_mul(doc_index + 1));
            let mut tags = vec![code.clone()];
            if cfg.tags > 1 && rng.gen_bool(cfg.extra_tag_prob) {
                let extra = (t + 1 + rng.gen_range(0..cfg.tags - 1)) % cfg.tags;
                tags.push(tag_codes[extra].clone());
            }
            let text = document_for_tags(
                &tags,
                cfg.words,
                cfg.background_ratio,
                cfg.seed ^ GOLDEN.wrapping_mul(doc_index + 1) ^ 0xD0C5,
            );
            examples.push(TextExample {
                text,
                tag_codes: tags,
            });
        }
    }
    TextCorpus {
        tag_codes,
        examples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_well_shaped() {
        let cfg = TextCorpusConfig {
            tags: 6,
            docs_per_tag: 3,
            ..TextCorpusConfig::default()
        };
        let a = generate_text_corpus(&cfg);
        let b = generate_text_corpus(&cfg);
        assert_eq!(a, b, "same seed, same corpus");
        assert_eq!(a.tag_codes.len(), 6);
        assert_eq!(a.examples.len(), 18);
        for ex in &a.examples {
            assert!(!ex.text.is_empty());
            assert!(!ex.tag_codes.is_empty() && ex.tag_codes.len() <= 2);
            for code in &ex.tag_codes {
                assert!(a.tag_codes.contains(code), "{code} in tag space");
            }
        }
        let other = generate_text_corpus(&TextCorpusConfig { seed: 1, ..cfg });
        assert_ne!(a.examples[0].text, other.examples[0].text);
    }

    #[test]
    fn documents_carry_their_tags_vocabulary() {
        let cfg = TextCorpusConfig {
            tags: 4,
            docs_per_tag: 2,
            ..TextCorpusConfig::default()
        };
        let corpus = generate_text_corpus(&cfg);
        for ex in &corpus.examples {
            let marked = ex.tag_codes.iter().any(|code| {
                tag_vocabulary(code)
                    .iter()
                    .any(|w| ex.text.contains(w.as_str()))
            });
            assert!(marked, "no tag vocabulary in {:?}", ex.text);
        }
    }

    #[test]
    fn vocabularies_are_distinct_across_tags() {
        let a = tag_vocabulary("PD.par.t1");
        let b = tag_vocabulary("PD.par.t2");
        assert!(a.iter().any(|w| !b.contains(w)), "marker tokens differ");
        assert!(!tag_vocabulary("NOPE.xx").is_empty(), "code-only fallback");
    }

    #[test]
    fn document_for_tags_is_seed_stable() {
        let tags = vec!["PD.par.t1".to_string()];
        assert_eq!(
            document_for_tags(&tags, 30, 0.3, 9),
            document_for_tags(&tags, 30, 0.3, 9)
        );
        assert_ne!(
            document_for_tags(&tags, 30, 0.3, 9),
            document_for_tags(&tags, 30, 0.3, 10)
        );
        // Zero tags still yields background-only text.
        assert!(!document_for_tags(&[], 10, 0.5, 3).is_empty());
    }
}
