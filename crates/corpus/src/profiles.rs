//! Latent course-type profiles used by the synthetic workshop generator.
//!
//! The generative model mirrors the paper's own modeling assumption (§4.1):
//! a course is approximately a *non-negative linear combination of a few
//! types*, each type being a distribution over curriculum-guideline entries.
//! ("the parallel computing course of one of the authors can briefly be
//! expressed as 20% theory, 40% shared memory programming, and 40%
//! distributed memory programming.")
//!
//! Each profile lists knowledge units of the CS2013 ontology with a coverage
//! probability: when a course draws on the profile with weight `w`, each
//! leaf item of the unit enters the course with probability `w · p`.
//! Profiles are calibrated so the corpus statistics reported in the paper
//! (Figure 3's agreement curves, Figure 4/6's agreement spans) are
//! reproduced in expectation — see `crate::generate` tests.

/// Coverage of one knowledge unit within a profile.
#[derive(Debug, Clone, Copy)]
pub struct KuCoverage {
    /// Dotted KU code in the CS2013 ontology (e.g. `"SDF.FPC"`).
    pub ku: &'static str,
    /// Probability that a leaf of the unit is covered when the profile has
    /// weight 1.
    pub p: f64,
}

const fn c(ku: &'static str, p: f64) -> KuCoverage {
    KuCoverage { ku, p }
}

/// A latent course type.
#[derive(Debug, Clone, Copy)]
pub struct TypeProfile {
    /// Profile name (used in docs/tests, not in generated data).
    pub name: &'static str,
    /// Knowledge-unit coverages.
    pub coverages: &'static [KuCoverage],
}

/// CS1 flavor: imperative programming with data representation (the
/// paper's CS1 **type 2** — Kerney, Bourke).
pub static CS1_IMPERATIVE: TypeProfile = TypeProfile {
    name: "cs1-imperative",
    coverages: &[c("SDF.FPC", 0.92), c("SDF.AD", 0.35)],
};

/// CS1 secondary emphasis: machine-level data representation and systems
/// flavor (C-based courses; carries the AR.MLRD topics §5.2 singles out
/// for the reduction-ordering anchor).
pub static CS1_SYSTEMS: TypeProfile = TypeProfile {
    name: "cs1-systems",
    coverages: &[
        c("AR.MLRD", 0.75),
        c("AR.ALMO", 0.20),
        c("IAS.DP", 0.40),
        c("SDF.DM", 0.35),
    ],
};

/// CS1 secondary emphasis: testing and program correctness.
pub static CS1_TESTING: TypeProfile = TypeProfile {
    name: "cs1-testing",
    coverages: &[c("SDF.DM", 0.70), c("SE.SC", 0.35), c("SE.SVV", 0.20)],
};

/// CS1 secondary emphasis: data-centric intro (Python courses reading
/// datasets).
pub static CS1_DATA: TypeProfile = TypeProfile {
    name: "cs1-data",
    coverages: &[c("CN.DIK", 0.50), c("IM.IMC", 0.35), c("CN.IV", 0.25)],
};

/// CS1 secondary emphasis: functional constructs (Python/first-class
/// functions).
pub static CS1_FUNCTIONAL: TypeProfile = TypeProfile {
    name: "cs1-functional",
    coverages: &[c("PL.FP", 0.55), c("PL.BTS", 0.30)],
};

/// CS1 flavor: algorithmic thinking / data structures (the paper's CS1
/// **type 1** — Ahmed; Toups partially).
pub static CS1_ALGO: TypeProfile = TypeProfile {
    name: "cs1-algorithmic",
    coverages: &[
        c("SDF.FPC", 0.50),
        c("SDF.AD", 0.60),
        c("SDF.FDS", 0.70),
        c("AL.BA", 0.70),
        c("AL.AS", 0.45),
        c("AL.FDSA", 0.60),
        c("DS.GT", 0.45),
        c("DS.PT", 0.25),
    ],
};

/// CS1 flavor: object-oriented programming (the paper's CS1 **type 3** —
/// Singh, taught in Java).
pub static CS1_OOP: TypeProfile = TypeProfile {
    name: "cs1-oop",
    coverages: &[
        c("SDF.FPC", 0.72),
        c("PL.OOP", 0.85),
        c("PL.BTS", 0.55),
        c("PL.EDRP", 0.30),
        c("SDF.DM", 0.35),
        c("SE.SD", 0.25),
    ],
};

/// The shared core every Data Structures course covers (§4.5: Big-Oh,
/// linear structures, hash tables/BSTs/graphs, traversals/recursion,
/// searching and sorting).
pub static DS_CORE: TypeProfile = TypeProfile {
    name: "ds-core",
    coverages: &[
        c("AL.BA", 0.85),
        c("AL.FDSA", 0.85),
        c("SDF.FDS", 0.85),
        c("SDF.AD", 0.60),
        c("DS.GT", 0.75),
        c("DS.SRF", 0.35),
    ],
};

/// DS flavor: problem-solving with datasets, APIs, and visualization (the
/// paper's DS **type 1** — both UNCC 2214 sections; these use real-data
/// assignments).
pub static DS_APPLIED: TypeProfile = TypeProfile {
    name: "ds-applied",
    coverages: &[
        c("CN.DIK", 0.85),
        c("CN.IV", 0.70),
        c("CN.IMS", 0.40),
        c("CN.MS", 0.25),
        c("IM.IMC", 0.70),
        c("IM.IDX", 0.30),
        c("SDF.DM", 0.40),
    ],
};

/// DS flavor: object-oriented programming emphasis (the paper's DS
/// **type 2** — VCU Duke's "Data Structures and Object-oriented
/// Programming").
pub static DS_OOP: TypeProfile = TypeProfile {
    name: "ds-oop",
    coverages: &[
        c("PL.OOP", 0.90),
        c("PL.BTS", 0.60),
        c("PL.EDRP", 0.30),
        c("SDF.DM", 0.45),
        c("SE.SD", 0.45),
        c("SE.SC", 0.35),
    ],
};

/// DS flavor: combinatorial algorithms (the paper's DS **type 3** — the
/// Algorithms courses plus BSC Wagner: greedy, dynamic programming,
/// counting, enumerating, sets).
pub static DS_COMBINATORIAL: TypeProfile = TypeProfile {
    name: "ds-combinatorial",
    coverages: &[
        c("AL.AS", 0.85),
        c("AL.BACC", 0.45),
        c("AL.ACC", 0.20),
        c("AL.ADSAA", 0.35),
        c("DS.BC", 0.65),
        c("DS.SRF", 0.55),
        c("DS.PT", 0.45),
        c("DS.DP", 0.35),
    ],
};

/// Software engineering course profile.
pub static SOFTENG: TypeProfile = TypeProfile {
    name: "softeng",
    coverages: &[
        c("SE.SP", 0.80),
        c("SE.SPM", 0.75),
        c("SE.TE", 0.70),
        c("SE.RE", 0.75),
        c("SE.SD", 0.80),
        c("SE.SC", 0.60),
        c("SE.SVV", 0.75),
        c("SE.SEV", 0.45),
        c("SDF.DM", 0.50),
        c("SP.PC", 0.40),
        c("SP.PE", 0.30),
        c("HCI.F", 0.25),
        c("PBD.WEB", 0.30),
    ],
};

/// Parallel and distributed computing course profile. The non-PDC entries
/// (directed graphs, recursion/divide-and-conquer, Big-Oh) are exactly the
/// CS1/DS concepts §4.7 finds PDC courses agreeing on.
pub static PDC: TypeProfile = TypeProfile {
    name: "pdc",
    coverages: &[
        c("PD.PF", 0.90),
        c("PD.PDC", 0.85),
        c("PD.CC", 0.80),
        c("PD.PAAP", 0.80),
        c("PD.PA", 0.70),
        c("PD.PP", 0.55),
        c("PD.DS", 0.40),
        c("PD.CLD", 0.25),
        c("PD.FMS", 0.30),
        c("SF.PAR", 0.55),
        c("SF.EVAL", 0.50),
        c("OS.CON", 0.45),
        c("AR.MAA", 0.40),
        c("AL.BA", 0.35),
        c("SDF.AD", 0.30),
        c("DS.GT", 0.30),
        c("PL.CP", 0.35),
    ],
};

/// Standalone object-oriented design/programming course (UNCC ITCS 3112).
pub static OOP_COURSE: TypeProfile = TypeProfile {
    name: "oop-course",
    coverages: &[
        c("PL.OOP", 0.90),
        c("PL.BTS", 0.60),
        c("PL.EDRP", 0.45),
        c("SE.SD", 0.60),
        c("SE.SC", 0.40),
        c("SE.SVV", 0.30),
        c("SDF.DM", 0.40),
        c("HCI.PIS", 0.25),
    ],
};

/// CS2 profile: a bridge between CS1 and Data Structures.
pub static CS2: TypeProfile = TypeProfile {
    name: "cs2",
    coverages: &[
        c("SDF.FPC", 0.55),
        c("SDF.FDS", 0.75),
        c("SDF.AD", 0.55),
        c("SDF.DM", 0.40),
        c("AL.BA", 0.45),
        c("AL.FDSA", 0.40),
        c("PL.OOP", 0.45),
    ],
};

/// Computer networking course profile (UTSA Bopana).
pub static NETWORK: TypeProfile = TypeProfile {
    name: "network",
    coverages: &[
        c("NC.INT", 0.85),
        c("NC.NA", 0.80),
        c("NC.RDD", 0.70),
        c("NC.RF", 0.65),
        c("OS.OV", 0.25),
        c("IAS.TA", 0.25),
        c("SF.RR", 0.30),
    ],
};

/// All profiles (for integrity tests).
pub static ALL_PROFILES: &[&TypeProfile] = &[
    &CS1_IMPERATIVE,
    &CS1_SYSTEMS,
    &CS1_TESTING,
    &CS1_DATA,
    &CS1_FUNCTIONAL,
    &CS1_ALGO,
    &CS1_OOP,
    &DS_CORE,
    &DS_APPLIED,
    &DS_OOP,
    &DS_COMBINATORIAL,
    &SOFTENG,
    &PDC,
    &OOP_COURSE,
    &CS2,
    &NETWORK,
];

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_curricula::cs2013;

    #[test]
    fn probabilities_in_unit_interval() {
        for p in ALL_PROFILES {
            for cov in p.coverages {
                assert!(
                    (0.0..=1.0).contains(&cov.p),
                    "{}: {} has p = {}",
                    p.name,
                    cov.ku,
                    cov.p
                );
            }
        }
    }

    #[test]
    fn ku_codes_resolve_in_cs2013_except_known_placeholders() {
        let g = cs2013();
        for p in ALL_PROFILES {
            for cov in p.coverages {
                assert!(
                    g.by_code(cov.ku).is_some(),
                    "{}: unknown KU {}",
                    p.name,
                    cov.ku
                );
            }
        }
    }

    #[test]
    fn profile_names_unique() {
        let mut names: Vec<&str> = ALL_PROFILES.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_PROFILES.len());
    }

    #[test]
    fn cs1_flavors_are_distinct() {
        // The OOP flavor must not cover algorithms; the algo flavor must.
        assert!(CS1_OOP.coverages.iter().all(|c| !c.ku.starts_with("AL.")));
        assert!(CS1_ALGO.coverages.iter().any(|c| c.ku.starts_with("AL.")));
        // Only the systems emphasis covers machine-level representation.
        assert!(CS1_SYSTEMS.coverages.iter().any(|c| c.ku == "AR.MLRD"));
        assert!(CS1_OOP.coverages.iter().all(|c| c.ku != "AR.MLRD"));
        assert!(CS1_ALGO.coverages.iter().all(|c| c.ku != "AR.MLRD"));
    }
}
