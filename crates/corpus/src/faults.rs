//! Deterministic fault injection for robustness testing.
//!
//! Each injector takes a clean [`GeneratedCorpus`] (or matrix / JSON
//! document) and returns a damaged copy, seeded so every run of the test
//! suite exercises exactly the same damage. The injectors model the
//! failure modes a real CS-Materials deployment sees:
//!
//! * instructors deleting materials mid-semester ([`drop_materials`]),
//! * classification sessions abandoned half-way ([`strip_tags`]),
//! * a whole course group missing its materials ([`drop_group_materials`]),
//! * degenerate course matrices ([`zero_columns`], [`duplicate_columns`]),
//! * corrupted portable-store files ([`corrupt_json`]).
//!
//! `MaterialStore` has no removal API (ids are append-only), so the store
//! injectors rebuild the corpus course-by-course in the original order;
//! because [`crate::generate`] assigns `CourseId`s sequentially, ids in the
//! damaged corpus align with the clean one.

use crate::generate::GeneratedCorpus;
use anchors_linalg::Matrix;
use anchors_materials::{Course, CourseLabel, Material, MaterialStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rebuild a corpus, letting `transform` decide per material whether it
/// survives (`Some(tags)`, possibly with a reduced tag set) or is dropped
/// (`None`). Courses are always kept, so group structure survives.
fn rebuild(
    corpus: &GeneratedCorpus,
    mut transform: impl FnMut(&Course, &Material) -> Option<Vec<anchors_curricula::NodeId>>,
) -> GeneratedCorpus {
    let mut store = MaterialStore::new();
    let mut courses = Vec::with_capacity(corpus.courses.len());
    for &old_cid in &corpus.courses {
        let c = corpus.store.course(old_cid);
        let new_cid = store.add_course(
            c.name.clone(),
            c.institution.clone(),
            c.instructor.clone(),
            c.labels.clone(),
            c.language.clone(),
        );
        for &mid in &c.materials {
            let m = corpus.store.material(mid);
            if let Some(tags) = transform(c, m) {
                store.add_material(
                    new_cid,
                    m.name.clone(),
                    m.kind,
                    m.author.clone(),
                    m.language.clone(),
                    m.datasets.clone(),
                    tags,
                );
            }
        }
        courses.push(new_cid);
    }
    GeneratedCorpus { store, courses }
}

/// Drop each material independently with probability `fraction`.
pub fn drop_materials(corpus: &GeneratedCorpus, fraction: f64, seed: u64) -> GeneratedCorpus {
    let mut rng = StdRng::seed_from_u64(seed);
    rebuild(corpus, |_, m| {
        if rng.gen::<f64>() < fraction {
            None
        } else {
            Some(m.tags.clone())
        }
    })
}

/// Remove each tag of each material independently with probability
/// `fraction`. Materials survive — possibly with no tags at all, which is
/// what an abandoned classification session leaves behind.
pub fn strip_tags(corpus: &GeneratedCorpus, fraction: f64, seed: u64) -> GeneratedCorpus {
    let mut rng = StdRng::seed_from_u64(seed);
    rebuild(corpus, |_, m| {
        Some(
            m.tags
                .iter()
                .copied()
                .filter(|_| rng.gen::<f64>() >= fraction)
                .collect(),
        )
    })
}

/// Remove every material from every course carrying `label`, leaving the
/// courses themselves (and all other groups) intact. This is the worst
/// case for one analysis group: its course matrix spans zero tags.
pub fn drop_group_materials(corpus: &GeneratedCorpus, label: CourseLabel) -> GeneratedCorpus {
    rebuild(corpus, |c, m| {
        if c.labels.contains(&label) {
            None
        } else {
            Some(m.tags.clone())
        }
    })
}

/// Zero out `n` distinct columns of `a`, chosen by seed.
pub fn zero_columns(a: &Matrix, n: usize, seed: u64) -> Matrix {
    let mut out = a.clone();
    for j in pick_columns(a.cols(), n, seed) {
        out.set_col(j, &vec![0.0; a.rows()]);
    }
    out
}

/// Overwrite `n` distinct columns of `a` with copies of the column to
/// their left (cyclically), producing exact duplicates.
pub fn duplicate_columns(a: &Matrix, n: usize, seed: u64) -> Matrix {
    let mut out = a.clone();
    for j in pick_columns(a.cols(), n, seed) {
        let src = if j == 0 { a.cols() - 1 } else { j - 1 };
        let col = a.col(src);
        out.set_col(j, &col);
    }
    out
}

/// Choose `n` distinct column indices via a seeded partial Fisher-Yates.
fn pick_columns(cols: usize, n: usize, seed: u64) -> Vec<usize> {
    let n = n.min(cols);
    let mut idx: Vec<usize> = (0..cols).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n {
        let j = rng.gen_range(i..cols);
        idx.swap(i, j);
    }
    idx.truncate(n);
    idx
}

/// Ways to damage a portable-store JSON document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JsonFault {
    /// Cut the document off mid-stream (interrupted download / full disk).
    Truncate,
    /// Splice raw control bytes into the document (bit rot, bad encoding).
    GarbageBytes,
    /// Rewrite one tag code into a code no guideline defines. The document
    /// stays well-formed JSON; the damage only surfaces at import time.
    MangleTag,
}

/// Marker spliced over a tag code by [`JsonFault::MangleTag`].
pub const MANGLED_CODE: &str = "ZZZ.NOT.A.CODE";

/// Apply one [`JsonFault`] to a JSON document. Deterministic in `seed`
/// (which picks the damage site for the byte-level faults).
pub fn corrupt_json(json: &str, fault: JsonFault, seed: u64) -> String {
    match fault {
        JsonFault::Truncate => {
            if json.len() < 2 {
                return String::new();
            }
            // Cut somewhere in the middle third so both the opening brace
            // and real content survive, but the document cannot close.
            let span = (json.len() / 3).max(1);
            let cut = floor_char_boundary(json, json.len() / 3 + (seed as usize) % span);
            json[..cut].to_string()
        }
        JsonFault::GarbageBytes => {
            if json.is_empty() {
                return "\u{0}\u{1}\u{2}".to_string();
            }
            // Raw control characters are illegal in JSON both inside and
            // outside string literals, so the splice point cannot matter.
            let at = floor_char_boundary(json, (seed as usize) % json.len());
            format!("{}\u{0}\u{1}\u{2}{}", &json[..at], &json[at..])
        }
        JsonFault::MangleTag => match find_tag_code(json) {
            Some((start, end)) => {
                format!("{}{}{}", &json[..start], MANGLED_CODE, &json[end..])
            }
            None => json.to_string(),
        },
    }
}

/// Largest char boundary `<= at` (stable-toolchain stand-in for
/// `str::floor_char_boundary`).
fn floor_char_boundary(s: &str, at: usize) -> usize {
    let mut at = at.min(s.len());
    while at > 0 && !s.is_char_boundary(at) {
        at -= 1;
    }
    at
}

/// Byte range of the first quoted string that looks like a guideline code
/// (`"SDF.FPC.t1"`): at least two dots, no spaces. Range excludes quotes.
fn find_tag_code(json: &str) -> Option<(usize, usize)> {
    let bytes = json.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'"' {
                if bytes[j] == b'\\' {
                    j += 1;
                }
                j += 1;
            }
            if j >= bytes.len() {
                return None;
            }
            let content = &json[start..j];
            if content.bytes().filter(|&b| b == b'.').count() >= 2 && !content.contains(' ') {
                return Some((start, j));
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_subset;
    use crate::roster::ROSTER;
    use anchors_materials::CourseMatrix;

    fn small_corpus() -> GeneratedCorpus {
        generate_subset(7, &ROSTER[..6])
    }

    #[test]
    fn drop_materials_is_deterministic_and_lossy() {
        let c = small_corpus();
        let a = drop_materials(&c, 0.5, 11);
        let b = drop_materials(&c, 0.5, 11);
        assert_eq!(a.store.material_count(), b.store.material_count());
        assert!(a.store.material_count() < c.store.material_count());
        assert_eq!(a.courses.len(), c.courses.len(), "courses survive");
        a.store
            .validate(anchors_curricula::cs2013())
            .unwrap_or_else(|e| panic!("damaged store is still internally consistent: {e}"));
    }

    #[test]
    fn strip_tags_keeps_materials_but_loses_tags() {
        let c = small_corpus();
        let d = strip_tags(&c, 0.7, 3);
        assert_eq!(d.store.material_count(), c.store.material_count());
        let tags_before: usize = c.store.materials().iter().map(|m| m.tags.len()).sum();
        let tags_after: usize = d.store.materials().iter().map(|m| m.tags.len()).sum();
        assert!(tags_after < tags_before);
    }

    #[test]
    fn drop_group_materials_empties_exactly_that_group() {
        let c = small_corpus();
        let d = drop_group_materials(&c, CourseLabel::Cs1);
        for (old, &new) in c.courses.iter().zip(&d.courses) {
            let oc = c.store.course(*old);
            let nc = d.store.course(new);
            if oc.labels.contains(&CourseLabel::Cs1) {
                assert!(nc.materials.is_empty(), "{} keeps materials", nc.name);
            } else {
                assert_eq!(nc.materials.len(), oc.materials.len());
            }
        }
        let cm = CourseMatrix::build(&d.store, &d.with_label(CourseLabel::Cs1));
        assert_eq!(cm.n_tags(), 0, "the damaged group spans no tags");
    }

    #[test]
    fn column_injectors_preserve_shape_and_damage_columns() {
        let a = Matrix::from_fn(4, 6, |i, j| (i * 6 + j) as f64 + 1.0);
        let z = zero_columns(&a, 2, 5);
        assert_eq!(z.shape(), a.shape());
        let zeroed = (0..6)
            .filter(|&j| z.col(j).iter().all(|&v| v == 0.0))
            .count();
        assert_eq!(zeroed, 2);

        let d = duplicate_columns(&a, 2, 5);
        assert_eq!(d.shape(), a.shape());
        let dupes = (0..6)
            .filter(|&j| (0..6).any(|k| k != j && d.col(j) == d.col(k)))
            .count();
        assert!(dupes >= 2, "expected duplicated columns, got {dupes}");
    }

    #[test]
    fn corrupt_json_variants_damage_the_document() {
        let doc = r#"{"guideline":"g","courses":[{"name":"c","tags":["SDF.FPC.t1"]}]}"#;
        let t = corrupt_json(doc, JsonFault::Truncate, 9);
        assert!(t.len() < doc.len());
        assert!(!t.is_empty());

        let g = corrupt_json(doc, JsonFault::GarbageBytes, 9);
        assert!(g.contains('\u{0}'));
        assert_eq!(g.len(), doc.len() + 3);

        let m = corrupt_json(doc, JsonFault::MangleTag, 9);
        assert!(m.contains(MANGLED_CODE));
        assert!(!m.contains("SDF.FPC.t1"));
        // MangleTag keeps the document structurally intact.
        assert_eq!(m.len(), doc.len() - "SDF.FPC.t1".len() + MANGLED_CODE.len());
    }

    #[test]
    fn pick_columns_is_distinct_and_in_range() {
        let picked = pick_columns(10, 4, 123);
        assert_eq!(picked.len(), 4);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "indices must be distinct");
        assert!(picked.iter().all(|&j| j < 10));
    }
}
