//! Property test of crash recovery: damage **any one** artifact of a
//! multi-version registry with **any** corpus-level JSON fault, and the
//! registry still serves the newest uncorrupted model — before recovery
//! (via `load_latest` fallback) and after (via `recover` quarantine).
//! The quarantined version number is burned forever.

use anchors_corpus::faults::{corrupt_json, JsonFault};
use anchors_curricula::cs2013;
use anchors_factor::{NnmfModel, NnmfRecovery};
use anchors_linalg::{Backend, Matrix};
use anchors_materials::TagSpace;
use anchors_serve::{ArtifactFormat, FittedModel, Registry};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

/// Distinct directory per proptest case (cases run — and shrink —
/// against their own registries).
static CASE: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir() -> PathBuf {
    let case = CASE.fetch_add(1, Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "anchors-recovery-prop-{}-{case}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A small, valid artifact whose `winning_seed` doubles as its identity,
/// so a served model proves which version answered.
fn toy_model(name: &str, seed: u64) -> FittedModel {
    let cs = cs2013();
    let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(5));
    let model = NnmfModel {
        w: Matrix::from_fn(3, 2, |i, j| (i + j + seed as usize % 3) as f64 * 0.5),
        h: Matrix::from_fn(2, 5, |i, j| (i * 5 + j) as f64 * 0.1 + 0.05),
        loss: 0.25,
        iterations: 9,
        converged: true,
        winning_seed: seed,
        recovery: NnmfRecovery::default(),
    };
    FittedModel::new(name, cs, &space, &model, Backend::Dense).expect("valid artifact")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_single_fault_still_serves_newest_good_model(
        n_versions in 2u64..5,
        victim_pick in 0u64..4,
        fault in prop_oneof![
            Just(JsonFault::Truncate),
            Just(JsonFault::GarbageBytes),
            Just(JsonFault::MangleTag),
        ],
        seed in any::<u64>(),
    ) {
        let victim = victim_pick % n_versions + 1;
        let dir = fresh_dir();
        // The faults below are corpus-level *JSON* faults, so the format
        // is pinned; the binary path gets its own fault properties in
        // `proptests.rs`.
        let reg = Registry::open(&dir)
            .expect("open")
            .with_format(ArtifactFormat::Json);
        for v in 1..=n_versions {
            prop_assert_eq!(reg.save(&toy_model(&format!("m{v}"), v)).expect("save"), v);
        }

        // Damage exactly one artifact with one corpus-level fault.
        let victim_path = dir.join(format!("model-v{victim}.json"));
        let clean = fs::read_to_string(&victim_path).expect("read victim");
        let damaged = corrupt_json(&clean, fault, seed);
        prop_assert_ne!(&damaged, &clean, "fault {:?} must change the artifact", fault);
        fs::write(&victim_path, &damaged).expect("write damage");

        let expected_good: Vec<u64> = (1..=n_versions).filter(|&v| v != victim).collect();
        let newest_good = *expected_good.last().expect("two versions leave a survivor");

        // Before any recovery runs, load_latest already falls back past
        // the damage: the newest good model answers, never the victim.
        let (pre_version, pre_model) = reg.load_latest().expect("fallback");
        prop_assert_eq!(pre_version, newest_good);
        prop_assert_eq!(pre_model.winning_seed, newest_good);

        // recover() quarantines exactly the victim, preserving its bytes.
        let report = reg.recover().expect("recover");
        prop_assert_eq!(report.quarantined.len(), 1, "report: {:?}", report);
        prop_assert_eq!(report.quarantined[0].0, victim);
        prop_assert!(report.quarantined[0].1.is_corruption());
        prop_assert_eq!(&report.good, &expected_good);
        prop_assert!(dir.join(format!("model-v{victim}.json.quarantined")).exists());
        prop_assert!(!victim_path.exists());

        // The registry still serves the same newest good model...
        let (post_version, post_model) = reg.load_latest().expect("post-recovery");
        prop_assert_eq!(post_version, newest_good);
        prop_assert_eq!(post_model.winning_seed, newest_good);

        // ...and the quarantined number is never reused: the next publish
        // claims a strictly newer version.
        let next = reg.save(&toy_model("fresh", 99)).expect("save after recovery");
        prop_assert_eq!(next, n_versions + 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
