//! Property-based tests of the serving layer: artifact persistence is
//! bitwise, and malformed or mismatched artifacts are always refused.

use anchors_curricula::{cs2013, pdc12};
use anchors_factor::{NnmfModel, NnmfRecovery};
use anchors_linalg::{Backend, Matrix};
use anchors_materials::TagSpace;
use anchors_serve::{CourseQuery, FittedModel, QueryEngine, ServeError};
use proptest::prelude::*;

/// Strategy: a serveable model over a prefix of the CS2013 leaf tag space,
/// with arbitrary (finite, nonnegative) factor entries — including
/// awkward magnitudes whose decimal round-trips must still be bitwise.
fn serveable_model() -> impl Strategy<Value = FittedModel> {
    (2usize..4, 4usize..12, 2usize..8).prop_flat_map(|(k, n, rows)| {
        let entry = prop_oneof![
            4 => 0.0f64..3.0,
            1 => prop_oneof![
                Just(0.0),
                Just(1e-300),
                Just(2.2250738585072014e-308),
                Just(0.1),
                Just(1e15),
            ],
        ];
        (
            prop::collection::vec(entry.clone(), rows * k),
            prop::collection::vec(entry, k * n),
            any::<u64>(),
            0.0f64..1e6,
        )
            .prop_map(move |(wdata, hdata, seed, loss)| {
                let cs = cs2013();
                let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(n));
                let model = NnmfModel {
                    w: Matrix::from_vec(rows, k, wdata),
                    h: Matrix::from_vec(k, n, hdata),
                    loss,
                    iterations: 7,
                    converged: true,
                    winning_seed: seed,
                    recovery: NnmfRecovery::default(),
                };
                FittedModel::new("prop", cs, &space, &model, Backend::Dense)
                    .expect("finite nonneg factors are serveable")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn save_load_query_is_bitwise_identical(artifact in serveable_model()) {
        let text = artifact.to_json();
        let reloaded = FittedModel::from_json(&text, "<prop>").expect("roundtrip");
        prop_assert_eq!(&reloaded.w, &artifact.w);
        prop_assert_eq!(&reloaded.h, &artifact.h);
        prop_assert_eq!(reloaded.fingerprint, artifact.fingerprint);
        prop_assert_eq!(reloaded.winning_seed, artifact.winning_seed);
        prop_assert_eq!(&reloaded.tag_codes, &artifact.tag_codes);
        // Re-serialization is byte-stable: save → load → save is identity.
        prop_assert_eq!(reloaded.to_json(), text);

        // And a query answered before saving is answered identically by
        // the reloaded model — loadings bitwise equal.
        let query = CourseQuery::new(
            "q",
            vec![],
            artifact.tag_codes.iter().step_by(2).cloned().collect(),
        );
        let before = QueryEngine::new(artifact, cs2013(), pdc12())
            .expect("engine")
            .query(&query)
            .expect("query")
            .loadings;
        let after = QueryEngine::new(reloaded, cs2013(), pdc12())
            .expect("engine")
            .query(&query)
            .expect("query")
            .loadings;
        prop_assert_eq!(after, before);
    }

    #[test]
    fn truncated_artifacts_are_rejected(artifact in serveable_model(), frac in 0.0f64..1.0) {
        // Any strict prefix of a valid artifact must fail closed as
        // Corrupt — never parse as a smaller-but-plausible model.
        let text = artifact.to_json();
        let cut = ((text.len() as f64) * frac) as usize;
        let cut = cut.min(text.len() - 1);
        let truncated = &text[..cut];
        match FittedModel::from_json(truncated, "<trunc>") {
            Err(ServeError::Corrupt { .. }) => {}
            Ok(_) => prop_assert!(false, "truncation at {cut} parsed as a model"),
            Err(other) => prop_assert!(false, "wrong error class: {other:?}"),
        }
    }

    #[test]
    fn corrupted_artifacts_are_rejected(
        artifact in serveable_model(),
        pos in any::<prop::sample::Index>(),
        garbage in "[{}\\[\\]\"x]",
    ) {
        // Splice a structural character into the body. Either the result
        // no longer parses (Corrupt) or — rarely — it still parses AND
        // still describes the very same model (e.g. the splice landed in
        // the free-text name). What can never happen is serving different
        // factors than were saved.
        let text = artifact.to_json();
        let at = pos.index(text.len() - 1).max(1);
        let mut spliced = String::with_capacity(text.len() + 1);
        spliced.push_str(&text[..at]);
        spliced.push_str(&garbage);
        spliced.push_str(&text[at..]);
        match FittedModel::from_json(&spliced, "<splice>") {
            Err(_) => {}
            Ok(parsed) => {
                prop_assert_eq!(parsed.w, artifact.w);
                prop_assert_eq!(parsed.h, artifact.h);
                prop_assert_eq!(parsed.fingerprint, artifact.fingerprint);
            }
        }
    }

    #[test]
    fn fingerprint_mismatch_is_refused(artifact in serveable_model(), flip in 1u64..) {
        // Any altered fingerprint — i.e. any ontology revision other than
        // the one the model was fitted against — is refused at serve time.
        let mut stale = artifact;
        stale.fingerprint ^= flip;
        match QueryEngine::new(stale, cs2013(), pdc12()) {
            Err(ServeError::FingerprintMismatch { expected, found, .. }) => {
                prop_assert_ne!(expected, found);
            }
            other => prop_assert!(false, "expected refusal, got {:?}", other.map(|_| ())),
        }
    }
}
