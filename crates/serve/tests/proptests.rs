//! Property-based tests of the serving layer: artifact persistence is
//! bitwise, and malformed or mismatched artifacts are always refused.

use anchors_curricula::{cs2013, pdc12};
use anchors_factor::{NnmfModel, NnmfRecovery};
use anchors_linalg::{Backend, Matrix};
use anchors_materials::TagSpace;
use anchors_serve::{
    fold_in_max_rel_err, Artifact, ArtifactFormat, BinaryCodec, Codec, CourseQuery, FaultPlan,
    FaultyFs, FileOps, FittedModel, JsonCodec, Precision, QueryEngine, Registry, ServeError,
    F32_FOLD_IN_MAX_REL_ERR,
};
use anchors_text::{FeaturizerConfig, TextModel};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;

/// Distinct directory per fault-injection case (cases run — and shrink —
/// against their own registries).
static CASE: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir() -> std::path::PathBuf {
    let case = CASE.fetch_add(1, Relaxed);
    let dir =
        std::env::temp_dir().join(format!("anchors-serve-prop-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Strategy: a serveable model over a prefix of the CS2013 leaf tag space,
/// with arbitrary (finite, nonnegative) factor entries — including
/// awkward magnitudes whose decimal round-trips must still be bitwise.
fn serveable_model() -> impl Strategy<Value = FittedModel> {
    (2usize..4, 4usize..12, 2usize..8).prop_flat_map(|(k, n, rows)| {
        let entry = prop_oneof![
            4 => 0.0f64..3.0,
            1 => prop_oneof![
                Just(0.0),
                Just(1e-300),
                Just(2.2250738585072014e-308),
                Just(0.1),
                Just(1e15),
            ],
        ];
        (
            prop::collection::vec(entry.clone(), rows * k),
            prop::collection::vec(entry, k * n),
            any::<u64>(),
            0.0f64..1e6,
        )
            .prop_map(move |(wdata, hdata, seed, loss)| {
                let cs = cs2013();
                let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(n));
                let model = NnmfModel {
                    w: Matrix::from_vec(rows, k, wdata),
                    h: Matrix::from_vec(k, n, hdata),
                    loss,
                    iterations: 7,
                    converged: true,
                    winning_seed: seed,
                    recovery: NnmfRecovery::default(),
                };
                FittedModel::new("prop", cs, &space, &model, Backend::Dense)
                    .expect("finite nonneg factors are serveable")
            })
    })
}

/// Strategy: a well-conditioned serveable model plus a batch of binary
/// query rows, for the reduced-precision fold-in bound. The diagonal bump
/// keeps the basis rows well-separated, so the serving Gram matrix stays
/// within the conditioning regime `F32_FOLD_IN_MAX_REL_ERR` is derived
/// for (κ(G) ≲ 10³; see DESIGN.md §15) — the property that random
/// near-collinear bases violate the bound is *expected*, which is why the
/// engine documents the bound as conditional on the basis.
fn f32_fold_in_case() -> impl Strategy<Value = (FittedModel, Matrix)> {
    (2usize..5, 6usize..14, 1usize..6).prop_flat_map(|(k, n, q)| {
        (
            prop::collection::vec(0.1f64..3.0, k * n),
            prop::collection::vec(prop::bool::ANY, q * n),
        )
            .prop_map(move |(hdata, mask)| {
                let cs = cs2013();
                let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(n));
                let mut h = Matrix::from_vec(k, n, hdata);
                for t in 0..k {
                    h.set(t, t, h.get(t, t) + 2.0);
                }
                let model = NnmfModel {
                    w: Matrix::zeros(3, k),
                    h,
                    loss: 0.1,
                    iterations: 7,
                    converged: true,
                    winning_seed: 11,
                    recovery: NnmfRecovery::default(),
                };
                let artifact = FittedModel::new("prop-f32", cs, &space, &model, Backend::Dense)
                    .expect("finite nonneg factors are serveable");
                let batch = Matrix::from_fn(q, n, |i, j| f64::from(u8::from(mask[i * n + j])));
                (artifact, batch)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn f32_fold_in_stays_within_documented_bound((artifact, batch) in f32_fold_in_case()) {
        let cs = cs2013();
        let e64 = QueryEngine::new(artifact.clone(), cs, pdc12()).expect("f64 engine");
        let e32 = QueryEngine::with_precision(artifact, cs, pdc12(), Precision::F32)
            .expect("f32 engine");
        let w64 = e64.fold_in_batch(&batch).expect("f64 fold-in");
        let w32 = e32.fold_in_batch(&batch).expect("f32 fold-in");
        let err = fold_in_max_rel_err(&w64, &w32);
        prop_assert!(
            err <= F32_FOLD_IN_MAX_REL_ERR,
            "f32 fold-in error {err} exceeds the documented bound"
        );
        // Widened loadings stay finite and nonnegative.
        for v in w32.as_slice() {
            prop_assert!(v.is_finite() && *v >= 0.0);
        }
    }

    #[test]
    fn save_load_query_is_bitwise_identical(artifact in serveable_model()) {
        let text = artifact.to_json();
        let reloaded = FittedModel::from_json(&text, "<prop>").expect("roundtrip");
        prop_assert_eq!(&reloaded.w, &artifact.w);
        prop_assert_eq!(&reloaded.h, &artifact.h);
        prop_assert_eq!(reloaded.fingerprint, artifact.fingerprint);
        prop_assert_eq!(reloaded.winning_seed, artifact.winning_seed);
        prop_assert_eq!(&reloaded.tag_codes, &artifact.tag_codes);
        // Re-serialization is byte-stable: save → load → save is identity.
        prop_assert_eq!(reloaded.to_json(), text);

        // And a query answered before saving is answered identically by
        // the reloaded model — loadings bitwise equal.
        let query = CourseQuery::new(
            "q",
            vec![],
            artifact.tag_codes.iter().step_by(2).cloned().collect(),
        );
        let before = QueryEngine::new(artifact, cs2013(), pdc12())
            .expect("engine")
            .query(&query)
            .expect("query")
            .loadings;
        let after = QueryEngine::new(reloaded, cs2013(), pdc12())
            .expect("engine")
            .query(&query)
            .expect("query")
            .loadings;
        prop_assert_eq!(after, before);
    }

    #[test]
    fn truncated_artifacts_are_rejected(artifact in serveable_model(), frac in 0.0f64..1.0) {
        // Any strict prefix of a valid artifact must fail closed as
        // Corrupt — never parse as a smaller-but-plausible model.
        let text = artifact.to_json();
        let cut = ((text.len() as f64) * frac) as usize;
        let cut = cut.min(text.len() - 1);
        let truncated = &text[..cut];
        match FittedModel::from_json(truncated, "<trunc>") {
            Err(ServeError::Corrupt { .. }) => {}
            Ok(_) => prop_assert!(false, "truncation at {cut} parsed as a model"),
            Err(other) => prop_assert!(false, "wrong error class: {other:?}"),
        }
    }

    #[test]
    fn corrupted_artifacts_are_rejected(
        artifact in serveable_model(),
        pos in any::<prop::sample::Index>(),
        garbage in "[{}\\[\\]\"x]",
    ) {
        // Splice a structural character into the body. Either the result
        // no longer parses (Corrupt) or — rarely — it still parses AND
        // still describes the very same model (e.g. the splice landed in
        // the free-text name). What can never happen is serving different
        // factors than were saved.
        let text = artifact.to_json();
        let at = pos.index(text.len() - 1).max(1);
        let mut spliced = String::with_capacity(text.len() + 1);
        spliced.push_str(&text[..at]);
        spliced.push_str(&garbage);
        spliced.push_str(&text[at..]);
        match FittedModel::from_json(&spliced, "<splice>") {
            Err(_) => {}
            Ok(parsed) => {
                prop_assert_eq!(parsed.w, artifact.w);
                prop_assert_eq!(parsed.h, artifact.h);
                prop_assert_eq!(parsed.fingerprint, artifact.fingerprint);
            }
        }
    }

    #[test]
    fn json_and_binary_codecs_roundtrip_bitwise(artifact in serveable_model()) {
        // The two codecs are interchangeable: both round-trip the same
        // model, with W/H and the ontology fingerprint bitwise identical
        // across formats, and the binary encoding is byte-stable.
        let json_bytes = JsonCodec.encode(&artifact);
        let bin_bytes = BinaryCodec.encode(&artifact);
        let via_json = JsonCodec.decode(&json_bytes, "<json>").expect("json decodes");
        let via_bin = BinaryCodec.decode(&bin_bytes, "<bin>").expect("binary decodes");
        prop_assert_eq!(&via_json.w, &via_bin.w, "W bitwise across codecs");
        prop_assert_eq!(&via_json.h, &via_bin.h, "H bitwise across codecs");
        prop_assert_eq!(via_json.fingerprint, via_bin.fingerprint);
        prop_assert_eq!(&via_json.tag_codes, &via_bin.tag_codes);
        prop_assert_eq!(via_json.winning_seed, via_bin.winning_seed);
        prop_assert_eq!(BinaryCodec.encode(&via_bin), bin_bytes, "binary save→load→save identity");
    }

    #[test]
    fn binary_truncations_are_typed_never_a_panic(
        artifact in serveable_model(),
        frac in 0.0f64..1.0,
    ) {
        // Any strict prefix of a binary artifact fails closed with a
        // typed corruption error — never a panic, never a parse.
        let bytes = BinaryCodec.encode(&artifact);
        let cut = (((bytes.len() as f64) * frac) as usize).min(bytes.len() - 1);
        match BinaryCodec.decode(&bytes[..cut], "<trunc>") {
            Err(e) => prop_assert!(e.is_corruption(), "cut {}: {:?}", cut, e),
            Ok(_) => prop_assert!(false, "truncation at {} decoded as a model", cut),
        }
    }

    #[test]
    fn binary_fault_injection_surfaces_checksum_mismatch(
        artifact in serveable_model(),
        seed in any::<u64>(),
    ) {
        // Torn writes and partial reads on the binary registry path
        // surface as typed ChecksumMismatch — the retry/fallback loops
        // key on it — and the registry heals once the weather clears.
        let dir = fresh_dir();
        let ffs = Arc::new(FaultyFs::new(FaultPlan::none(seed).with_torn_write(1.0)));
        ffs.set_enabled(false);
        let reg = Registry::open_with(&dir, Arc::clone(&ffs) as Arc<dyn FileOps>)
            .expect("open")
            .with_format(ArtifactFormat::Bin);
        let v = reg.save(&artifact).expect("clean save");
        let path = dir.join(format!("model-v{v}.bin"));
        let clean = BinaryCodec.encode(&artifact);

        // A torn write over the artifact leaves a prefix on disk.
        ffs.set_enabled(true);
        prop_assert!(ffs.write_durable(&path, &clean).is_err(), "write must tear");
        ffs.set_enabled(false);
        match reg.load(v) {
            Err(ServeError::ChecksumMismatch { .. }) => {}
            other => prop_assert!(false, "torn write: expected ChecksumMismatch, got {:?}",
                other.map(|m| m.name)),
        }

        // A partial read of healthy bytes is caught the same way...
        std::fs::write(&path, &clean).expect("restore");
        ffs.set_plan(FaultPlan::none(seed).with_partial_read(1.0).with_max_faults(1));
        ffs.set_enabled(true);
        match reg.load(v) {
            Err(ServeError::ChecksumMismatch { .. }) => {}
            other => prop_assert!(false, "partial read: expected ChecksumMismatch, got {:?}",
                other.map(|m| m.name)),
        }

        // ...and once the fault budget is spent, the same registry serves
        // the same bits.
        let healed = reg.load(v).expect("budget spent, load heals");
        prop_assert_eq!(&healed.w, &artifact.w);
        prop_assert_eq!(&healed.h, &artifact.h);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_refused(artifact in serveable_model(), flip in 1u64..) {
        // Any altered fingerprint — i.e. any ontology revision other than
        // the one the model was fitted against — is refused at serve time.
        let mut stale = artifact;
        stale.fingerprint ^= flip;
        match QueryEngine::new(stale, cs2013(), pdc12()) {
            Err(ServeError::FingerprintMismatch { expected, found, .. }) => {
                prop_assert_ne!(expected, found);
            }
            other => prop_assert!(false, "expected refusal, got {:?}", other.map(|_| ())),
        }
    }
}

/// Strategy: a shape-valid text model over a prefix of the CS2013 leaf
/// tag space, with arbitrary finite parameters — including awkward
/// magnitudes whose decimal round-trips must still be bitwise.
fn serveable_text_model() -> impl Strategy<Value = TextModel> {
    (2usize..6, 16usize..48, 2usize..=8).prop_flat_map(|(n_tags, n_buckets, char_ngram)| {
        let entry = prop_oneof![
            4 => -3.0f64..3.0,
            1 => prop_oneof![
                Just(0.0),
                Just(-0.0),
                Just(1e-300),
                Just(2.2250738585072014e-308),
                Just(0.1),
                Just(-1e15),
            ],
        ];
        (
            prop::collection::vec(entry.clone(), n_buckets),
            prop::collection::vec(entry.clone(), n_tags * n_buckets),
            prop::collection::vec(entry, n_tags),
            prop::collection::vec(0.0f64..=1.0, n_tags),
            any::<u64>(),
            any::<u64>(),
            0.0f64..=1.0,
        )
            .prop_map(
                move |(idf, wdata, bias, thresholds, hash_seed, train_seed, train_f1)| {
                    let cs = cs2013();
                    let tag_codes: Vec<String> = cs
                        .leaf_items()
                        .into_iter()
                        .take(n_tags)
                        .map(|id| cs.node(id).code.clone())
                        .collect();
                    let model = TextModel {
                        name: "prop-text".into(),
                        guideline: cs.guideline.clone(),
                        fingerprint: cs.fingerprint(),
                        tag_codes,
                        config: FeaturizerConfig {
                            n_buckets,
                            char_ngram,
                            seed: hash_seed,
                        },
                        idf,
                        weights: Matrix::from_vec(n_tags, n_buckets, wdata),
                        bias,
                        thresholds,
                        train_docs: 11,
                        train_seed,
                        train_f1,
                    };
                    model.check_shapes().expect("strategy builds valid models");
                    model
                },
            )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn text_artifacts_roundtrip_bitwise_in_both_formats(model in serveable_text_model()) {
        // The text artifact rides the same codec seam as FittedModel:
        // both formats reproduce the model field-for-field (f64s
        // bitwise), and encode → decode → encode is byte identity.
        for format in [ArtifactFormat::Json, ArtifactFormat::Bin] {
            let bytes = model.encode_as(format);
            let back = TextModel::decode_as(format, &bytes, "<prop>").expect("decodes");
            prop_assert_eq!(&back, &model, "field-for-field via {:?}", format);
            prop_assert_eq!(
                back.encode_as(format),
                bytes,
                "save→load→save identity via {:?}",
                format
            );
        }
    }

    #[test]
    fn text_artifact_truncations_are_typed_never_a_panic(
        model in serveable_text_model(),
        frac in 0.0f64..1.0,
    ) {
        // Any strict prefix of either encoding fails closed with a typed
        // corruption error — never a panic, never a partial parse.
        for format in [ArtifactFormat::Json, ArtifactFormat::Bin] {
            let bytes = model.encode_as(format);
            let cut = (((bytes.len() as f64) * frac) as usize).min(bytes.len() - 1);
            match TextModel::decode_as(format, &bytes[..cut], "<trunc>") {
                Err(e) => prop_assert!(e.is_corruption(), "{:?} cut {}: {:?}", format, cut, e),
                Ok(_) => prop_assert!(false, "{:?} truncation at {} decoded", format, cut),
            }
        }
    }

    #[test]
    fn text_artifact_bitflips_never_parse_silently(
        model in serveable_text_model(),
        pos in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        // Flipping any single bit of the binary encoding is caught by
        // the words checksum (or, for flips inside the trailer itself,
        // by the trailer no longer matching the payload).
        let bytes = model.encode_as(ArtifactFormat::Bin);
        let mut torn = bytes.clone();
        let at = pos.index(torn.len());
        torn[at] ^= 1 << bit;
        match TextModel::decode_as(ArtifactFormat::Bin, &torn, "<flip>") {
            Err(e) => prop_assert!(e.is_corruption(), "byte {} bit {}: {:?}", at, bit, e),
            Ok(_) => prop_assert!(false, "bit flip at byte {} bit {} parsed", at, bit),
        }
    }
}
