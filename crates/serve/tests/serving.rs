//! End-to-end serving tests: fold-in fidelity against the trainer,
//! save→load→query bitwise identity through a real registry, and the
//! snapshot cache under concurrent reload.

use anchors_corpus::default_corpus;
use anchors_curricula::{cs2013, pdc12};
use anchors_factor::{try_nnmf, NnmfConfig};
use anchors_linalg::Backend;
use anchors_materials::{CourseLabel, CourseMatrix, SparseCourseMatrix};
use anchors_serve::{CourseQuery, FittedModel, QueryEngine, Registry, ServeError, SnapshotCache};
use std::fs;
use std::path::PathBuf;

const K: usize = 3;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anchors-serve-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Fit the paper corpus with ANLS and package the result. ANLS is the
/// right trainer for fold-in fidelity tests: its final sweep ends by
/// solving each W row as an exact NNLS problem against the final H, which
/// is the very problem the engine's fold-in solves.
fn fitted_corpus() -> (anchors_corpus::GeneratedCorpus, CourseMatrix, FittedModel) {
    let corpus = default_corpus();
    let cm = CourseMatrix::build(&corpus.store, &corpus.courses);
    let model = try_nnmf(&cm.a, &NnmfConfig::anls(K)).expect("anls fit");
    let artifact = FittedModel::new(
        "corpus-anls",
        cs2013(),
        &cm.tag_space,
        &model,
        Backend::Dense,
    )
    .expect("artifact");
    (corpus, cm, artifact)
}

#[test]
fn fold_in_recovers_training_rows_dense_and_csr() {
    let (corpus, cm, artifact) = fitted_corpus();
    let w_train = artifact.w.clone();
    let engine = QueryEngine::new(artifact, cs2013(), pdc12()).expect("engine");

    // Dense batch: fold every training course back in.
    let dense = engine.fold_in_batch(&cm.a).expect("dense fold-in");
    assert_eq!(dense.rows(), cm.a.rows());
    assert_eq!(dense.cols(), K);
    for i in 0..dense.rows() {
        for t in 0..K {
            let got = dense.get(i, t);
            let want = w_train.get(i, t);
            assert!(
                (got - want).abs() < 1e-6,
                "course {i} loading {t}: fold-in {got} vs training {want}"
            );
        }
    }

    // CSR batch: same courses through the sparse storage path must land
    // on the identical code path and produce bitwise-identical loadings.
    let scm = SparseCourseMatrix::build(&corpus.store, &corpus.courses);
    assert_eq!(scm.tag_space.tags(), cm.tag_space.tags());
    let sparse = engine.fold_in_batch(&scm.a).expect("csr fold-in");
    for i in 0..dense.rows() {
        assert_eq!(dense.row(i), sparse.row(i), "row {i} dense vs CSR");
        for t in 0..K {
            assert!(
                (sparse.get(i, t) - w_train.get(i, t)).abs() < 1e-6,
                "CSR course {i} loading {t}"
            );
        }
    }
}

#[test]
fn save_load_query_is_bitwise_identical() {
    let (corpus, cm, artifact) = fitted_corpus();
    let cs = cs2013();

    // Queries drawn from real courses plus an unseen mix of codes.
    let mut queries: Vec<CourseQuery> = corpus
        .courses
        .iter()
        .take(6)
        .map(|&c| {
            let course = corpus.store.course(c);
            let codes = corpus
                .store
                .course_tags(c)
                .into_iter()
                .map(|id| cs.node(id).code.clone())
                .collect();
            CourseQuery::new(course.name.clone(), course.labels.clone(), codes)
        })
        .collect();
    queries.push(CourseQuery::new(
        "unseen-mix",
        vec![CourseLabel::Cs1],
        cm.tag_space
            .tags()
            .iter()
            .step_by(3)
            .map(|&id| cs.node(id).code.clone())
            .collect(),
    ));

    let before_engine = QueryEngine::new(artifact.clone(), cs, pdc12()).expect("engine");
    let before: Vec<Vec<f64>> = queries
        .iter()
        .map(|q| before_engine.query(q).expect("query").loadings)
        .collect();

    // Save, then load in a "fresh process": a brand-new Registry handle
    // over the same directory, as a restarted server would open.
    let dir = tmp_dir("bitwise");
    let version = Registry::open(&dir)
        .expect("open")
        .save(&artifact)
        .expect("save");
    let reloaded: FittedModel = Registry::open(&dir)
        .expect("reopen")
        .load(version)
        .expect("load");
    assert_eq!(reloaded.w, artifact.w);
    assert_eq!(reloaded.h, artifact.h);
    assert_eq!(reloaded.fingerprint, artifact.fingerprint);

    let after_engine = QueryEngine::new(reloaded, cs, pdc12()).expect("engine");
    for (q, want) in queries.iter().zip(&before) {
        let got = after_engine.query(q).expect("query").loadings;
        assert_eq!(
            &got, want,
            "loadings drifted across save/load for {}",
            q.name
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_cache_serves_while_registry_reloads() {
    let (_corpus, cm, artifact) = fitted_corpus();
    let cs = cs2013();
    let dir = tmp_dir("cache");
    let registry = Registry::open(&dir).expect("open");
    registry.save(&artifact).expect("save v1");
    let cache = SnapshotCache::from_registry(&registry, cs, pdc12()).expect("cache");
    assert_eq!(cache.version(), 1);

    let query = CourseQuery::new(
        "probe",
        vec![CourseLabel::Cs1],
        cm.tag_space
            .tags()
            .iter()
            .take(4)
            .map(|&id| cs.node(id).code.clone())
            .collect(),
    );

    std::thread::scope(|scope| {
        // Readers hammer the cache while the writer publishes new
        // versions and reloads. Every read must see a complete, working
        // engine — never a half-swapped or mid-reload state.
        let mut readers = Vec::new();
        for _ in 0..4 {
            let cache = &cache;
            let query = &query;
            readers.push(scope.spawn(move || {
                let mut seen_versions = Vec::new();
                for _ in 0..200 {
                    let snap = cache.snapshot();
                    let resp = snap.engine.query(query).expect("query during reload");
                    assert_eq!(resp.loadings.len(), K);
                    assert!(resp.loadings.iter().all(|v| v.is_finite() && *v >= 0.0));
                    seen_versions.push(snap.version);
                }
                seen_versions
            }));
        }

        for _ in 0..5 {
            registry.save(&artifact).expect("save next version");
            cache.reload(&registry, cs, pdc12()).expect("reload");
        }

        for reader in readers {
            let versions = reader.join().expect("reader thread");
            // Versions are observed monotonically: a reader never goes
            // back in time after the cache swaps forward.
            assert!(versions.windows(2).all(|w| w[0] <= w[1]));
            assert!(versions.iter().all(|&v| (1..=6).contains(&v)));
        }
    });

    assert_eq!(cache.version(), 6);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn engine_with_store_returns_nearest_materials_and_recommendations() {
    let (corpus, _cm, artifact) = fitted_corpus();
    let cs = cs2013();
    let engine = QueryEngine::new(artifact, cs, pdc12())
        .expect("engine")
        .with_store(corpus.store.clone());

    // A PDC-flavored course: reuse the tag set of a real course that
    // carries labels, so the rule set and the search both fire.
    let source = corpus
        .courses
        .iter()
        .find(|&&c| !corpus.store.course(c).labels.is_empty())
        .copied()
        .expect("labeled course");
    let course = corpus.store.course(source);
    let codes: Vec<String> = corpus
        .store
        .course_tags(source)
        .into_iter()
        .map(|id| cs.node(id).code.clone())
        .collect();
    let resp = engine
        .query(&CourseQuery::new(
            course.name.clone(),
            course.labels.clone(),
            codes,
        ))
        .expect("query");

    assert!(
        !resp.nearest.is_empty(),
        "store-backed query finds materials"
    );
    assert!(resp.nearest.len() <= 5);
    let s: f64 = resp.mixture.iter().sum();
    assert!(s == 0.0 || (s - 1.0).abs() < 1e-12);
    // The flavor rules and §5.2 recommender ran over the same tag set.
    if !resp.flavors.is_empty() {
        assert!(!resp.recommendations.is_empty());
    }
}

#[test]
fn stale_ontology_artifact_is_refused_at_serve_time() {
    let (_corpus, _cm, mut artifact) = fitted_corpus();
    artifact.fingerprint ^= 0xdead_beef;
    match QueryEngine::new(artifact, cs2013(), pdc12()) {
        Err(ServeError::FingerprintMismatch { guideline, .. }) => {
            assert_eq!(guideline, cs2013().name);
        }
        other => panic!("expected fingerprint refusal, got {other:?}"),
    }
}
