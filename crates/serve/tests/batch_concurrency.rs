//! Concurrency contract of [`BatchQueue`]: enqueuers racing a flusher
//! must never drop or duplicate a query. The queue itself is a plain
//! accumulator behind `&mut self`, so concurrent use goes through a
//! mutex — exactly how the HTTP batch endpoint and any multi-producer
//! caller drive it. The test races N producer threads against a flusher
//! that drains whenever it observes pending work, then checks the union
//! of all flushed responses against a serial per-query run: every query
//! answered exactly once, with bitwise-identical loadings.

use anchors_curricula::{cs2013, pdc12};
use anchors_factor::{NnmfModel, NnmfRecovery};
use anchors_linalg::{Backend, Matrix};
use anchors_materials::{CourseLabel, TagSpace};
use anchors_serve::{BatchQueue, CourseQuery, FittedModel, QueryEngine};
use std::collections::HashMap;
use std::sync::{Arc, Barrier, Mutex};
use std::thread;

const ENQUEUERS: usize = 4;
const QUERIES_PER_THREAD: usize = 32;

fn toy_engine() -> QueryEngine {
    let cs = cs2013();
    let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(12));
    let model = NnmfModel {
        w: Matrix::from_fn(6, 3, |i, j| ((i + 2 * j) % 4) as f64 * 0.5),
        h: Matrix::from_fn(3, 12, |i, j| ((i * 12 + j) % 5) as f64 * 0.2 + 0.05),
        loss: 0.2,
        iterations: 7,
        converged: true,
        winning_seed: 3,
        recovery: NnmfRecovery::default(),
    };
    let artifact = FittedModel::new("toy", cs, &space, &model, Backend::Dense).expect("valid");
    QueryEngine::new(artifact, cs, pdc12()).expect("engine")
}

/// A deterministic per-thread query mix over the model's tag space.
fn query_for(codes: &[String], thread: usize, i: usize) -> CourseQuery {
    let tags: Vec<String> = codes
        .iter()
        .skip((thread + i) % 3)
        .step_by(1 + (i % 4))
        .cloned()
        .collect();
    CourseQuery::new(format!("t{thread}-q{i}"), vec![CourseLabel::Cs1], tags)
}

#[test]
fn racing_enqueuers_and_flushes_drop_and_duplicate_nothing() {
    let engine = Arc::new(toy_engine());
    let codes: Vec<String> = engine.model().tag_codes.clone();
    let queue = Arc::new(Mutex::new(BatchQueue::new()));
    let start = Arc::new(Barrier::new(ENQUEUERS + 1));
    let total = ENQUEUERS * QUERIES_PER_THREAD;

    let mut producers = Vec::new();
    for t in 0..ENQUEUERS {
        let queue = Arc::clone(&queue);
        let start = Arc::clone(&start);
        let codes = codes.clone();
        producers.push(thread::spawn(move || {
            start.wait();
            for i in 0..QUERIES_PER_THREAD {
                queue
                    .lock()
                    .expect("queue lock")
                    .push(query_for(&codes, t, i));
                if i % 7 == 0 {
                    thread::yield_now();
                }
            }
        }));
    }

    // The flusher races the producers: it drains whatever it catches
    // pending, in many small batches, until every query is answered.
    let flusher = {
        let queue = Arc::clone(&queue);
        let engine = Arc::clone(&engine);
        let start = Arc::clone(&start);
        thread::spawn(move || {
            start.wait();
            let mut answered = Vec::new();
            while answered.len() < total {
                let batch = queue
                    .lock()
                    .expect("queue lock")
                    .flush(&engine)
                    .expect("flush");
                if batch.is_empty() {
                    thread::yield_now();
                } else {
                    answered.extend(batch);
                }
            }
            answered
        })
    };

    for p in producers {
        p.join().expect("producer");
    }
    let answered = flusher.join().expect("flusher");
    assert!(queue.lock().expect("queue lock").is_empty());

    // Exactly one response per query — nothing dropped, nothing doubled.
    assert_eq!(answered.len(), total);
    let mut by_name: HashMap<String, Vec<f64>> = HashMap::new();
    for resp in answered {
        let prev = by_name.insert(resp.name.clone(), resp.loadings.clone());
        assert!(prev.is_none(), "query {} answered twice", resp.name);
    }

    // And every response equals the serial, no-queue answer bitwise.
    for t in 0..ENQUEUERS {
        for i in 0..QUERIES_PER_THREAD {
            let q = query_for(&codes, t, i);
            let serial = engine.query(&q).expect("serial query");
            let got = by_name
                .get(&q.name)
                .unwrap_or_else(|| panic!("query {} never answered", q.name));
            assert_eq!(got, &serial.loadings, "{}", q.name);
        }
    }
}
