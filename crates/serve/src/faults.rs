//! Seeded fault injection for the registry's filesystem seam.
//!
//! [`FaultyFs`] wraps [`RealFs`] and damages operations on a
//! deterministic, seeded schedule described by a [`FaultPlan`] — the
//! serving-layer mirror of `anchors_corpus::faults`, but at the I/O level
//! instead of the corpus level. Four fault classes model what real disks
//! and kernels do to a registry:
//!
//! * **torn writes** — a crash mid-`write`: only a prefix of the bytes
//!   lands on disk and the operation errors ([`FaultPlan::torn_write`]),
//! * **partial reads** — a read that silently returns truncated content
//!   ([`FaultPlan::partial_read`]), which only the checksum trailer can
//!   catch,
//! * **transient errors** — `Interrupted`-style failures that succeed on
//!   retry ([`FaultPlan::transient_error`]),
//! * **slow I/O** — an injected delay before the operation
//!   ([`FaultPlan::slow_io`]), for asserting that reloads off the hot
//!   path never block serving threads.
//!
//! Every injection decision comes from one seeded xorshift stream, so a
//! failing chaos test replays bit-for-bit from its seed. A
//! [`FaultPlan::max_faults`] budget turns "always failing" plans into
//! "fails N times then heals" plans, and [`FaultyFs::set_enabled`] lets a
//! test stand up a clean fixture before switching the weather on.

use crate::fsio::{FileOps, RealFs};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Duration;

/// What to inject, how often, and under which seed.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed of the injection schedule.
    pub seed: u64,
    /// Probability a `write_durable` tears: a prefix lands, then an error.
    pub torn_write: f64,
    /// Probability a `read_to_string` returns truncated content.
    pub partial_read: f64,
    /// Probability an operation fails with a retryable `Interrupted`.
    pub transient_error: f64,
    /// Probability an operation is delayed by [`FaultPlan::slow_io_delay`].
    pub slow_io: f64,
    /// The injected delay for slow-I/O faults.
    pub slow_io_delay: Duration,
    /// Cap on total injected faults (all classes); `None` is unlimited.
    /// Once spent, the filesystem behaves perfectly — "fails then heals".
    pub max_faults: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (all probabilities zero).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            torn_write: 0.0,
            partial_read: 0.0,
            transient_error: 0.0,
            slow_io: 0.0,
            slow_io_delay: Duration::from_millis(20),
            max_faults: None,
        }
    }

    /// Set the torn-write probability.
    pub fn with_torn_write(mut self, p: f64) -> Self {
        self.torn_write = p;
        self
    }

    /// Set the partial-read probability.
    pub fn with_partial_read(mut self, p: f64) -> Self {
        self.partial_read = p;
        self
    }

    /// Set the transient-error probability.
    pub fn with_transient_error(mut self, p: f64) -> Self {
        self.transient_error = p;
        self
    }

    /// Set the slow-I/O probability and delay.
    pub fn with_slow_io(mut self, p: f64, delay: Duration) -> Self {
        self.slow_io = p;
        self.slow_io_delay = delay;
        self
    }

    /// Cap the total number of injected faults.
    pub fn with_max_faults(mut self, budget: u64) -> Self {
        self.max_faults = Some(budget);
        self
    }
}

/// How many faults of each class actually fired, for test assertions.
#[derive(Debug, Default)]
pub struct FaultCounters {
    /// Writes that tore.
    pub torn_writes: AtomicU64,
    /// Reads that returned truncated content.
    pub partial_reads: AtomicU64,
    /// Operations that failed with a retryable error.
    pub transient_errors: AtomicU64,
    /// Operations that were delayed.
    pub slow_ios: AtomicU64,
}

impl FaultCounters {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.torn_writes.load(Relaxed)
            + self.partial_reads.load(Relaxed)
            + self.transient_errors.load(Relaxed)
            + self.slow_ios.load(Relaxed)
    }
}

/// Seeded decision state behind one mutex: the xorshift stream and the
/// spent-fault budget move together, so schedules replay exactly.
#[derive(Debug)]
struct PlanState {
    plan: FaultPlan,
    rng: u64,
    spent: u64,
}

/// A [`FileOps`] that injects the faults a [`FaultPlan`] describes,
/// delegating the real work to [`RealFs`].
#[derive(Debug)]
pub struct FaultyFs {
    inner: RealFs,
    state: Mutex<PlanState>,
    enabled: AtomicBool,
    counters: FaultCounters,
}

impl FaultyFs {
    /// Wrap the real filesystem with an injection plan. Starts enabled;
    /// use [`set_enabled`](Self::set_enabled)`(false)` to build clean
    /// fixtures first.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = plan.seed ^ 0x9E37_79B9_7F4A_7C15;
        FaultyFs {
            inner: RealFs,
            state: Mutex::new(PlanState {
                plan,
                rng: rng.max(1),
                spent: 0,
            }),
            enabled: AtomicBool::new(true),
            counters: FaultCounters::default(),
        }
    }

    /// Turn injection on or off without touching the schedule.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Relaxed);
    }

    /// Replace the plan mid-test (e.g. switch fault classes). Resets the
    /// spent-budget counter; the rng reseeds from the new plan.
    pub fn set_plan(&self, plan: FaultPlan) {
        let mut state = lock(&self.state);
        state.rng = (plan.seed ^ 0x9E37_79B9_7F4A_7C15).max(1);
        state.spent = 0;
        state.plan = plan;
    }

    /// Injection counts so far.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Draw one seeded decision for a fault of probability `p`, spending
    /// budget when it fires.
    fn roll(&self, p: f64) -> bool {
        if p <= 0.0 || !self.enabled.load(Relaxed) {
            return false;
        }
        let mut state = lock(&self.state);
        if state.plan.max_faults.is_some_and(|cap| state.spent >= cap) {
            return false;
        }
        // xorshift64: deterministic in the seed, no external RNG dep.
        let mut x = state.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        state.rng = x;
        let fired = ((x >> 11) as f64 / (1u64 << 53) as f64) < p;
        if fired {
            state.spent += 1;
        }
        fired
    }

    fn maybe_slow(&self) {
        let (p, delay) = {
            let state = lock(&self.state);
            (state.plan.slow_io, state.plan.slow_io_delay)
        };
        if self.roll(p) {
            self.counters.slow_ios.fetch_add(1, Relaxed);
            std::thread::sleep(delay);
        }
    }

    fn maybe_transient(&self, op: &str) -> io::Result<()> {
        let p = lock(&self.state).plan.transient_error;
        if self.roll(p) {
            self.counters.transient_errors.fetch_add(1, Relaxed);
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient fault during {op}"),
            ));
        }
        Ok(())
    }
}

/// Poison-tolerant lock: a panicking test thread must not wedge the
/// injection schedule for every other thread.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl FileOps for FaultyFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.maybe_slow();
        self.maybe_transient("read_dir")?;
        self.inner.read_dir_names(dir)
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        self.maybe_slow();
        self.maybe_transient("read")?;
        let text = self.inner.read_to_string(path)?;
        let p = lock(&self.state).plan.partial_read;
        if self.roll(p) && !text.is_empty() {
            self.counters.partial_reads.fetch_add(1, Relaxed);
            // Cut at half, snapped to a char boundary: what a short read
            // that went unnoticed would hand back.
            let mut cut = text.len() / 2;
            while cut > 0 && !text.is_char_boundary(cut) {
                cut -= 1;
            }
            return Ok(text[..cut].to_string());
        }
        Ok(text)
    }

    fn read_bytes(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.maybe_slow();
        self.maybe_transient("read")?;
        let data = self.inner.read_bytes(path)?;
        let p = lock(&self.state).plan.partial_read;
        if self.roll(p) && !data.is_empty() {
            self.counters.partial_reads.fetch_add(1, Relaxed);
            // Binary reads truncate at the raw byte level — no char
            // boundary to snap to, exactly like a short read(2).
            return Ok(data[..data.len() / 2].to_vec());
        }
        Ok(data)
    }

    // `supports_mmap` stays `false` (the trait default): every read under
    // fault weather must flow through this seam, so the zero-copy bypass
    // is never taken during chaos tests.

    fn write_durable(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.maybe_slow();
        self.maybe_transient("write")?;
        let p = lock(&self.state).plan.torn_write;
        if self.roll(p) {
            self.counters.torn_writes.fetch_add(1, Relaxed);
            // Model a crash mid-write: a prefix reaches the disk, the
            // caller sees an error, and the torn file stays behind.
            let torn = &data[..data.len() / 2];
            let _ = self.inner.write_durable(path, torn);
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected torn write: crash mid-write",
            ));
        }
        self.inner.write_durable(path, data)
    }

    fn create_new(&self, path: &Path) -> io::Result<()> {
        self.maybe_transient("create_new")?;
        self.inner.create_new(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.maybe_slow();
        self.maybe_transient("rename")?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.maybe_transient("sync_dir")?;
        self.inner.sync_dir(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("anchors-faults-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn schedules_replay_from_the_seed() {
        let dir = tmp("replay");
        let run = || {
            let ffs = FaultyFs::new(FaultPlan::none(7).with_transient_error(0.5));
            (0..32)
                .map(|i| {
                    // Injected faults are Interrupted; the real miss is
                    // NotFound — the distinction exposes the schedule.
                    ffs.read_to_string(&dir.join(format!("missing-{i}")))
                        .unwrap_err()
                        .kind()
                        == io::ErrorKind::Interrupted
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run(), "same seed, same schedule");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_leaves_a_prefix_and_errors() {
        let dir = tmp("torn");
        let ffs = FaultyFs::new(FaultPlan::none(3).with_torn_write(1.0));
        let path = dir.join("t.txt");
        let err = ffs.write_durable(&path, b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(fs::read_to_string(&path).unwrap(), "01234");
        assert_eq!(ffs.counters().torn_writes.load(Relaxed), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_read_truncates_and_budget_heals() {
        let dir = tmp("partial");
        let path = dir.join("p.txt");
        fs::write(&path, "abcdefgh").unwrap();
        let ffs = FaultyFs::new(FaultPlan::none(5).with_partial_read(1.0).with_max_faults(1));
        assert_eq!(ffs.read_to_string(&path).unwrap(), "abcd", "fault 1 fires");
        assert_eq!(
            ffs.read_to_string(&path).unwrap(),
            "abcdefgh",
            "budget spent, healed"
        );
        assert_eq!(ffs.counters().total(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_byte_read_truncates_mid_byte() {
        let dir = tmp("partial-bytes");
        let path = dir.join("b.bin");
        fs::write(&path, [0u8, 1, 2, 3, 4, 5, 6, 7]).unwrap();
        let ffs = FaultyFs::new(FaultPlan::none(5).with_partial_read(1.0).with_max_faults(1));
        assert_eq!(ffs.read_bytes(&path).unwrap(), vec![0u8, 1, 2, 3]);
        assert_eq!(ffs.read_bytes(&path).unwrap().len(), 8, "budget healed");
        assert!(!ffs.supports_mmap(), "chaos runs never bypass the seam");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_fs_is_transparent() {
        let dir = tmp("disabled");
        let ffs = FaultyFs::new(
            FaultPlan::none(1)
                .with_torn_write(1.0)
                .with_transient_error(1.0),
        );
        ffs.set_enabled(false);
        let path = dir.join("ok.txt");
        ffs.write_durable(&path, b"fine").unwrap();
        assert_eq!(ffs.read_to_string(&path).unwrap(), "fine");
        assert_eq!(ffs.counters().total(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
