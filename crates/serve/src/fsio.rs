//! The filesystem seam the registry talks through.
//!
//! Every durable operation the [`crate::registry::Registry`] performs goes
//! through the [`FileOps`] trait instead of calling `std::fs` directly.
//! Production uses [`RealFs`], which adds the fsync discipline a
//! crash-safe store needs (data file synced before the rename, directory
//! synced after it). Tests swap in [`crate::faults::FaultyFs`], which
//! wraps `RealFs` and injects torn writes, partial reads, transient
//! errors, and slow I/O on a seeded schedule — the serving-layer analogue
//! of `anchors_corpus::faults`.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Filesystem operations the registry needs, injectable for fault tests.
///
/// Implementations must be cheap to share behind an `Arc`: the registry is
/// `Clone` and may be used from many serving threads at once.
pub trait FileOps: fmt::Debug + Send + Sync {
    /// Create `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// File names (not paths) of the entries in `dir`. Entries whose
    /// names are not valid UTF-8 are skipped.
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>>;

    /// Read a whole file as UTF-8 text.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;

    /// Read a whole file as raw bytes (the binary-artifact read path).
    fn read_bytes(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Whether callers may bypass this seam and map files directly
    /// (the zero-copy load path). `false` by default so any injected
    /// implementation — fault weather included — keeps every read
    /// flowing through the trait.
    fn supports_mmap(&self) -> bool {
        false
    }

    /// Create `path`, write all of `data`, and fsync the file before
    /// returning — after `Ok`, the bytes are on stable storage (though
    /// the *name* may not be until the directory is synced).
    fn write_durable(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Create a new empty file, failing with `AlreadyExists` if `path`
    /// is already present. This is the registry's version-claim
    /// primitive: `create_new` is atomic at the filesystem level, so two
    /// concurrent savers can never both claim the same version.
    fn create_new(&self, path: &Path) -> io::Result<()>;

    /// Atomically rename `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Remove one file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// fsync the directory itself, making completed renames and creates
    /// inside it durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production [`FileOps`]: `std::fs` plus fsync discipline.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl FileOps for RealFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        Ok(names)
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        fs::read_to_string(path)
    }

    fn read_bytes(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn supports_mmap(&self) -> bool {
        true
    }

    fn write_durable(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut file = fs::File::create(path)?;
        file.write_all(data)?;
        file.sync_all()
    }

    fn create_new(&self, path: &Path) -> io::Result<()> {
        fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map(|_| ())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it is how POSIX
        // makes renames within it durable; on platforms where directories
        // cannot be opened this degrades to a no-op error we swallow at
        // the call site only if the platform says so.
        fs::File::open(dir)?.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_fs_roundtrips_and_claims() {
        let dir = std::env::temp_dir().join(format!("anchors-fsio-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let ops = RealFs;
        ops.create_dir_all(&dir).unwrap();
        let p = dir.join("a.txt");
        ops.write_durable(&p, b"hello").unwrap();
        assert_eq!(ops.read_to_string(&p).unwrap(), "hello");
        assert_eq!(ops.read_bytes(&p).unwrap(), b"hello");
        assert!(ops.supports_mmap(), "the real filesystem can map files");

        let claim = dir.join("claim");
        ops.create_new(&claim).unwrap();
        let again = ops.create_new(&claim).unwrap_err();
        assert_eq!(again.kind(), io::ErrorKind::AlreadyExists);

        ops.rename(&p, &dir.join("b.txt")).unwrap();
        ops.sync_dir(&dir).unwrap();
        let mut names = ops.read_dir_names(&dir).unwrap();
        names.sort();
        assert_eq!(names, vec!["b.txt", "claim"]);
        ops.remove_file(&claim).unwrap();
        assert_eq!(ops.read_dir_names(&dir).unwrap(), vec!["b.txt"]);
        let _ = fs::remove_dir_all(&dir);
    }
}
