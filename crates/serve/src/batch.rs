//! Request batching: N pending single-course queries → one matrix solve.
//!
//! A [`BatchQueue`] accumulates [`CourseQuery`]s as they arrive and, on
//! [`flush`](BatchQueue::flush), answers all of them with a single
//! matrix-level fold-in (`try_nnls_multi` forms the Gram matrix and every
//! cross-product once) instead of one NNLS solve per request. Batch
//! assembly (per-query tag resolution and vectorization) fans out across
//! the outer thread pool — see `anchors_linalg::parallel` — while the
//! responses still come back in arrival order and are bitwise identical
//! to what the per-query path would have produced at any thread count.

use crate::engine::{CourseQuery, QueryEngine, QueryResponse};
use crate::error::ServeError;

/// An accumulator of pending queries awaiting one batched solve.
#[derive(Debug, Default)]
pub struct BatchQueue {
    pending: Vec<CourseQuery>,
}

impl BatchQueue {
    /// An empty queue.
    pub fn new() -> Self {
        BatchQueue::default()
    }

    /// Enqueue a query; returns its index in the next flush's responses.
    pub fn push(&mut self, query: CourseQuery) -> usize {
        self.pending.push(query);
        self.pending.len() - 1
    }

    /// Number of pending queries.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Answer every pending query with one matrix-level solve, in arrival
    /// order, draining the queue. An error (e.g. an unknown tag code in
    /// any query) leaves the queue drained — the batch is rejected as a
    /// unit, mirroring how a half-solved batch cannot be served.
    pub fn flush(&mut self, engine: &QueryEngine) -> Result<Vec<QueryResponse>, ServeError> {
        let queries = std::mem::take(&mut self.pending);
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        engine.query_batch(&queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::FittedModel;
    use anchors_curricula::{cs2013, pdc12};
    use anchors_factor::{NnmfModel, NnmfRecovery};
    use anchors_linalg::{Backend, Matrix};
    use anchors_materials::{CourseLabel, TagSpace};

    fn toy_engine() -> QueryEngine {
        let cs = cs2013();
        let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(8));
        let model = NnmfModel {
            w: Matrix::from_fn(5, 2, |i, j| ((i + j) % 3) as f64 * 0.5),
            h: Matrix::from_fn(2, 8, |i, j| ((i * 8 + j) % 4) as f64 * 0.25 + 0.05),
            loss: 0.3,
            iterations: 5,
            converged: true,
            winning_seed: 1,
            recovery: NnmfRecovery::default(),
        };
        let artifact = FittedModel::new("toy", cs, &space, &model, Backend::Dense).expect("valid");
        QueryEngine::new(artifact, cs, pdc12()).expect("engine")
    }

    #[test]
    fn flush_matches_per_query_answers_and_drains() {
        let engine = toy_engine();
        let codes = &engine.model().tag_codes;
        let mut queue = BatchQueue::new();
        assert!(queue.is_empty());
        assert_eq!(queue.flush(&engine).unwrap().len(), 0);

        let queries: Vec<CourseQuery> = (0..3)
            .map(|i| {
                CourseQuery::new(
                    format!("q{i}"),
                    vec![CourseLabel::Cs1],
                    codes.iter().skip(i).cloned().collect(),
                )
            })
            .collect();
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(queue.push(q.clone()), i);
        }
        assert_eq!(queue.len(), 3);

        let batched = queue.flush(&engine).unwrap();
        assert!(queue.is_empty());
        assert_eq!(batched.len(), 3);
        for (q, b) in queries.iter().zip(&batched) {
            let single = engine.query(q).unwrap();
            assert_eq!(b.name, q.name);
            assert_eq!(single.loadings, b.loadings);
            assert_eq!(single.mixture, b.mixture);
        }
    }

    #[test]
    fn flush_through_f32_engine_matches_its_per_query_answers() {
        // BatchQueue takes the engine at flush time, so an f32-precision
        // engine flows through unchanged: the drained responses must match
        // that engine's own single-query answers bitwise.
        let engine = toy_engine();
        let engine_f32 = QueryEngine::with_precision(
            engine.model().clone(),
            cs2013(),
            pdc12(),
            crate::Precision::F32,
        )
        .expect("f32 engine");
        let codes = &engine_f32.model().tag_codes;
        let queries: Vec<CourseQuery> = (0..3)
            .map(|i| {
                CourseQuery::new(
                    format!("q{i}"),
                    vec![],
                    codes.iter().skip(i).take(4).cloned().collect(),
                )
            })
            .collect();
        let mut queue = BatchQueue::new();
        for q in &queries {
            queue.push(q.clone());
        }
        let drained = queue.flush(&engine_f32).unwrap();
        assert_eq!(drained.len(), 3);
        for (q, b) in queries.iter().zip(&drained) {
            let single = engine_f32.query(q).unwrap();
            assert_eq!(single.loadings, b.loadings);
            assert_eq!(single.mixture, b.mixture);
        }
    }

    #[test]
    fn bad_query_rejects_the_whole_batch() {
        let engine = toy_engine();
        let mut queue = BatchQueue::new();
        queue.push(CourseQuery::new(
            "good",
            vec![],
            vec![engine.model().tag_codes[0].clone()],
        ));
        queue.push(CourseQuery::new("bad", vec![], vec!["NO.SUCH.t9".into()]));
        assert!(matches!(
            queue.flush(&engine),
            Err(ServeError::UnknownTag { .. })
        ));
        assert!(queue.is_empty());
    }
}
