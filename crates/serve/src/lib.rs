//! # anchors-serve — serving layer for fitted anchor-point models
//!
//! Everything upstream of this crate is about *fitting*: building course
//! matrices, factorizing them, selecting ranks. This crate is about what
//! happens after a fit succeeds — packaging the result so a different
//! process, later, can answer questions with it:
//!
//! * [`FittedModel`] — a self-describing, portable artifact holding the
//!   frozen `W`/`H` factors, the tag space as dotted guideline codes, the
//!   backend choice, fit diagnostics, and a fingerprint of the ontology
//!   revision the model was trained against. Serialization is a
//!   hand-rolled JSON codec ([`json`]) whose `f64` round-trips are
//!   bitwise, so a saved model answers queries *identically* after reload.
//! * [`Registry`] — a crash-safe directory of `model-v<N>.json` /
//!   `model-v<N>.bin` artifacts: monotonically increasing versions
//!   claimed atomically, checksummed fsynced writes through a pluggable
//!   [`Codec`] seam (human-inspectable JSON or the raw-`f64` binary
//!   layout in [`binary`], selected by `ANCHORS_ARTIFACT_FORMAT`), a
//!   [`Registry::recover`] startup scan that quarantines corrupt
//!   artifacts, and a [`Registry::load_latest`] that falls back to
//!   the newest *good* version so a torn write degrades instead of downing
//!   the server. All I/O flows through the [`fsio::FileOps`] seam, which
//!   [`faults::FaultyFs`] can replace to inject seeded torn writes,
//!   partial reads, transient errors, and slow I/O.
//! * [`QueryEngine`] — fold-in inference: an unseen course's tag vector is
//!   NNLS-projected onto the frozen `H` (the exact subproblem the ANLS
//!   trainer solved, so training courses recover their own `W` rows),
//!   then routed through the paper's §5.2 recommender and, optionally,
//!   nearest-material search.
//! * [`SnapshotCache`] — read-mostly Arc-swap of the active model version;
//!   concurrent queries never block on a registry reload.
//! * [`BatchQueue`] — turns N pending single-course queries into one
//!   matrix-level solve via `try_nnls_multi`.

pub mod artifact;
pub mod batch;
pub mod binary;
pub mod cache;
pub mod codec;
pub mod engine;
pub mod error;
pub mod faults;
pub mod fsio;
pub mod json;
pub mod registry;
pub mod text_artifact;

pub use artifact::{FittedModel, SCHEMA_VERSION};
pub use batch::BatchQueue;
pub use binary::BinaryCodec;
pub use cache::{Snapshot, SnapshotCache};
pub use codec::{fnv1a_64, fnv1a_64_words, Artifact, ArtifactFormat, Codec, JsonCodec, FORMAT_ENV};
pub use engine::{
    fold_in_max_rel_err, CourseQuery, Precision, QueryEngine, QueryResponse,
    F32_FOLD_IN_MAX_REL_ERR, FOLD_IN_TOL, FOLD_IN_TOL_F32,
};
pub use error::ServeError;
pub use faults::{FaultCounters, FaultPlan, FaultyFs};
pub use fsio::{FileOps, RealFs};
pub use registry::{RecoveryReport, Registry, VersionPins};
pub use text_artifact::{
    text_from_binary, text_from_json, text_to_binary, text_to_json, TEXT_MAGIC, TEXT_SCHEMA_VERSION,
};
