//! Versioned little-endian binary artifact format (`model-v<N>.bin`).
//!
//! JSON artifacts pay a full decimal parse of every `W`/`H` entry on
//! every reload — tens of seconds for a 100k-course model. The binary
//! layout stores the factors as raw little-endian `f64` sections at
//! 8-byte-aligned offsets, so loading is a bounds-checked header walk
//! plus two straight memory copies, and (with the `mmap` feature on the
//! real filesystem) the file's page-cache bytes are mapped rather than
//! funnelled through a userspace read buffer.
//!
//! ## Byte layout (all integers and floats little-endian)
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0   | 8  | magic `b"ANCHBIN1"` |
//! | 8   | 4  | schema version (`u32`, same counter as JSON) |
//! | 12  | 4  | flags (`u32`, bits listed below) |
//! | 16  | 8  | ontology fingerprint (`u64`) |
//! | 24  | 8  | winning seed (`u64`) |
//! | 32  | 8  | loss (`f64`) |
//! | 40  | 8  | iterations (`u64`) |
//! | 48  | 8  | recovery: failed restarts (`u64`) |
//! | 56  | 8  | recovery: budget exceeded (`u64`) |
//! | 64  | 32 | `W` rows, `W` cols, `H` rows, `H` cols (`u64` each) |
//! | 96  | 40 | rank slot: k (`u64`), loss, relative error, duplicate score, separation (`f64` each); zeroed when absent |
//! | 136 | 32 | consensus slot: k, runs (`u64` each), dispersion, cophenetic (`f64` each); zeroed when absent |
//! | 168 | 8  | string-table length in bytes (`u64`) |
//! | 176 | …  | string table: name, guideline, tag-code count, tag codes (each string is `u64` length + UTF-8) |
//! | —   | …  | zero padding to the next 8-byte boundary |
//! | —   | …  | `W` section: rows·cols raw `f64` |
//! | —   | …  | `H` section: rows·cols raw `f64` |
//! | end−8 | 8 | word-chunked FNV-1a-64 of every preceding byte ([`fnv1a_64_words`]: 8-byte LE words, zero-padded tail, length mixed in last) |
//!
//! Flag bits: 0 converged, 1 reseeded, 2 NNDSVD fallback, 3 rank slot
//! present, 4 consensus slot present, 5 sparse backend. Unknown bits
//! reject as corruption.
//!
//! Decoding verifies the checksum trailer *first*, so truncation, torn
//! writes, partial reads, and bit rot all surface as the same typed
//! [`ServeError::ChecksumMismatch`] the JSON trailer produces — before
//! any field is trusted. The header walk after it is still fully
//! bounds-checked (never panics on arbitrary bytes).

use crate::artifact::{FittedModel, SCHEMA_VERSION};
use crate::codec::{fnv1a_64_words, ArtifactFormat, Codec};
use crate::error::ServeError;
use anchors_factor::{ConsensusStats, NnmfRecovery, RankDiagnostics};
use anchors_linalg::{Backend, Matrix};

/// File magic: "ANCHors BINary v1".
pub const MAGIC: [u8; 8] = *b"ANCHBIN1";
/// Fixed header size in bytes (string table starts here).
pub const HEADER_LEN: usize = 176;
/// Checksum trailer size in bytes.
const TRAILER_LEN: usize = 8;

const FLAG_CONVERGED: u32 = 1 << 0;
const FLAG_RESEEDED: u32 = 1 << 1;
const FLAG_NNDSVD: u32 = 1 << 2;
const FLAG_HAS_RANK: u32 = 1 << 3;
const FLAG_HAS_CONSENSUS: u32 = 1 << 4;
const FLAG_SPARSE: u32 = 1 << 5;
const FLAG_KNOWN: u32 =
    FLAG_CONVERGED | FLAG_RESEEDED | FLAG_NNDSVD | FLAG_HAS_RANK | FLAG_HAS_CONSENSUS | FLAG_SPARSE;

/// The binary artifact codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryCodec;

impl Codec for BinaryCodec {
    fn format(&self) -> ArtifactFormat {
        ArtifactFormat::Bin
    }

    fn encode(&self, model: &FittedModel) -> Vec<u8> {
        encode(model)
    }

    fn decode(&self, bytes: &[u8], source: &str) -> Result<FittedModel, ServeError> {
        decode(bytes, source)
    }

    fn verify(&self, bytes: &[u8], source: &str) -> Result<(), ServeError> {
        check_trailer(bytes, source).map(|_| ())
    }
}

pub fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

pub fn push_matrix(out: &mut Vec<u8>, m: &Matrix) {
    for &v in m.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn encode(model: &FittedModel) -> Vec<u8> {
    let mut flags = 0u32;
    if model.converged {
        flags |= FLAG_CONVERGED;
    }
    if model.recovery.reseeded {
        flags |= FLAG_RESEEDED;
    }
    if model.recovery.nndsvd_fallback {
        flags |= FLAG_NNDSVD;
    }
    if model.rank.is_some() {
        flags |= FLAG_HAS_RANK;
    }
    if model.consensus.is_some() {
        flags |= FLAG_HAS_CONSENSUS;
    }
    if model.backend == Backend::Sparse {
        flags |= FLAG_SPARSE;
    }

    let mut strings = Vec::new();
    push_str(&mut strings, &model.name);
    push_str(&mut strings, &model.guideline);
    strings.extend_from_slice(&(model.tag_codes.len() as u64).to_le_bytes());
    for code in &model.tag_codes {
        push_str(&mut strings, code);
    }

    let w_len = model.w.rows() * model.w.cols() * 8;
    let h_len = model.h.rows() * model.h.cols() * 8;
    let unpadded = HEADER_LEN + strings.len();
    let padding = (8 - unpadded % 8) % 8;
    let mut out = Vec::with_capacity(unpadded + padding + w_len + h_len + TRAILER_LEN);

    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&model.fingerprint.to_le_bytes());
    out.extend_from_slice(&model.winning_seed.to_le_bytes());
    out.extend_from_slice(&model.loss.to_le_bytes());
    out.extend_from_slice(&(model.iterations as u64).to_le_bytes());
    out.extend_from_slice(&(model.recovery.failed_restarts as u64).to_le_bytes());
    out.extend_from_slice(&(model.recovery.budget_exceeded as u64).to_le_bytes());
    for dim in [
        model.w.rows(),
        model.w.cols(),
        model.h.rows(),
        model.h.cols(),
    ] {
        out.extend_from_slice(&(dim as u64).to_le_bytes());
    }
    let rank = model.rank.as_ref();
    out.extend_from_slice(&rank.map_or(0, |r| r.k as u64).to_le_bytes());
    for v in [
        rank.map_or(0.0, |r| r.loss),
        rank.map_or(0.0, |r| r.relative_error),
        rank.map_or(0.0, |r| r.duplicate_score),
        rank.map_or(0.0, |r| r.separation),
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let cons = model.consensus.as_ref();
    out.extend_from_slice(&cons.map_or(0, |c| c.k as u64).to_le_bytes());
    out.extend_from_slice(&cons.map_or(0, |c| c.runs as u64).to_le_bytes());
    for v in [
        cons.map_or(0.0, |c| c.dispersion),
        cons.map_or(0.0, |c| c.cophenetic),
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&(strings.len() as u64).to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN, "fixed header layout drifted");

    out.extend_from_slice(&strings);
    out.resize(out.len() + padding, 0);
    push_matrix(&mut out, &model.w);
    push_matrix(&mut out, &model.h);

    let checksum = fnv1a_64_words(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Verify the checksum trailer; returns the covered payload on success.
pub fn check_trailer<'a>(bytes: &'a [u8], source: &str) -> Result<&'a [u8], ServeError> {
    if bytes.len() < TRAILER_LEN {
        return Err(ServeError::Corrupt {
            source: source.to_string(),
            detail: format!("{} bytes is too short for a checksum trailer", bytes.len()),
        });
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - TRAILER_LEN);
    let expected = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    let found = fnv1a_64_words(payload);
    if found != expected {
        return Err(ServeError::ChecksumMismatch {
            source: source.to_string(),
            expected,
            found,
        });
    }
    Ok(payload)
}

/// Bounds-checked little-endian reader over the checksum-verified
/// payload. Shared with the text-artifact binary codec.
pub struct Reader<'a> {
    pub bytes: &'a [u8],
    pub pos: usize,
    pub source: &'a str,
}

impl<'a> Reader<'a> {
    pub fn corrupt(&self, detail: String) -> ServeError {
        ServeError::Corrupt {
            source: self.source.to_string(),
            detail,
        }
    }

    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ServeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| self.corrupt(format!("truncated reading {what}")))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub fn u32(&mut self, what: &str) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    pub fn u64(&mut self, what: &str) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    pub fn f64(&mut self, what: &str) -> Result<f64, ServeError> {
        Ok(f64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    pub fn usize(&mut self, what: &str) -> Result<usize, ServeError> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| self.corrupt(format!("{what} {v} overflows usize")))
    }

    pub fn string(&mut self, what: &str) -> Result<String, ServeError> {
        let len = self.usize(what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| self.corrupt(format!("{what} is not valid UTF-8: {e}")))
    }

    pub fn matrix(&mut self, rows: usize, cols: usize, what: &str) -> Result<Matrix, ServeError> {
        let n = rows
            .checked_mul(cols)
            .and_then(|n| n.checked_mul(8))
            .ok_or_else(|| self.corrupt(format!("{what} dimensions overflow")))?;
        let raw = self.take(n, what)?;
        let values = raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        Ok(Matrix::from_vec(rows, cols, values))
    }
}

fn decode(bytes: &[u8], source: &str) -> Result<FittedModel, ServeError> {
    let payload = check_trailer(bytes, source)?;
    let mut r = Reader {
        bytes: payload,
        pos: 0,
        source,
    };
    let magic = r.take(MAGIC.len(), "magic")?;
    if magic != MAGIC {
        return Err(r.corrupt(format!("bad magic {magic:02x?}")));
    }
    let schema = r.u32("schema version")?;
    if schema != SCHEMA_VERSION {
        return Err(ServeError::SchemaVersion {
            found: schema,
            supported: SCHEMA_VERSION,
        });
    }
    let flags = r.u32("flags")?;
    if flags & !FLAG_KNOWN != 0 {
        return Err(r.corrupt(format!("unknown flag bits {:#x}", flags & !FLAG_KNOWN)));
    }
    let fingerprint = r.u64("fingerprint")?;
    let winning_seed = r.u64("winning seed")?;
    let loss = r.f64("loss")?;
    let iterations = r.usize("iterations")?;
    let failed_restarts = r.usize("failed restarts")?;
    let budget_exceeded = r.usize("budget exceeded")?;
    let w_rows = r.usize("W rows")?;
    let w_cols = r.usize("W cols")?;
    let h_rows = r.usize("H rows")?;
    let h_cols = r.usize("H cols")?;
    let rank_k = r.usize("rank k")?;
    let rank_vals = [
        r.f64("rank loss")?,
        r.f64("rank relative error")?,
        r.f64("rank duplicate score")?,
        r.f64("rank separation")?,
    ];
    let cons_k = r.usize("consensus k")?;
    let cons_runs = r.usize("consensus runs")?;
    let cons_vals = [
        r.f64("consensus dispersion")?,
        r.f64("consensus cophenetic")?,
    ];
    let strings_len = r.usize("string-table length")?;
    debug_assert_eq!(r.pos, HEADER_LEN, "fixed header layout drifted");

    let strings_end = HEADER_LEN
        .checked_add(strings_len)
        .filter(|&end| end <= payload.len())
        .ok_or_else(|| r.corrupt("string table extends past file end".into()))?;
    let name = r.string("name")?;
    let guideline = r.string("guideline")?;
    let n_codes = r.usize("tag-code count")?;
    if n_codes > strings_len {
        return Err(r.corrupt(format!("tag-code count {n_codes} exceeds table size")));
    }
    let mut tag_codes = Vec::with_capacity(n_codes);
    for i in 0..n_codes {
        tag_codes.push(r.string(&format!("tag code {i}"))?);
    }
    if r.pos != strings_end {
        return Err(r.corrupt(format!(
            "string table declared {strings_len} bytes but used {}",
            r.pos - HEADER_LEN
        )));
    }
    let padding = (8 - strings_end % 8) % 8;
    let pad = r.take(padding, "section padding")?;
    if pad.iter().any(|&b| b != 0) {
        return Err(r.corrupt("nonzero section padding".into()));
    }
    let w = r.matrix(w_rows, w_cols, "W section")?;
    let h = r.matrix(h_rows, h_cols, "H section")?;
    if r.pos != payload.len() {
        return Err(r.corrupt(format!(
            "{} trailing bytes after H section",
            payload.len() - r.pos
        )));
    }

    let model = FittedModel {
        name,
        guideline,
        fingerprint,
        backend: if flags & FLAG_SPARSE != 0 {
            Backend::Sparse
        } else {
            Backend::Dense
        },
        tag_codes,
        w,
        h,
        loss,
        iterations,
        converged: flags & FLAG_CONVERGED != 0,
        winning_seed,
        recovery: NnmfRecovery {
            failed_restarts,
            reseeded: flags & FLAG_RESEEDED != 0,
            nndsvd_fallback: flags & FLAG_NNDSVD != 0,
            budget_exceeded,
        },
        rank: (flags & FLAG_HAS_RANK != 0).then(|| RankDiagnostics {
            k: rank_k,
            loss: rank_vals[0],
            relative_error: rank_vals[1],
            duplicate_score: rank_vals[2],
            separation: rank_vals[3],
        }),
        consensus: (flags & FLAG_HAS_CONSENSUS != 0).then(|| ConsensusStats {
            k: cons_k,
            runs: cons_runs,
            dispersion: cons_vals[0],
            cophenetic: cons_vals[1],
        }),
    };
    model.check_shapes(source)?;
    Ok(model)
}

/// Zero-copy load path: map the file's pages read-only instead of
/// copying them through a userspace buffer. Gated on the `mmap` crate
/// feature; only used when the active [`crate::fsio::FileOps`] says
/// [`supports_mmap`](crate::fsio::FileOps::supports_mmap) — so fault
/// injection (which reports `false`) keeps full coverage of the read
/// path. Platforms without the raw-syscall implementation fall back to
/// an ordinary buffered read behind the same API.
#[cfg(feature = "mmap")]
pub mod mmap {
    use std::fs::File;
    use std::io;
    use std::path::Path;

    /// A read-only view of a file's bytes — a true mapping on Linux
    /// x86-64, a buffered read elsewhere.
    pub enum Mapping {
        /// Raw `mmap(2)` pages, unmapped on drop.
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        Mapped { ptr: *const u8, len: usize },
        /// Fallback buffer for platforms without the syscall shim.
        Buffered(Vec<u8>),
    }

    // The mapping is read-only and owned; sharing a `&Mapping` across
    // threads is as safe as sharing `&[u8]`.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl std::ops::Deref for Mapping {
        type Target = [u8];
        fn deref(&self) -> &[u8] {
            match self {
                #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
                Mapping::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
                Mapping::Buffered(buf) => buf,
            }
        }
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    impl Drop for Mapping {
        fn drop(&mut self) {
            if let Mapping::Mapped { ptr, len } = *self {
                const SYS_MUNMAP: usize = 11;
                unsafe {
                    syscall2(SYS_MUNMAP, ptr as usize, len);
                }
            }
        }
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    unsafe fn syscall2(n: usize, a1: usize, a2: usize) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[allow(clippy::too_many_arguments)]
    unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    /// Map `path` read-only. Empty files and mapping failures fall back
    /// to a buffered read so callers never need a second code path.
    pub fn map_file(path: &Path) -> io::Result<Mapping> {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            use std::os::unix::io::AsRawFd;
            const SYS_MMAP: usize = 9;
            const PROT_READ: usize = 1;
            const MAP_PRIVATE: usize = 2;
            let file = File::open(path)?;
            let len = file.metadata()?.len() as usize;
            if len > 0 {
                let ret = unsafe {
                    syscall6(
                        SYS_MMAP,
                        0,
                        len,
                        PROT_READ,
                        MAP_PRIVATE,
                        file.as_raw_fd() as usize,
                        0,
                    )
                };
                // Kernel errors come back as -errno in (-4096, 0).
                if !(-4096..=0).contains(&ret) {
                    return Ok(Mapping::Mapped {
                        ptr: ret as usize as *const u8,
                        len,
                    });
                }
            }
        }
        let _ = File::open(path)?; // surface NotFound identically on all paths
        std::fs::read(path).map(Mapping::Buffered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_curricula::cs2013;
    use anchors_factor::NnmfModel;
    use anchors_materials::TagSpace;

    fn toy(with_diag: bool) -> FittedModel {
        let cs = cs2013();
        let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(6));
        let model = NnmfModel {
            w: Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f64 * 0.25 + 0.125),
            h: Matrix::from_fn(2, 6, |i, j| 1.0 / ((i + 1) * (j + 3)) as f64),
            loss: 0.125,
            iterations: 17,
            converged: true,
            winning_seed: 0xDEAD_BEEF_1234_5678,
            recovery: NnmfRecovery {
                failed_restarts: 1,
                ..NnmfRecovery::default()
            },
        };
        let artifact = FittedModel::new("toy", cs, &space, &model, Backend::Sparse).unwrap();
        if with_diag {
            artifact
                .with_rank(RankDiagnostics {
                    k: 2,
                    loss: 0.125,
                    relative_error: 0.01,
                    duplicate_score: 0.2,
                    separation: 0.7,
                })
                .with_consensus(ConsensusStats {
                    k: 2,
                    runs: 20,
                    dispersion: 0.95,
                    cophenetic: 0.99,
                })
        } else {
            artifact
        }
    }

    fn assert_equivalent(a: &FittedModel, b: &FittedModel) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.guideline, b.guideline);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.backend, b.backend);
        assert_eq!(a.tag_codes, b.tag_codes);
        assert_eq!(a.w, b.w, "W bitwise identical");
        assert_eq!(a.h, b.h, "H bitwise identical");
        assert_eq!(a.loss.to_bits(), b.loss.to_bits());
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.converged, b.converged);
        assert_eq!(a.winning_seed, b.winning_seed);
        assert_eq!(a.recovery, b.recovery);
        assert_eq!(a.rank, b.rank);
        assert_eq!(a.consensus, b.consensus);
    }

    #[test]
    fn binary_roundtrip_is_bitwise() {
        for with_diag in [false, true] {
            let a = toy(with_diag);
            let bytes = BinaryCodec.encode(&a);
            assert_eq!(bytes.len() % 8, 0, "sections stay 8-byte aligned");
            BinaryCodec.verify(&bytes, "t").unwrap();
            let b = BinaryCodec.decode(&bytes, "t").unwrap();
            assert_equivalent(&a, &b);
            assert_eq!(
                BinaryCodec.encode(&b),
                bytes,
                "save→load→save is byte-identical"
            );
        }
    }

    #[test]
    fn json_and_binary_decode_to_the_same_model() {
        let a = toy(true);
        let via_json = crate::codec::JsonCodec
            .decode(&crate::codec::JsonCodec.encode(&a), "t")
            .unwrap();
        let via_bin = BinaryCodec.decode(&BinaryCodec.encode(&a), "t").unwrap();
        assert_equivalent(&via_json, &via_bin);
    }

    #[test]
    fn every_truncation_is_typed_never_a_panic() {
        let bytes = BinaryCodec.encode(&toy(true));
        for cut in 0..bytes.len() {
            let err = BinaryCodec.decode(&bytes[..cut], "t").unwrap_err();
            assert!(err.is_corruption(), "cut at {cut}: {err}");
        }
        // Any truncation long enough to carry a trailer is specifically a
        // checksum mismatch — the typed error retry loops key on.
        let half = BinaryCodec.decode(&bytes[..bytes.len() / 2], "t");
        assert!(
            matches!(half, Err(ServeError::ChecksumMismatch { .. })),
            "{half:?}"
        );
    }

    #[test]
    fn single_byte_corruption_is_always_caught() {
        let bytes = BinaryCodec.encode(&toy(false));
        // Flip one bit in every 97th byte (covering header, strings,
        // sections, and trailer) — the checksum must catch each.
        for pos in (0..bytes.len()).step_by(97) {
            let mut evil = bytes.clone();
            evil[pos] ^= 0x10;
            let err = BinaryCodec.decode(&evil, "t").unwrap_err();
            assert!(err.is_corruption(), "byte {pos}: {err}");
        }
    }

    #[test]
    fn future_schema_is_rejected_after_checksum() {
        let a = toy(false);
        let mut bytes = BinaryCodec.encode(&a);
        bytes[8] = 99; // schema_version LE low byte
        let len = bytes.len();
        let sum = fnv1a_64_words(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            BinaryCodec.decode(&bytes, "t"),
            Err(ServeError::SchemaVersion { found: 99, .. })
        ));
    }

    #[cfg(feature = "mmap")]
    #[test]
    fn mmap_load_matches_buffered_read() {
        let dir = std::env::temp_dir().join(format!("anchors-mmap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.bin");
        let bytes = BinaryCodec.encode(&toy(true));
        std::fs::write(&path, &bytes).unwrap();
        let mapping = mmap::map_file(&path).unwrap();
        assert_eq!(&mapping[..], &bytes[..], "mapped bytes identical");
        let model = BinaryCodec.decode(&mapping, "m.bin").unwrap();
        assert_equivalent(&toy(true), &model);
        assert!(mmap::map_file(&dir.join("missing.bin")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
