//! Minimal self-contained JSON codec for model artifacts.
//!
//! The artifact format must round-trip `f64` factor entries *bitwise*: a
//! model loaded from disk has to answer queries identically to the
//! in-memory model it was saved from. Rust's `f64` `Display` produces the
//! shortest decimal string that parses back to the same bits, so writing
//! with `{}` and reading with `str::parse::<f64>` is an exact round-trip
//! for every finite value — no binary sidecar needed, and the artifacts
//! stay human-inspectable. `u64` identity fields (fingerprints, seeds)
//! exceed the 2^53 integer range of JSON numbers and are therefore encoded
//! as decimal strings.

use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep insertion order, so a
/// write→parse→write cycle is byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a nonnegative integer (rejecting fractional numbers).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= (1u64 << 53) as f64 => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// The value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64` encoded as a decimal string.
    pub fn as_u64_str(&self) -> Option<u64> {
        self.as_str().and_then(|s| s.parse().ok())
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string, rejecting documents JSON
    /// cannot represent: a NaN or ±Inf anywhere in the tree returns a
    /// [`NonFiniteError`] locating the value instead of emitting text
    /// (`NaN`, `inf`) that [`parse`] — or any JSON parser — would reject,
    /// which would silently break the write→parse round-trip.
    pub fn try_write(&self) -> Result<String, NonFiniteError> {
        let mut out = String::new();
        self.write_into(&mut out)?;
        Ok(out)
    }

    /// Serialize to a compact JSON string.
    ///
    /// # Panics
    /// Panics on non-finite numbers — use [`Json::try_write`] when the
    /// document is not already validated finite (artifacts are, via
    /// `FittedModel::check_shapes`, so a NaN here is a programmer error).
    pub fn write(&self) -> String {
        match self.try_write() {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    fn write_into(&self, out: &mut String) -> Result<(), NonFiniteError> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if !v.is_finite() {
                    return Err(NonFiniteError {
                        value: *v,
                        path: String::new(),
                    });
                }
                // Shortest round-trip form; integers print without ".0",
                // which still parses back to the same f64.
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out)
                        .map_err(|e| e.under(&format!("[{i}]")))?;
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_into(out).map_err(|e| e.under(&format!(".{k}")))?;
                }
                out.push('}');
            }
        }
        Ok(())
    }
}

/// A document holds a number JSON cannot encode (NaN or ±Inf). Carries
/// the path to the offending value, built as the error unwinds.
#[derive(Debug, Clone, PartialEq)]
pub struct NonFiniteError {
    /// The non-finite value.
    pub value: f64,
    /// Dotted/indexed path to it from the document root (e.g.
    /// `".w.data[3]"`; empty when the root itself is the number).
    pub path: String,
}

impl NonFiniteError {
    fn under(mut self, segment: &str) -> Self {
        self.path = format!("{segment}{}", self.path);
        self
    }
}

impl std::fmt::Display for NonFiniteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON cannot encode non-finite number {} at document root{}",
            self.value, self.path
        )
    }
}

impl std::error::Error for NonFiniteError {}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset, for precise corrupt-artifact
/// reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.detail)
    }
}

/// Parse a JSON document (one value spanning the whole input).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(c) {
                                Some(c) => s.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // hex4 leaves pos past the digits; continue
                            // without the +1 below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => Err(self.err(format!("invalid number {text:?}"))),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_structures() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("CS1 \"intro\"\n".into())),
            ("k".into(), Json::Num(3.0)),
            (
                "data".into(),
                Json::Arr(vec![Json::Num(0.1), Json::Num(-2.5e-12), Json::Bool(true)]),
            ),
            ("none".into(), Json::Null),
        ]);
        let text = doc.write();
        let back = parse(&text).expect("parses");
        assert_eq!(back, doc);
        assert_eq!(back.write(), text, "write→parse→write is stable");
    }

    #[test]
    fn f64_roundtrip_is_bitwise() {
        // Awkward values: subnormals, negative zero survivors, repeating
        // fractions, and values near the integer boundary.
        for &v in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 8.0,
            1e308,
            -123456.789012345678,
            (1u64 << 53) as f64 + 2.0,
        ] {
            let text = Json::Num(v).write();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} via {text}");
        }
    }

    #[test]
    fn non_finite_numbers_are_typed_errors_not_invalid_json() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Json::Num(v).try_write().unwrap_err();
            assert_eq!(err.path, "");
            assert_eq!(v.to_bits(), err.value.to_bits());
        }
        // Nested: the error names the path to the bad entry.
        let doc = Json::Obj(vec![(
            "w".into(),
            Json::Obj(vec![(
                "data".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(f64::NAN)]),
            )]),
        )]);
        let err = doc.try_write().unwrap_err();
        assert_eq!(err.path, ".w.data[1]");
        assert!(err.to_string().contains(".w.data[1]"), "{err}");
        // Finite documents are unaffected and agree with `write`.
        let fine = Json::Arr(vec![Json::Num(0.5), Json::Str("ok".into())]);
        assert_eq!(fine.try_write().unwrap(), fine.write());
    }

    #[test]
    fn u64_identity_fields_roundtrip_as_strings() {
        let v = u64::MAX - 12345;
        let doc = Json::Str(v.to_string());
        let back = parse(&doc.write()).unwrap();
        assert_eq!(back.as_u64_str(), Some(v));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""café 😀""#).unwrap(), Json::Str("café 😀".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "\"unterminated",
            "01x",
            "{\"a\":1} trailing",
            "nul",
            "[1 2]",
            "\"bad \\q escape\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
        // Truncation anywhere in a valid document is always an error.
        let full = Json::Obj(vec![
            ("w".into(), Json::Arr(vec![Json::Num(1.5), Json::Num(2.5)])),
            ("tag".into(), Json::Str("SDF.FPC.t1".into())),
        ])
        .write();
        for cut in 1..full.len() {
            assert!(parse(&full[..cut]).is_err(), "truncated at {cut}");
        }
    }
}
