//! Typed errors of the serving layer, in the same taxonomy style as
//! `anchors_materials::ImportError` and `anchors_core::AnchorsError`:
//! every failure mode is a matchable variant, not a string.

use anchors_linalg::LinalgError;
use std::fmt;

/// Any failure the serving layer can surface.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// An artifact failed to parse (malformed, truncated, or
    /// shape-inconsistent JSON).
    Corrupt {
        /// Where the artifact came from (file path or `"<memory>"`).
        source: String,
        /// What was wrong.
        detail: String,
    },
    /// The artifact was written by an incompatible schema revision.
    SchemaVersion {
        /// Version recorded in the artifact.
        found: u32,
        /// Version this build reads.
        supported: u32,
    },
    /// The artifact was fitted against a different ontology revision than
    /// the one it is being served with.
    FingerprintMismatch {
        /// Guideline name recorded in the artifact.
        guideline: String,
        /// Fingerprint recorded in the artifact.
        expected: u64,
        /// Fingerprint of the live ontology.
        found: u64,
    },
    /// A tag code in the artifact does not resolve against the ontology.
    UnknownTag {
        /// The unresolvable dotted code.
        code: String,
    },
    /// The requested model version does not exist in the registry.
    VersionNotFound {
        /// The missing version.
        version: u64,
    },
    /// The registry holds no models at all.
    EmptyRegistry,
    /// An artifact's embedded content checksum does not match its bytes:
    /// bit rot, a torn write that dodged the JSON parser, or a partial
    /// read.
    ChecksumMismatch {
        /// Where the artifact came from.
        source: String,
        /// Checksum recorded in the trailer.
        expected: u64,
        /// Checksum of the payload actually read.
        found: u64,
    },
    /// Filesystem I/O failed.
    Io {
        /// Offending path.
        path: String,
        /// OS error rendered as text.
        detail: String,
        /// Whether the failure is retryable (`Interrupted`, `WouldBlock`,
        /// `TimedOut`) — the signal the serving layer's capped-backoff
        /// retry keys on.
        transient: bool,
    },
    /// A fold-in delta chains from a full model version that no longer
    /// exists in the registry — the base was GC'd or deleted out from
    /// under the delta. Referential damage, not byte damage: the delta
    /// file itself is intact, so this is neither transient nor
    /// corruption, and recovery never quarantines over it.
    DeltaBaseMissing {
        /// Version of the delta artifact holding the dangling reference.
        delta: u64,
        /// The full-model version the delta chains from.
        base: u64,
    },
    /// A query vector/batch has the wrong number of tag columns.
    QueryShape {
        /// Columns the model's tag space has.
        expected: usize,
        /// Columns the query supplied.
        found: usize,
    },
    /// The fold-in solve failed.
    Linalg(LinalgError),
}

impl ServeError {
    /// Whether retrying the same operation can plausibly succeed: only
    /// transient I/O qualifies. Corruption and schema trouble never heal
    /// by retrying — those fall back or quarantine instead.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ServeError::Io {
                transient: true,
                ..
            }
        )
    }

    /// Whether this is artifact-level damage (bad bytes on disk, not a
    /// bad filesystem): the class `load_latest` skips over when falling
    /// back and `recover` quarantines.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            ServeError::Corrupt { .. }
                | ServeError::ChecksumMismatch { .. }
                | ServeError::SchemaVersion { .. }
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Corrupt { source, detail } => {
                write!(f, "corrupt model artifact at {source}: {detail}")
            }
            ServeError::SchemaVersion { found, supported } => {
                write!(
                    f,
                    "artifact schema version {found} is not readable (supported: {supported})"
                )
            }
            ServeError::FingerprintMismatch {
                guideline,
                expected,
                found,
            } => {
                write!(
                    f,
                    "artifact was fitted against {guideline:?} revision {expected:#018x}, \
                     live ontology is {found:#018x}"
                )
            }
            ServeError::UnknownTag { code } => {
                write!(
                    f,
                    "artifact tag code {code:?} does not resolve to a leaf item"
                )
            }
            ServeError::VersionNotFound { version } => {
                write!(f, "model version {version} not found in registry")
            }
            ServeError::EmptyRegistry => write!(f, "registry holds no model versions"),
            ServeError::ChecksumMismatch {
                source,
                expected,
                found,
            } => {
                write!(
                    f,
                    "checksum mismatch at {source}: trailer says {expected:#018x}, \
                     content hashes to {found:#018x}"
                )
            }
            ServeError::Io {
                path,
                detail,
                transient,
            } => {
                let kind = if *transient {
                    "transient I/O error"
                } else {
                    "I/O error"
                };
                write!(f, "{kind} at {path}: {detail}")
            }
            ServeError::DeltaBaseMissing { delta, base } => {
                write!(
                    f,
                    "delta version {delta} chains from model version {base}, \
                     which is not in the registry"
                )
            }
            ServeError::QueryShape { expected, found } => {
                write!(
                    f,
                    "query has {found} tag columns, model's tag space has {expected}"
                )
            }
            ServeError::Linalg(e) => write!(f, "fold-in solve failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ServeError {
    fn from(e: LinalgError) -> Self {
        ServeError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        let e = ServeError::Corrupt {
            source: "model-v3.json".into(),
            detail: "unexpected end of input".into(),
        };
        assert!(e.to_string().contains("model-v3.json"));
        let e = ServeError::FingerprintMismatch {
            guideline: "ACM/IEEE CS2013".into(),
            expected: 1,
            found: 2,
        };
        assert!(e.to_string().contains("CS2013"));
        let e: ServeError = LinalgError::Singular { op: "nnls_multi" }.into();
        assert!(e.to_string().contains("fold-in"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ServeError::EmptyRegistry).is_none());
    }

    #[test]
    fn transient_and_corruption_classes_are_disjoint() {
        let transient = ServeError::Io {
            path: "models".into(),
            detail: "interrupted".into(),
            transient: true,
        };
        assert!(transient.is_transient());
        assert!(!transient.is_corruption());
        assert!(transient.to_string().contains("transient"));

        let hard = ServeError::Io {
            path: "models".into(),
            detail: "permission denied".into(),
            transient: false,
        };
        assert!(!hard.is_transient());
        assert!(!hard.is_corruption());

        let checksum = ServeError::ChecksumMismatch {
            source: "model-v3.json".into(),
            expected: 0xABCD,
            found: 0x1234,
        };
        assert!(checksum.is_corruption());
        assert!(!checksum.is_transient());
        assert!(checksum.to_string().contains("model-v3.json"));
        for e in [
            ServeError::Corrupt {
                source: "x".into(),
                detail: "d".into(),
            },
            ServeError::SchemaVersion {
                found: 9,
                supported: 1,
            },
        ] {
            assert!(e.is_corruption(), "{e}");
            assert!(!e.is_transient(), "{e}");
        }
    }

    #[test]
    fn dangling_delta_is_neither_transient_nor_corruption() {
        let e = ServeError::DeltaBaseMissing { delta: 4, base: 2 };
        assert!(!e.is_transient());
        assert!(!e.is_corruption(), "intact delta bytes must not quarantine");
        let msg = e.to_string();
        assert!(msg.contains("delta version 4"), "{msg}");
        assert!(msg.contains("model version 2"), "{msg}");
    }
}
