//! Read-mostly snapshot cache for the active model version.
//!
//! Serving threads call [`SnapshotCache::snapshot`], which takes a read
//! lock just long enough to clone an `Arc` — queries then run entirely on
//! the clone, so a registry reload never blocks an in-flight query and a
//! query never observes a half-swapped model. Reloads build the new
//! engine *outside* any lock and swap the `Arc` under a brief write lock.

use crate::engine::{Precision, QueryEngine};
use crate::error::ServeError;
use crate::registry::Registry;
use anchors_curricula::Ontology;
use std::sync::{Arc, RwLock};

/// One immutable serving snapshot: a model version and its frozen engine.
#[derive(Debug)]
pub struct Snapshot {
    /// Registry version this engine serves.
    pub version: u64,
    /// The frozen query engine.
    pub engine: QueryEngine,
}

/// Arc-swap of the active snapshot.
#[derive(Debug)]
pub struct SnapshotCache {
    active: RwLock<Arc<Snapshot>>,
    /// Fold-in precision every engine built by this cache serves at; the
    /// narrowed `f32` basis is converted inside `QueryEngine` construction,
    /// i.e. at reload time, never per query.
    precision: Precision,
}

impl SnapshotCache {
    /// Start serving a snapshot. Reloads through this cache rebuild at the
    /// engine's own precision.
    pub fn new(version: u64, engine: QueryEngine) -> Self {
        let precision = engine.precision();
        SnapshotCache {
            active: RwLock::new(Arc::new(Snapshot { version, engine })),
            precision,
        }
    }

    /// Build a cache from the newest registry version at `f64` precision.
    pub fn from_registry(
        registry: &Registry,
        cs: &'static Ontology,
        pdc: &'static Ontology,
    ) -> Result<Self, ServeError> {
        Self::from_registry_with_precision(registry, cs, pdc, Precision::F64)
    }

    /// Build a cache from the newest registry version at an explicit
    /// fold-in precision; subsequent [`reload`](Self::reload)s preserve it.
    pub fn from_registry_with_precision(
        registry: &Registry,
        cs: &'static Ontology,
        pdc: &'static Ontology,
        precision: Precision,
    ) -> Result<Self, ServeError> {
        let (version, model) = registry.load_latest()?;
        Ok(Self::new(
            version,
            QueryEngine::with_precision(model, cs, pdc, precision)?,
        ))
    }

    /// The fold-in precision this cache (re)builds engines at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The current snapshot. Cheap: clones an `Arc` under a read lock.
    ///
    /// Poison-tolerant: the lock only ever guards an `Arc` swap, which
    /// cannot be left half-done, so a reloader that panicked while
    /// holding the lock leaves a perfectly valid last-good snapshot — we
    /// recover it instead of cascading the panic into every serving
    /// thread.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.active.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Version currently being served.
    pub fn version(&self) -> u64 {
        self.snapshot().version
    }

    /// Swap in a new snapshot directly. Poison-tolerant for the same
    /// reason as [`snapshot`](Self::snapshot): the swap is atomic, so a
    /// dead writer cannot leave torn state behind.
    pub fn install(&self, version: u64, engine: QueryEngine) {
        let snap = Arc::new(Snapshot { version, engine });
        *self.active.write().unwrap_or_else(|e| e.into_inner()) = snap;
    }

    /// Reload the newest registry version. All loading, parsing, and
    /// engine construction happens before the write lock is taken, so
    /// concurrent `snapshot()` readers are never blocked on I/O. Returns
    /// the version now being served.
    pub fn reload(
        &self,
        registry: &Registry,
        cs: &'static Ontology,
        pdc: &'static Ontology,
    ) -> Result<u64, ServeError> {
        let (version, model) = registry.load_latest()?;
        let engine = QueryEngine::with_precision(model, cs, pdc, self.precision)?;
        self.install(version, engine);
        Ok(version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::FittedModel;
    use anchors_curricula::{cs2013, pdc12};
    use anchors_factor::{NnmfModel, NnmfRecovery};
    use anchors_linalg::{Backend, Matrix};
    use anchors_materials::TagSpace;

    fn toy_engine(seed: u64) -> QueryEngine {
        let cs = cs2013();
        let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(6));
        let model = NnmfModel {
            w: Matrix::from_fn(4, 2, |i, j| (i + j) as f64),
            h: Matrix::from_fn(2, 6, |i, j| ((i * 6 + j) % 3) as f64 * 0.5 + 0.1),
            loss: 0.1,
            iterations: 3,
            converged: true,
            winning_seed: seed,
            recovery: NnmfRecovery::default(),
        };
        let artifact = FittedModel::new("toy", cs, &space, &model, Backend::Dense).expect("valid");
        QueryEngine::new(artifact, cs, pdc12()).expect("engine")
    }

    #[test]
    fn poisoned_lock_never_takes_down_serving() {
        let cache = std::sync::Arc::new(SnapshotCache::new(1, toy_engine(1)));
        let poisoner = std::sync::Arc::clone(&cache);
        let died = std::thread::spawn(move || {
            let _guard = poisoner.active.write().unwrap();
            panic!("reloader dies while holding the snapshot lock");
        })
        .join();
        assert!(died.is_err(), "the poisoner must actually panic");
        // Readers recover the last-good snapshot instead of panicking...
        assert_eq!(cache.snapshot().version, 1);
        assert_eq!(cache.version(), 1);
        // ...and writers can still swap in fresh models afterwards.
        cache.install(2, toy_engine(2));
        assert_eq!(cache.snapshot().engine.model().winning_seed, 2);
    }

    #[test]
    fn cache_adopts_and_reports_engine_precision() {
        let cache = SnapshotCache::new(1, toy_engine(1));
        assert_eq!(cache.precision(), Precision::F64);
        let cs = cs2013();
        let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(6));
        let model = NnmfModel {
            w: Matrix::from_fn(4, 2, |i, j| (i + j) as f64),
            h: Matrix::from_fn(2, 6, |i, j| ((i * 6 + j) % 3) as f64 * 0.5 + 0.1),
            loss: 0.1,
            iterations: 3,
            converged: true,
            winning_seed: 7,
            recovery: NnmfRecovery::default(),
        };
        let artifact = FittedModel::new("toy", cs, &space, &model, Backend::Dense).expect("valid");
        let engine =
            QueryEngine::with_precision(artifact, cs, pdc12(), Precision::F32).expect("engine");
        let cache32 = SnapshotCache::new(1, engine);
        assert_eq!(cache32.precision(), Precision::F32);
        assert_eq!(cache32.snapshot().engine.precision(), Precision::F32);
    }

    #[test]
    fn install_swaps_atomically_for_readers() {
        let cache = SnapshotCache::new(1, toy_engine(1));
        let before = cache.snapshot();
        cache.install(2, toy_engine(2));
        // The old snapshot stays fully usable; the cache serves the new.
        assert_eq!(before.version, 1);
        assert_eq!(before.engine.model().winning_seed, 1);
        assert_eq!(cache.version(), 2);
        assert_eq!(cache.snapshot().engine.model().winning_seed, 2);
    }
}
