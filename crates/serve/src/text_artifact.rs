//! Registry codecs for the text-classification artifact.
//!
//! [`TextModel`] lives in `anchors-text`, which knows nothing about
//! serving. This module teaches the serving layer to persist it: a
//! hand-rolled JSON document mirroring the [`crate::artifact`] idiom
//! (u64s as decimal strings, matrices as `{rows, cols, data}`, bitwise
//! `f64` round-trips) and a checksum-framed binary layout mirroring
//! [`crate::binary`], both registered through the [`Artifact`] seam so a
//! [`crate::Registry`]`<TextModel>` gets the same crash-safe write,
//! quarantine, and fallback semantics as the factor-model registry —
//! under the `text-v<N>` stem, so both artifact kinds can share a
//! directory without colliding.
//!
//! ## Binary layout (`ANCHTXT1`)
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 8    | magic `ANCHTXT1` |
//! | 8      | 4    | schema version (u32 LE) |
//! | 12     | 4    | flags (u32 LE, must be 0) |
//! | 16     | 8    | ontology fingerprint (u64 LE) |
//! | 24     | 8    | featurizer seed (u64 LE) |
//! | 32     | 8    | `n_buckets` (u64 LE) |
//! | 40     | 8    | `char_ngram` (u64 LE) |
//! | 48     | 8    | `n_tags` (u64 LE) |
//! | 56     | 8    | `train_docs` (u64 LE) |
//! | 64     | 8    | `train_seed` (u64 LE) |
//! | 72     | 8    | `train_f1` (f64 LE bits) |
//! | 80     | 8    | string-table byte length (u64 LE) |
//! | 88     | var  | string table: name, guideline, tag codes |
//! | —      | 0–7  | zero padding to 8-byte alignment |
//! | —      | var  | `idf` (`n_buckets` f64), `weights` (`n_tags×n_buckets` f64), `bias`, `thresholds` (`n_tags` f64 each) |
//! | end−8  | 8    | [`fnv1a_64_words`] checksum of everything before it |
//!
//! Decode verifies the trailing checksum *first*, then walks the layout
//! with bounds-checked reads, then runs [`TextModel::check_shapes`] — a
//! torn or tampered file becomes a typed [`ServeError::Corrupt`]/
//! [`ServeError::ChecksumMismatch`], never a panic or a silently wrong
//! classifier.

use crate::binary::{check_trailer, push_str, Reader};
use crate::codec::{fnv1a_64_words, Artifact, ArtifactFormat};
use crate::error::ServeError;
use crate::json::{self, Json};
use anchors_linalg::Matrix;
use anchors_text::{FeaturizerConfig, TextModel};

/// Text-artifact schema revision this build writes and reads.
pub const TEXT_SCHEMA_VERSION: u32 = 1;

/// Magic prefix of the binary text-artifact layout.
pub const TEXT_MAGIC: &[u8; 8] = b"ANCHTXT1";

const HEADER_LEN: usize = 88;

fn corrupt(source: &str, detail: String) -> ServeError {
    ServeError::Corrupt {
        source: source.to_string(),
        detail,
    }
}

/// Serialize a [`TextModel`] to the JSON artifact document.
pub fn text_to_json(model: &TextModel) -> String {
    let floats = |xs: &[f64]| Json::Arr(xs.iter().map(|&v| Json::Num(v)).collect());
    let members = vec![
        (
            "schema_version".into(),
            Json::Num(f64::from(TEXT_SCHEMA_VERSION)),
        ),
        ("kind".into(), Json::Str("text".into())),
        ("name".into(), Json::Str(model.name.clone())),
        ("guideline".into(), Json::Str(model.guideline.clone())),
        (
            "fingerprint".into(),
            Json::Str(model.fingerprint.to_string()),
        ),
        (
            "tag_codes".into(),
            Json::Arr(
                model
                    .tag_codes
                    .iter()
                    .map(|c| Json::Str(c.clone()))
                    .collect(),
            ),
        ),
        (
            "featurizer".into(),
            Json::Obj(vec![
                ("n_buckets".into(), Json::Num(model.config.n_buckets as f64)),
                (
                    "char_ngram".into(),
                    Json::Num(model.config.char_ngram as f64),
                ),
                ("seed".into(), Json::Str(model.config.seed.to_string())),
            ]),
        ),
        ("idf".into(), floats(&model.idf)),
        (
            "weights".into(),
            Json::Obj(vec![
                ("rows".into(), Json::Num(model.weights.rows() as f64)),
                ("cols".into(), Json::Num(model.weights.cols() as f64)),
                ("data".into(), floats(model.weights.as_slice())),
            ]),
        ),
        ("bias".into(), floats(&model.bias)),
        ("thresholds".into(), floats(&model.thresholds)),
        ("train_docs".into(), Json::Num(model.train_docs as f64)),
        ("train_seed".into(), Json::Str(model.train_seed.to_string())),
        ("train_f1".into(), Json::Num(model.train_f1)),
    ];
    Json::Obj(members).write()
}

/// Parse a text-artifact JSON document. `source` labels errors (file
/// path or `"<memory>"`).
pub fn text_from_json(text: &str, source: &str) -> Result<TextModel, ServeError> {
    let corrupt = |detail: String| corrupt(source, detail);
    let doc = json::parse(text).map_err(|e| corrupt(e.to_string()))?;
    let field = |key: &str| {
        doc.get(key)
            .ok_or_else(|| corrupt(format!("missing {key:?}")))
    };
    let schema = field("schema_version")?
        .as_usize()
        .ok_or_else(|| corrupt("schema_version must be an integer".into()))?
        as u32;
    if schema != TEXT_SCHEMA_VERSION {
        return Err(ServeError::SchemaVersion {
            found: schema,
            supported: TEXT_SCHEMA_VERSION,
        });
    }
    match field("kind")?.as_str() {
        Some("text") => {}
        other => return Err(corrupt(format!("artifact kind {other:?} is not \"text\""))),
    }
    let string = |key: &str| -> Result<String, ServeError> {
        Ok(field(key)?
            .as_str()
            .ok_or_else(|| corrupt(format!("{key:?} must be a string")))?
            .to_string())
    };
    let num = |key: &str| -> Result<f64, ServeError> {
        field(key)?
            .as_f64()
            .ok_or_else(|| corrupt(format!("{key:?} must be a number")))
    };
    let u64_field = |key: &str| -> Result<u64, ServeError> {
        field(key)?
            .as_u64_str()
            .ok_or_else(|| corrupt(format!("{key:?} must be a u64 string")))
    };
    let floats = |key: &str| -> Result<Vec<f64>, ServeError> {
        field(key)?
            .as_arr()
            .ok_or_else(|| corrupt(format!("{key:?} must be an array")))?
            .iter()
            .map(|v| v.as_f64())
            .collect::<Option<Vec<f64>>>()
            .ok_or_else(|| corrupt(format!("{key:?} has a non-numeric entry")))
    };
    let tag_codes = field("tag_codes")?
        .as_arr()
        .ok_or_else(|| corrupt("tag_codes must be an array".into()))?
        .iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect::<Option<Vec<String>>>()
        .ok_or_else(|| corrupt("tag_codes must be strings".into()))?;
    let feat = field("featurizer")?;
    let feat_usize = |key: &str| -> Result<usize, ServeError> {
        feat.get(key)
            .and_then(Json::as_usize)
            .ok_or_else(|| corrupt(format!("featurizer missing {key:?}")))
    };
    let config = FeaturizerConfig {
        n_buckets: feat_usize("n_buckets")?,
        char_ngram: feat_usize("char_ngram")?,
        seed: feat
            .get("seed")
            .and_then(Json::as_u64_str)
            .ok_or_else(|| corrupt("featurizer missing \"seed\"".into()))?,
    };
    let w = field("weights")?;
    let rows = w
        .get("rows")
        .and_then(Json::as_usize)
        .ok_or_else(|| corrupt("weights missing rows".into()))?;
    let cols = w
        .get("cols")
        .and_then(Json::as_usize)
        .ok_or_else(|| corrupt("weights missing cols".into()))?;
    let data = w
        .get("data")
        .and_then(Json::as_arr)
        .ok_or_else(|| corrupt("weights missing data".into()))?;
    if data.len() != rows * cols {
        return Err(corrupt(format!(
            "weights have {} entries for a {rows}×{cols} matrix",
            data.len()
        )));
    }
    let values = data
        .iter()
        .map(|v| v.as_f64())
        .collect::<Option<Vec<f64>>>()
        .ok_or_else(|| corrupt("weights have a non-numeric entry".into()))?;
    let model = TextModel {
        name: string("name")?,
        guideline: string("guideline")?,
        fingerprint: u64_field("fingerprint")?,
        tag_codes,
        config,
        idf: floats("idf")?,
        weights: Matrix::from_vec(rows, cols, values),
        bias: floats("bias")?,
        thresholds: floats("thresholds")?,
        train_docs: field("train_docs")?
            .as_usize()
            .ok_or_else(|| corrupt("\"train_docs\" must be an integer".into()))?,
        train_seed: u64_field("train_seed")?,
        train_f1: num("train_f1")?,
    };
    model.check_shapes().map_err(|e| corrupt(e.to_string()))?;
    Ok(model)
}

fn push_f64s(out: &mut Vec<u8>, xs: &[f64]) {
    for &v in xs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Encode a [`TextModel`] to the checksum-framed binary layout.
pub fn text_to_binary(model: &TextModel) -> Vec<u8> {
    let mut strings = Vec::new();
    push_str(&mut strings, &model.name);
    push_str(&mut strings, &model.guideline);
    strings.extend_from_slice(&(model.tag_codes.len() as u64).to_le_bytes());
    for code in &model.tag_codes {
        push_str(&mut strings, code);
    }

    let mut out = Vec::new();
    out.extend_from_slice(TEXT_MAGIC);
    out.extend_from_slice(&TEXT_SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // flags
    out.extend_from_slice(&model.fingerprint.to_le_bytes());
    out.extend_from_slice(&model.config.seed.to_le_bytes());
    out.extend_from_slice(&(model.config.n_buckets as u64).to_le_bytes());
    out.extend_from_slice(&(model.config.char_ngram as u64).to_le_bytes());
    out.extend_from_slice(&(model.tag_codes.len() as u64).to_le_bytes());
    out.extend_from_slice(&(model.train_docs as u64).to_le_bytes());
    out.extend_from_slice(&model.train_seed.to_le_bytes());
    out.extend_from_slice(&model.train_f1.to_le_bytes());
    out.extend_from_slice(&(strings.len() as u64).to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN);
    out.extend_from_slice(&strings);
    let pad = (8 - out.len() % 8) % 8;
    out.extend(std::iter::repeat_n(0u8, pad));
    push_f64s(&mut out, &model.idf);
    push_f64s(&mut out, model.weights.as_slice());
    push_f64s(&mut out, &model.bias);
    push_f64s(&mut out, &model.thresholds);
    let checksum = fnv1a_64_words(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decode the binary text-artifact layout. Checksum is verified before
/// any field is trusted.
pub fn text_from_binary(bytes: &[u8], source: &str) -> Result<TextModel, ServeError> {
    let payload = check_trailer(bytes, source)?;
    if payload.len() < HEADER_LEN {
        return Err(corrupt(
            source,
            format!("{} bytes is too short for a text artifact", payload.len()),
        ));
    }
    let mut r = Reader {
        bytes: payload,
        pos: 0,
        source,
    };
    let magic = r.take(8, "magic")?;
    if magic != TEXT_MAGIC {
        return Err(corrupt(source, format!("bad magic {magic:02x?}")));
    }
    let schema = r.u32("schema version")?;
    if schema != TEXT_SCHEMA_VERSION {
        return Err(ServeError::SchemaVersion {
            found: schema,
            supported: TEXT_SCHEMA_VERSION,
        });
    }
    let flags = r.u32("flags")?;
    if flags != 0 {
        return Err(corrupt(source, format!("unknown flags {flags:#x}")));
    }
    let fingerprint = r.u64("fingerprint")?;
    let seed = r.u64("featurizer seed")?;
    let n_buckets = r.usize("n_buckets")?;
    let char_ngram = r.usize("char_ngram")?;
    let n_tags = r.usize("n_tags")?;
    let train_docs = r.usize("train_docs")?;
    let train_seed = r.u64("train_seed")?;
    let train_f1 = r.f64("train_f1")?;
    let strings_len = r.usize("string-table length")?;
    let strings_end = HEADER_LEN
        .checked_add(strings_len)
        .ok_or_else(|| corrupt(source, "string table overflows".into()))?;
    let name = r.string("name")?;
    let guideline = r.string("guideline")?;
    let n_codes = r.usize("tag-code count")?;
    if n_codes != n_tags {
        return Err(corrupt(
            source,
            format!("string table holds {n_codes} codes but header says {n_tags}"),
        ));
    }
    let mut tag_codes = Vec::with_capacity(n_tags);
    for i in 0..n_tags {
        tag_codes.push(r.string(&format!("tag code {i}"))?);
    }
    if r.pos != strings_end {
        return Err(corrupt(
            source,
            format!(
                "string table ends at {} but header declared {strings_end}",
                r.pos
            ),
        ));
    }
    let pad = (8 - r.pos % 8) % 8;
    let padding = r.take(pad, "padding")?;
    if padding.iter().any(|&b| b != 0) {
        return Err(corrupt(source, "non-zero padding".into()));
    }
    let idf = r.matrix(1, n_buckets, "idf")?.as_slice().to_vec();
    let weights = r.matrix(n_tags, n_buckets, "weights")?;
    let bias = r.matrix(1, n_tags, "bias")?.as_slice().to_vec();
    let thresholds = r.matrix(1, n_tags, "thresholds")?.as_slice().to_vec();
    if r.pos != payload.len() {
        return Err(corrupt(
            source,
            format!("{} trailing bytes after thresholds", payload.len() - r.pos),
        ));
    }
    let model = TextModel {
        name,
        guideline,
        fingerprint,
        tag_codes,
        config: FeaturizerConfig {
            n_buckets,
            char_ngram,
            seed,
        },
        idf,
        weights,
        bias,
        thresholds,
        train_docs,
        train_seed,
        train_f1,
    };
    model
        .check_shapes()
        .map_err(|e| corrupt(source, e.to_string()))?;
    Ok(model)
}

impl Artifact for TextModel {
    const STEM: &'static str = "text";

    fn encode_as(&self, format: ArtifactFormat) -> Vec<u8> {
        match format {
            ArtifactFormat::Json => crate::codec::frame(&text_to_json(self)).into_bytes(),
            ArtifactFormat::Bin => text_to_binary(self),
        }
    }

    fn decode_as(format: ArtifactFormat, bytes: &[u8], source: &str) -> Result<Self, ServeError> {
        match format {
            ArtifactFormat::Json => {
                let text = std::str::from_utf8(bytes)
                    .map_err(|e| corrupt(source, format!("invalid UTF-8: {e}")))?;
                let body = crate::codec::unframe(text, source)?;
                text_from_json(body, source)
            }
            ArtifactFormat::Bin => text_from_binary(bytes, source),
        }
    }

    fn verify_as(format: ArtifactFormat, bytes: &[u8], source: &str) -> Result<(), ServeError> {
        Self::decode_as(format, bytes, source).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_curricula::cs2013;

    const TRAILER_LEN: usize = 8;

    fn toy() -> TextModel {
        let cs = cs2013();
        let codes: Vec<String> = cs
            .leaf_items()
            .into_iter()
            .take(3)
            .map(|id| cs.node(id).code.clone())
            .collect();
        let config = FeaturizerConfig {
            n_buckets: 32,
            ..FeaturizerConfig::default()
        };
        TextModel {
            name: "toy-text".into(),
            guideline: cs.name.clone(),
            fingerprint: cs.fingerprint(),
            tag_codes: codes,
            config,
            idf: (0..32).map(|i| 1.0 + i as f64 * 0.03125).collect(),
            weights: Matrix::from_fn(3, 32, |i, j| ((i * 31 + j * 7) % 13) as f64 * 0.125 - 0.75),
            bias: vec![-0.25, 0.0, 0.5],
            thresholds: vec![0.4, 0.5, 0.6],
            train_docs: 96,
            train_seed: 0xDEAD_BEEF_0123_4567,
            train_f1: 0.9375,
        }
    }

    #[test]
    fn json_roundtrip_is_bitwise() {
        let a = toy();
        let text = text_to_json(&a);
        let b = text_from_json(&text, "<memory>").expect("parses");
        assert_eq!(a, b);
        assert_eq!(text_to_json(&b), text, "save→load→save byte-identical");
    }

    #[test]
    fn binary_roundtrip_is_bitwise() {
        let a = toy();
        let bytes = text_to_binary(&a);
        let b = text_from_binary(&bytes, "<memory>").expect("decodes");
        assert_eq!(a, b);
        assert_eq!(text_to_binary(&b), bytes, "re-encode byte-identical");
    }

    #[test]
    fn both_formats_roundtrip_through_artifact_seam() {
        let a = toy();
        for format in [ArtifactFormat::Json, ArtifactFormat::Bin] {
            let bytes = a.encode_as(format);
            TextModel::verify_as(format, &bytes, "<memory>").expect("verifies");
            let b = TextModel::decode_as(format, &bytes, "<memory>").expect("decodes");
            assert_eq!(a, b, "{format:?} round-trip");
        }
    }

    #[test]
    fn truncation_and_tampering_yield_typed_errors() {
        let bytes = toy().encode_as(ArtifactFormat::Bin);
        for cut in [0, 7, HEADER_LEN - 1, bytes.len() / 2, bytes.len() - 1] {
            let err = TextModel::decode_as(ArtifactFormat::Bin, &bytes[..cut], "t.bin")
                .expect_err("truncated rejected");
            assert!(
                err.is_corruption(),
                "cut at {cut} gave non-corruption error {err}"
            );
        }
        // Flip a payload byte: the checksum catches it before any parse.
        let mut flipped = bytes.clone();
        flipped[HEADER_LEN + 3] ^= 0x40;
        assert!(matches!(
            TextModel::decode_as(ArtifactFormat::Bin, &flipped, "t.bin"),
            Err(ServeError::ChecksumMismatch { .. })
        ));
        // JSON side: truncation breaks the frame.
        let json_bytes = toy().encode_as(ArtifactFormat::Json);
        let err = TextModel::decode_as(
            ArtifactFormat::Json,
            &json_bytes[..json_bytes.len() / 2],
            "t.json",
        )
        .expect_err("truncated rejected");
        assert!(err.is_corruption());
    }

    #[test]
    fn header_payload_disagreement_is_rejected() {
        let a = toy();
        let mut bytes = text_to_binary(&a);
        // Claim one more tag than the string table holds; re-frame so the
        // checksum passes and the structural check must catch it.
        let n_tags_off = 48;
        bytes.truncate(bytes.len() - TRAILER_LEN);
        bytes[n_tags_off..n_tags_off + 8].copy_from_slice(&4u64.to_le_bytes());
        let checksum = fnv1a_64_words(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        let err = text_from_binary(&bytes, "t.bin").expect_err("mismatch rejected");
        assert!(err.is_corruption(), "got {err}");
    }

    #[test]
    fn future_schema_is_a_schema_error_not_corruption() {
        let text = text_to_json(&toy()).replace("\"schema_version\":1", "\"schema_version\":9");
        assert!(matches!(
            text_from_json(&text, "t.json"),
            Err(ServeError::SchemaVersion { found: 9, .. })
        ));
    }
}
