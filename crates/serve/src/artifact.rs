//! The serializable model artifact.
//!
//! A [`FittedModel`] bundles everything a serving process needs to answer
//! queries without refitting: the `W`/`H` factors, the tag codes giving
//! `H`'s columns meaning, fit/rank/consensus diagnostics, the storage
//! backend the fit ran on, and an ontology fingerprint so artifacts fitted
//! against a revised guideline are rejected at load instead of silently
//! misclassifying.
//!
//! Tag columns are recorded as dotted *codes* (`"SDF.FPC.t2"`), not arena
//! `NodeId`s, for the same reason the portable store exchange format does:
//! codes are stable across ontology revisions that preserve them, ids are
//! not. The JSON codec is the crate-local [`crate::json`] module, whose
//! `f64` round-trip is bitwise-exact.

use crate::error::ServeError;
use crate::json::{self, Json};
use anchors_curricula::Ontology;
use anchors_factor::{ConsensusStats, NnmfModel, NnmfRecovery, RankDiagnostics};
use anchors_linalg::{Backend, Matrix};
use anchors_materials::TagSpace;
use serde::{Deserialize, Serialize};

/// Artifact schema revision this build writes and reads.
pub const SCHEMA_VERSION: u32 = 1;

/// A fitted, serializable NNMF model ready to serve queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FittedModel {
    /// Human-readable model name (e.g. `"cs1-flavors"`).
    pub name: String,
    /// Name of the guideline the tag codes reference.
    pub guideline: String,
    /// [`Ontology::fingerprint`] of that guideline at fit time.
    pub fingerprint: u64,
    /// Storage backend the fit ran on.
    pub backend: Backend,
    /// Dotted codes of the tag space, one per `H` column.
    pub tag_codes: Vec<String>,
    /// Courses × k loadings of the training corpus.
    pub w: Matrix,
    /// k × tags type profiles (the frozen basis queries fold onto).
    pub h: Matrix,
    /// Final training loss `½‖A − WH‖_F²`.
    pub loss: f64,
    /// Iterations used by the winning restart.
    pub iterations: usize,
    /// Whether the winning restart converged.
    pub converged: bool,
    /// Seed of the winning restart.
    pub winning_seed: u64,
    /// Recovery actions the fit needed.
    pub recovery: NnmfRecovery,
    /// Rank-selection diagnostics at the chosen k, if scanned.
    pub rank: Option<RankDiagnostics>,
    /// Consensus stability at the chosen k, if computed.
    pub consensus: Option<ConsensusStats>,
}

impl FittedModel {
    /// Bundle a fitted factorization with its tag space and ontology
    /// provenance. The backend is taken from the data matrix the model was
    /// fitted on.
    pub fn new(
        name: impl Into<String>,
        ontology: &Ontology,
        tag_space: &TagSpace,
        model: &NnmfModel,
        backend: Backend,
    ) -> Result<Self, ServeError> {
        let tag_codes: Vec<String> = tag_space
            .tags()
            .iter()
            .map(|&id| ontology.node(id).code.clone())
            .collect();
        let artifact = FittedModel {
            name: name.into(),
            guideline: ontology.name.clone(),
            fingerprint: ontology.fingerprint(),
            backend,
            tag_codes,
            w: model.w.clone(),
            h: model.h.clone(),
            loss: model.loss,
            iterations: model.iterations,
            converged: model.converged,
            winning_seed: model.winning_seed,
            recovery: model.recovery,
            rank: None,
            consensus: None,
        };
        artifact.check_shapes("<memory>")?;
        Ok(artifact)
    }

    /// Attach rank-selection diagnostics.
    pub fn with_rank(mut self, rank: RankDiagnostics) -> Self {
        self.rank = Some(rank);
        self
    }

    /// Attach consensus stability diagnostics.
    pub fn with_consensus(mut self, consensus: ConsensusStats) -> Self {
        self.consensus = Some(consensus);
        self
    }

    /// Factorization rank.
    pub fn k(&self) -> usize {
        self.h.rows()
    }

    /// Number of tag columns.
    pub fn n_tags(&self) -> usize {
        self.h.cols()
    }

    /// Reject serving against an ontology the model was not fitted for.
    pub fn check_ontology(&self, ontology: &Ontology) -> Result<(), ServeError> {
        let found = ontology.fingerprint();
        if self.guideline != ontology.name || self.fingerprint != found {
            return Err(ServeError::FingerprintMismatch {
                guideline: self.guideline.clone(),
                expected: self.fingerprint,
                found,
            });
        }
        Ok(())
    }

    pub(crate) fn check_shapes(&self, source: &str) -> Result<(), ServeError> {
        let corrupt = |detail: String| ServeError::Corrupt {
            source: source.to_string(),
            detail,
        };
        if self.h.cols() != self.tag_codes.len() {
            return Err(corrupt(format!(
                "H has {} columns but {} tag codes",
                self.h.cols(),
                self.tag_codes.len()
            )));
        }
        if self.w.cols() != self.h.rows() {
            return Err(corrupt(format!(
                "W is {:?} but H is {:?}",
                self.w.shape(),
                self.h.shape()
            )));
        }
        if let Some((i, j, v)) = self
            .w
            .find_non_finite()
            .or_else(|| self.h.find_non_finite())
        {
            return Err(corrupt(format!("non-finite factor entry {v} at ({i},{j})")));
        }
        Ok(())
    }

    /// Serialize to the artifact JSON document.
    pub fn to_json(&self) -> String {
        let matrix = |m: &Matrix| {
            Json::Obj(vec![
                ("rows".into(), Json::Num(m.rows() as f64)),
                ("cols".into(), Json::Num(m.cols() as f64)),
                (
                    "data".into(),
                    Json::Arr(m.as_slice().iter().map(|&v| Json::Num(v)).collect()),
                ),
            ])
        };
        let mut members = vec![
            (
                "schema_version".into(),
                Json::Num(f64::from(SCHEMA_VERSION)),
            ),
            ("name".into(), Json::Str(self.name.clone())),
            ("guideline".into(), Json::Str(self.guideline.clone())),
            (
                "fingerprint".into(),
                Json::Str(self.fingerprint.to_string()),
            ),
            ("backend".into(), Json::Str(self.backend.to_string())),
            (
                "tag_codes".into(),
                Json::Arr(
                    self.tag_codes
                        .iter()
                        .map(|c| Json::Str(c.clone()))
                        .collect(),
                ),
            ),
            ("w".into(), matrix(&self.w)),
            ("h".into(), matrix(&self.h)),
            ("loss".into(), Json::Num(self.loss)),
            ("iterations".into(), Json::Num(self.iterations as f64)),
            ("converged".into(), Json::Bool(self.converged)),
            (
                "winning_seed".into(),
                Json::Str(self.winning_seed.to_string()),
            ),
            (
                "recovery".into(),
                Json::Obj(vec![
                    (
                        "failed_restarts".into(),
                        Json::Num(self.recovery.failed_restarts as f64),
                    ),
                    ("reseeded".into(), Json::Bool(self.recovery.reseeded)),
                    (
                        "nndsvd_fallback".into(),
                        Json::Bool(self.recovery.nndsvd_fallback),
                    ),
                    (
                        "budget_exceeded".into(),
                        Json::Num(self.recovery.budget_exceeded as f64),
                    ),
                ]),
            ),
        ];
        if let Some(r) = &self.rank {
            members.push((
                "rank".into(),
                Json::Obj(vec![
                    ("k".into(), Json::Num(r.k as f64)),
                    ("loss".into(), Json::Num(r.loss)),
                    ("relative_error".into(), Json::Num(r.relative_error)),
                    ("duplicate_score".into(), Json::Num(r.duplicate_score)),
                    ("separation".into(), Json::Num(r.separation)),
                ]),
            ));
        }
        if let Some(c) = &self.consensus {
            members.push((
                "consensus".into(),
                Json::Obj(vec![
                    ("k".into(), Json::Num(c.k as f64)),
                    ("runs".into(), Json::Num(c.runs as f64)),
                    ("dispersion".into(), Json::Num(c.dispersion)),
                    ("cophenetic".into(), Json::Num(c.cophenetic)),
                ]),
            ));
        }
        Json::Obj(members).write()
    }

    /// Parse an artifact document. `source` labels errors (file path or
    /// `"<memory>"`).
    pub fn from_json(text: &str, source: &str) -> Result<Self, ServeError> {
        let corrupt = |detail: String| ServeError::Corrupt {
            source: source.to_string(),
            detail,
        };
        let doc = json::parse(text).map_err(|e| corrupt(e.to_string()))?;
        let field = |key: &str| {
            doc.get(key)
                .ok_or_else(|| corrupt(format!("missing {key:?}")))
        };
        let schema = field("schema_version")?
            .as_usize()
            .ok_or_else(|| corrupt("schema_version must be an integer".into()))?
            as u32;
        if schema != SCHEMA_VERSION {
            return Err(ServeError::SchemaVersion {
                found: schema,
                supported: SCHEMA_VERSION,
            });
        }
        let string = |key: &str| -> Result<String, ServeError> {
            Ok(field(key)?
                .as_str()
                .ok_or_else(|| corrupt(format!("{key:?} must be a string")))?
                .to_string())
        };
        let num = |key: &str| -> Result<f64, ServeError> {
            field(key)?
                .as_f64()
                .ok_or_else(|| corrupt(format!("{key:?} must be a number")))
        };
        let boolean = |key: &str| -> Result<bool, ServeError> {
            field(key)?
                .as_bool()
                .ok_or_else(|| corrupt(format!("{key:?} must be a bool")))
        };
        let u64_field = |key: &str| -> Result<u64, ServeError> {
            field(key)?
                .as_u64_str()
                .ok_or_else(|| corrupt(format!("{key:?} must be a u64 string")))
        };
        let matrix = |key: &str| -> Result<Matrix, ServeError> {
            let m = field(key)?;
            let rows = m
                .get("rows")
                .and_then(Json::as_usize)
                .ok_or_else(|| corrupt(format!("{key:?} missing rows")))?;
            let cols = m
                .get("cols")
                .and_then(Json::as_usize)
                .ok_or_else(|| corrupt(format!("{key:?} missing cols")))?;
            let data = m
                .get("data")
                .and_then(Json::as_arr)
                .ok_or_else(|| corrupt(format!("{key:?} missing data")))?;
            if data.len() != rows * cols {
                return Err(corrupt(format!(
                    "{key:?} has {} entries for a {rows}×{cols} matrix",
                    data.len()
                )));
            }
            let values = data
                .iter()
                .map(|v| v.as_f64())
                .collect::<Option<Vec<f64>>>()
                .ok_or_else(|| corrupt(format!("{key:?} has a non-numeric entry")))?;
            Ok(Matrix::from_vec(rows, cols, values))
        };
        let backend = match string("backend")?.as_str() {
            "dense" => Backend::Dense,
            "sparse" => Backend::Sparse,
            other => return Err(corrupt(format!("unknown backend {other:?}"))),
        };
        let tag_codes = field("tag_codes")?
            .as_arr()
            .ok_or_else(|| corrupt("tag_codes must be an array".into()))?
            .iter()
            .map(|v| v.as_str().map(str::to_string))
            .collect::<Option<Vec<String>>>()
            .ok_or_else(|| corrupt("tag_codes must be strings".into()))?;
        let rec = field("recovery")?;
        let rec_usize = |key: &str| -> Result<usize, ServeError> {
            rec.get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| corrupt(format!("recovery missing {key:?}")))
        };
        let rec_bool = |key: &str| -> Result<bool, ServeError> {
            rec.get(key)
                .and_then(Json::as_bool)
                .ok_or_else(|| corrupt(format!("recovery missing {key:?}")))
        };
        let recovery = NnmfRecovery {
            failed_restarts: rec_usize("failed_restarts")?,
            reseeded: rec_bool("reseeded")?,
            nndsvd_fallback: rec_bool("nndsvd_fallback")?,
            budget_exceeded: rec_usize("budget_exceeded")?,
        };
        let rank = match doc.get("rank") {
            None => None,
            Some(r) => {
                let sub = |key: &str| {
                    r.get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| corrupt(format!("rank missing {key:?}")))
                };
                Some(RankDiagnostics {
                    k: r.get("k")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| corrupt("rank missing \"k\"".into()))?,
                    loss: sub("loss")?,
                    relative_error: sub("relative_error")?,
                    duplicate_score: sub("duplicate_score")?,
                    separation: sub("separation")?,
                })
            }
        };
        let consensus = match doc.get("consensus") {
            None => None,
            Some(c) => {
                let sub = |key: &str| {
                    c.get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| corrupt(format!("consensus missing {key:?}")))
                };
                Some(ConsensusStats {
                    k: c.get("k")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| corrupt("consensus missing \"k\"".into()))?,
                    runs: c
                        .get("runs")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| corrupt("consensus missing \"runs\"".into()))?,
                    dispersion: sub("dispersion")?,
                    cophenetic: sub("cophenetic")?,
                })
            }
        };
        let artifact = FittedModel {
            name: string("name")?,
            guideline: string("guideline")?,
            fingerprint: u64_field("fingerprint")?,
            backend,
            tag_codes,
            w: matrix("w")?,
            h: matrix("h")?,
            loss: num("loss")?,
            iterations: field("iterations")?
                .as_usize()
                .ok_or_else(|| corrupt("\"iterations\" must be an integer".into()))?,
            converged: boolean("converged")?,
            winning_seed: u64_field("winning_seed")?,
            recovery,
            rank,
            consensus,
        };
        artifact.check_shapes(source)?;
        Ok(artifact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_curricula::cs2013;
    use anchors_materials::TagSpace;

    fn toy_artifact() -> FittedModel {
        let cs = cs2013();
        let leaves = cs.leaf_items();
        let space = TagSpace::from_tags(leaves.iter().copied().take(6));
        let model = NnmfModel {
            w: Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f64 * 0.25 + 0.125),
            h: Matrix::from_fn(2, 6, |i, j| 1.0 / ((i + 1) * (j + 3)) as f64),
            loss: 0.125,
            iterations: 17,
            converged: true,
            winning_seed: 0xDEAD_BEEF_1234_5678,
            recovery: NnmfRecovery {
                failed_restarts: 1,
                ..NnmfRecovery::default()
            },
        };
        FittedModel::new("toy", cs, &space, &model, Backend::Dense)
            .expect("valid artifact")
            .with_rank(RankDiagnostics {
                k: 2,
                loss: 0.125,
                relative_error: 0.01,
                duplicate_score: 0.2,
                separation: 0.7,
            })
            .with_consensus(ConsensusStats {
                k: 2,
                runs: 20,
                dispersion: 0.95,
                cophenetic: 0.99,
            })
    }

    #[test]
    fn json_roundtrip_is_bitwise() {
        let a = toy_artifact();
        let text = a.to_json();
        let b = FittedModel::from_json(&text, "<memory>").expect("parses");
        assert_eq!(a.w, b.w, "W bitwise identical");
        assert_eq!(a.h, b.h, "H bitwise identical");
        assert_eq!(a.tag_codes, b.tag_codes);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.winning_seed, b.winning_seed);
        assert_eq!(a.recovery, b.recovery);
        assert_eq!(b.to_json(), text, "save→load→save is byte-identical");
    }

    #[test]
    fn truncated_and_tampered_artifacts_are_rejected() {
        let text = toy_artifact().to_json();
        for cut in [1, text.len() / 2, text.len() - 1] {
            assert!(matches!(
                FittedModel::from_json(&text[..cut], "t.json"),
                Err(ServeError::Corrupt { .. })
            ));
        }
        // Wrong entry count for the declared shape.
        let tampered = text.replace("\"rows\":4", "\"rows\":5");
        assert!(matches!(
            FittedModel::from_json(&tampered, "t.json"),
            Err(ServeError::Corrupt { .. })
        ));
        // Future schema revision.
        let future = text.replace("\"schema_version\":1", "\"schema_version\":99");
        assert!(matches!(
            FittedModel::from_json(&future, "t.json"),
            Err(ServeError::SchemaVersion { found: 99, .. })
        ));
    }

    #[test]
    fn fingerprint_gate_rejects_revised_ontology() {
        let a = toy_artifact();
        a.check_ontology(cs2013()).expect("same ontology accepted");
        let err = a.check_ontology(anchors_curricula::pdc12()).unwrap_err();
        assert!(matches!(err, ServeError::FingerprintMismatch { .. }));
        // A stale fingerprint against the *same-named* guideline also
        // fails closed.
        let mut stale = a.clone();
        stale.fingerprint ^= 1;
        assert!(stale.check_ontology(cs2013()).is_err());
    }
}
