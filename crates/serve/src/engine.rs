//! The fold-in query engine.
//!
//! A [`QueryEngine`] freezes one [`FittedModel`] and answers queries about
//! courses that were never in the training corpus. An unseen course is a
//! tag vector `a` over the model's tag space; *folding it in* means
//! solving
//!
//! ```text
//! min ‖a − w·H‖₂   s.t.  w ≥ 0
//! ```
//!
//! for its loading row `w` on the frozen basis `H` — exactly the
//! non-negative least-squares subproblem the ANLS trainer solves for
//! training rows, so a training course folded back in recovers its own
//! `W` row. Batches go through `anchors_linalg::try_nnls_multi`, which
//! forms the `k×k` Gram matrix once and computes all cross-products in a
//! single storage-generic matrix product, so dense and CSR query batches
//! take the same path (and one batched solve replaces N per-course
//! solves).
//!
//! Beyond the loadings, a query is routed through the paper's §5.2
//! recommender (`classify_tags`/`recommend_for_tags`) and, when the
//! engine carries a material store, through `anchors-materials` search
//! for the nearest classified materials.

use crate::artifact::FittedModel;
use crate::error::ServeError;
use anchors_core::{classify_tags, recommend_for_tags, FlavorKind, Recommendation};
use anchors_curricula::{NodeId, Ontology};
use anchors_linalg::{nnls_gram_f32, try_nnls_multi, LinalgError, MatKernels, Matrix};
use anchors_materials::{search, CourseLabel, MaterialStore, Query, SearchHit};
use std::collections::HashMap;

/// NNLS tolerance of the fold-in solve — the same value the ANLS trainer
/// uses for its W rows, so fold-in reproduces training loadings.
pub const FOLD_IN_TOL: f64 = 1e-12;

/// NNLS tolerance of the reduced-precision fold-in solve: the `f64` value
/// is below `f32` resolution, so the `f32` path stops at single-precision
/// stationarity instead (≈ `ε_f32 · ‖G‖`, with the serving Grams O(1)).
pub const FOLD_IN_TOL_F32: f32 = 1e-6;

/// Documented ceiling on the per-row relative error of `f32` fold-in
/// loadings versus the `f64` path, asserted by the serve tests and the
/// `serve_smoke` bench. Derivation (DESIGN.md §15): the active-set solve is
/// backward-stable, so the loading error is `O(κ(G) · ε_f32)`; the serving
/// Gram matrices stay below κ ≈ 10³ by construction (normalized tag
/// columns), giving `10³ · 1.2e-7 ≈ 1.2e-4`, with an order of margin.
pub const F32_FOLD_IN_MAX_REL_ERR: f64 = 1e-3;

/// How many nearest materials a query returns when a store is attached.
const NEAREST_LIMIT: usize = 5;

/// An unseen course to classify: labels plus guideline tag codes.
#[derive(Debug, Clone, Default)]
pub struct CourseQuery {
    /// Display name (echoed in the response).
    pub name: String,
    /// Family labels (CS1, DataStructures, …) steering the rule set.
    pub labels: Vec<CourseLabel>,
    /// Dotted guideline codes of the course's classification.
    pub tag_codes: Vec<String>,
}

impl CourseQuery {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, labels: Vec<CourseLabel>, tag_codes: Vec<String>) -> Self {
        CourseQuery {
            name: name.into(),
            labels,
            tag_codes,
        }
    }
}

/// Everything the serving layer says about one queried course.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Echo of the query name.
    pub name: String,
    /// Raw NNLS loadings onto the k frozen types.
    pub loadings: Vec<f64>,
    /// Loadings normalized to sum 1 (all-zero if the course loads on
    /// nothing) — the course's flavor mixture.
    pub mixture: Vec<f64>,
    /// Signal-based flavors detected from the tag set.
    pub flavors: Vec<FlavorKind>,
    /// §5.2 anchor-point recommendations for those flavors.
    pub recommendations: Vec<Recommendation>,
    /// Nearest classified materials (empty when the engine has no store).
    pub nearest: Vec<SearchHit>,
}

/// Numeric precision of the fold-in solve.
///
/// `F64` is the default and matches the trainer bit for bit. `F32` is the
/// opt-in reduced-precision serving mode: the basis and Gram matrix are
/// narrowed once at engine construction, the per-query NNLS runs entirely
/// in single precision, and the loadings are widened back — within
/// [`F32_FOLD_IN_MAX_REL_ERR`] of the `f64` answer. Fitting is always
/// `f64`; precision is a serving-time choice only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full-precision fold-in (bitwise identical to the trainer's NNLS).
    #[default]
    F64,
    /// Single-precision fold-in (narrowed basis, `f32` active-set solve).
    F32,
}

impl Precision {
    /// Parse a config/env value (`"f64"`, `"f32"`, case-insensitive).
    pub fn parse(s: &str) -> Option<Precision> {
        match s.trim().to_ascii_lowercase().as_str() {
            "f64" | "double" => Some(Precision::F64),
            "f32" | "single" => Some(Precision::F32),
            _ => None,
        }
    }

    /// Canonical lowercase name (`"f64"` / `"f32"`), as reported by
    /// `/healthz`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }
}

/// The narrowed fold-in state cached when an engine serves in `f32`:
/// the frozen basis `H` and its Gram matrix `H Hᵀ`, both converted once at
/// construction/reload time so the per-query hot loop never touches `f64`
/// model state.
#[derive(Debug, Clone)]
struct F32Basis {
    /// `H` (`k × n_tags`, row-major), narrowed from the model.
    h: Vec<f32>,
    /// `Hᵀ`-basis Gram matrix `G = H Hᵀ` (`k × k`, row-major), computed in
    /// `f64` and narrowed — one rounding, not an `f32` accumulation.
    gram: Vec<f32>,
}

/// A frozen model plus the precomputed state to answer queries fast.
#[derive(Debug, Clone)]
pub struct QueryEngine {
    model: FittedModel,
    /// `Hᵀ` (tags × k), the NNLS basis of the fold-in solve.
    ht: Matrix,
    /// Resolved tag columns, parallel to `model.tag_codes`.
    tags: Vec<NodeId>,
    /// Code → column lookup for query vectorization.
    columns: HashMap<String, usize>,
    cs: &'static Ontology,
    pdc: &'static Ontology,
    store: Option<MaterialStore>,
    /// Fold-in precision; `f32` carries the narrowed basis.
    precision: Precision,
    f32_basis: Option<F32Basis>,
}

impl QueryEngine {
    /// Freeze a model for serving at full (`f64`) fold-in precision. Fails
    /// closed if the model was fitted against a different revision of `cs`
    /// (fingerprint gate) or names a tag code `cs` does not know.
    pub fn new(
        model: FittedModel,
        cs: &'static Ontology,
        pdc: &'static Ontology,
    ) -> Result<Self, ServeError> {
        Self::with_precision(model, cs, pdc, Precision::F64)
    }

    /// Freeze a model for serving at an explicit fold-in precision; see
    /// [`Precision`] for the trade-off.
    pub fn with_precision(
        model: FittedModel,
        cs: &'static Ontology,
        pdc: &'static Ontology,
        precision: Precision,
    ) -> Result<Self, ServeError> {
        model.check_ontology(cs)?;
        let tags = model
            .tag_codes
            .iter()
            .map(|code| {
                cs.by_code(code)
                    .ok_or_else(|| ServeError::UnknownTag { code: code.clone() })
            })
            .collect::<Result<Vec<NodeId>, ServeError>>()?;
        let columns = model
            .tag_codes
            .iter()
            .enumerate()
            .map(|(j, code)| (code.clone(), j))
            .collect();
        let ht = model.h.transpose();
        let f32_basis = match precision {
            Precision::F64 => None,
            Precision::F32 => {
                let gram = anchors_linalg::matmul_at_b(&ht, &ht);
                Some(F32Basis {
                    h: model.h.as_slice().iter().map(|&v| v as f32).collect(),
                    gram: gram.as_slice().iter().map(|&v| v as f32).collect(),
                })
            }
        };
        Ok(QueryEngine {
            model,
            ht,
            tags,
            columns,
            cs,
            pdc,
            store: None,
            precision,
            f32_basis,
        })
    }

    /// The fold-in precision this engine serves at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Attach a material store so queries also return nearest materials.
    pub fn with_store(mut self, store: MaterialStore) -> Self {
        self.store = Some(store);
        self
    }

    /// The frozen model.
    pub fn model(&self) -> &FittedModel {
        &self.model
    }

    /// Factorization rank.
    pub fn k(&self) -> usize {
        self.model.k()
    }

    /// Width of the model's tag space.
    pub fn n_tags(&self) -> usize {
        self.model.n_tags()
    }

    /// Turn a query's tag codes into a row over the model's tag space.
    /// Codes outside the tag space contribute nothing to the fold-in (the
    /// model has no basis direction for them) but still participate in
    /// rule classification; codes unknown to the ontology are an error.
    pub fn vectorize(&self, query: &CourseQuery) -> Result<Vec<f64>, ServeError> {
        let mut row = vec![0.0; self.n_tags()];
        for code in &query.tag_codes {
            if let Some(&j) = self.columns.get(code) {
                row[j] = 1.0;
            } else if self.cs.by_code(code).is_none() {
                return Err(ServeError::UnknownTag { code: code.clone() });
            }
        }
        Ok(row)
    }

    /// NNLS-project a batch of tag rows (one course per row) onto the
    /// frozen `H`. Returns the `batch.rows() × k` loading matrix. The
    /// batch may be dense or CSR; both take the same solver path. Under
    /// [`Precision::F32`] the solve runs on the narrowed basis and the
    /// loadings are widened back.
    pub fn fold_in_batch<B: MatKernels>(&self, batch: &B) -> Result<Matrix, ServeError> {
        let (_, cols) = batch.shape();
        if cols != self.n_tags() {
            return Err(ServeError::QueryShape {
                expected: self.n_tags(),
                found: cols,
            });
        }
        match &self.f32_basis {
            Some(basis) => self.fold_in_batch_f32(batch, basis),
            None => Ok(try_nnls_multi(&self.ht, batch, FOLD_IN_TOL)?),
        }
    }

    /// The reduced-precision fold-in: each query row is narrowed once, the
    /// cross-products and the active-set NNLS run entirely in `f32`
    /// against the cached basis, and the loadings widen back to the `f64`
    /// response type. Mirrors `try_nnls_multi`'s validation so both
    /// precisions reject the same malformed batches.
    fn fold_in_batch_f32<B: MatKernels>(
        &self,
        batch: &B,
        basis: &F32Basis,
    ) -> Result<Matrix, ServeError> {
        let (q, n) = batch.shape();
        let k = self.k();
        if let Some((row, col, value)) = batch.find_non_finite() {
            return Err(ServeError::from(LinalgError::NotFinite {
                op: "nnls_multi",
                row,
                col,
                value,
            }));
        }
        let mut out = Matrix::zeros(q, k);
        if q == 0 || k == 0 {
            return Ok(out);
        }
        let mut row64 = vec![0.0f64; n];
        let mut row32 = vec![0.0f32; n];
        let mut cross = vec![0.0f32; k];
        let mut x = vec![0.0f32; k];
        let mut passive = vec![false; k];
        for i in 0..q {
            row64.fill(0.0);
            batch.accumulate_row_into(i, 1.0, &mut row64);
            for (dst, &src) in row32.iter_mut().zip(&row64) {
                *dst = src as f32;
            }
            // c = H a (the `f32` mirror of the batched `B·Hᵀ` product).
            for (t, c) in cross.iter_mut().enumerate() {
                let hrow = &basis.h[t * n..(t + 1) * n];
                *c = row32.iter().zip(hrow).map(|(&av, &hv)| av * hv).sum();
            }
            nnls_gram_f32(
                &basis.gram,
                k,
                &cross,
                FOLD_IN_TOL_F32,
                &mut x,
                &mut passive,
            );
            for (dst, &src) in out.row_mut(i).iter_mut().zip(&x) {
                *dst = src as f64;
            }
        }
        Ok(out)
    }

    /// Fold in a single tag row.
    pub fn fold_in_row(&self, row: &[f64]) -> Result<Vec<f64>, ServeError> {
        let batch = Matrix::from_vec(1, row.len(), row.to_vec());
        let w = self.fold_in_batch(&batch)?;
        Ok(w.row(0).to_vec())
    }

    /// Answer one query: fold in, classify, recommend, and (with a store)
    /// find the nearest classified materials.
    pub fn query(&self, query: &CourseQuery) -> Result<QueryResponse, ServeError> {
        let row = self.vectorize(query)?;
        let loadings = self.fold_in_row(&row)?;
        Ok(self.respond(query, loadings))
    }

    /// Answer N queries with one matrix-level fold-in solve instead of N
    /// single-row solves. Vectorizing the queries (tag-code resolution and
    /// row scatter) is independent per query, so batch assembly fans out
    /// across the outer pool; rows land in arrival order and the first
    /// erroring query (in arrival order) rejects the batch, exactly as the
    /// serial loop did.
    pub fn query_batch(&self, queries: &[CourseQuery]) -> Result<Vec<QueryResponse>, ServeError> {
        let rows =
            anchors_linalg::parallel::outer_map(queries.len(), |i| self.vectorize(&queries[i]));
        let mut batch = Matrix::zeros(queries.len(), self.n_tags());
        for (i, row) in rows.into_iter().enumerate() {
            batch.row_mut(i).copy_from_slice(&row?);
        }
        let w = self.fold_in_batch(&batch)?;
        Ok(queries
            .iter()
            .enumerate()
            .map(|(i, q)| self.respond(q, w.row(i).to_vec()))
            .collect())
    }

    /// Assemble the response for a query whose loadings are solved.
    fn respond(&self, query: &CourseQuery, loadings: Vec<f64>) -> QueryResponse {
        let total: f64 = loadings.iter().sum();
        let mixture = if total > 0.0 {
            loadings.iter().map(|&v| v / total).collect()
        } else {
            vec![0.0; loadings.len()]
        };
        // Classification runs on the resolvable tag ids (sorted, deduped,
        // like `MaterialStore::course_tags` rows).
        let mut tag_ids: Vec<NodeId> = query
            .tag_codes
            .iter()
            .filter_map(|code| self.cs.by_code(code))
            .collect();
        tag_ids.sort_unstable();
        tag_ids.dedup();
        let flavors = classify_tags(self.cs, &query.labels, &tag_ids);
        let recommendations = recommend_for_tags(self.cs, self.pdc, &query.labels, &tag_ids);
        let nearest = match &self.store {
            Some(store) => search(
                store,
                self.cs,
                &Query::tags(tag_ids.iter().copied()).limit(NEAREST_LIMIT),
            ),
            None => Vec::new(),
        };
        QueryResponse {
            name: query.name.clone(),
            loadings,
            mixture,
            flavors,
            recommendations,
            nearest,
        }
    }

    /// The resolved tag ids of the model's columns (test/diagnostic hook).
    pub fn tag_ids(&self) -> &[NodeId] {
        &self.tags
    }
}

/// Largest per-row relative error between two loading matrices: for each
/// row, `‖ref − other‖_∞ / ‖ref‖_∞` (rows that are zero in the reference
/// count their absolute error instead). This is the metric
/// [`F32_FOLD_IN_MAX_REL_ERR`] bounds and the `serve_smoke` bench reports.
///
/// # Panics
/// Panics on shape mismatch.
pub fn fold_in_max_rel_err(reference: &Matrix, other: &Matrix) -> f64 {
    assert_eq!(reference.shape(), other.shape(), "loading shape mismatch");
    let mut worst = 0.0f64;
    for i in 0..reference.rows() {
        let scale = reference.row(i).iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let diff = reference
            .row(i)
            .iter()
            .zip(other.row(i))
            .fold(0.0f64, |m, (&a, &b)| m.max((a - b).abs()));
        worst = worst.max(if scale > 0.0 { diff / scale } else { diff });
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_curricula::{cs2013, pdc12};
    use anchors_factor::{NnmfModel, NnmfRecovery};
    use anchors_linalg::Backend;
    use anchors_materials::TagSpace;

    fn toy_engine() -> QueryEngine {
        let cs = cs2013();
        let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(8));
        let model = NnmfModel {
            w: Matrix::from_fn(5, 2, |i, j| ((i + j) % 3) as f64 * 0.5),
            h: Matrix::from_fn(2, 8, |i, j| ((i * 8 + j) % 4) as f64 * 0.25 + 0.05),
            loss: 0.3,
            iterations: 5,
            converged: true,
            winning_seed: 1,
            recovery: NnmfRecovery::default(),
        };
        let artifact = FittedModel::new("toy", cs, &space, &model, Backend::Dense).expect("valid");
        QueryEngine::new(artifact, cs, pdc12()).expect("engine")
    }

    fn toy_engine_f32() -> QueryEngine {
        let cs = cs2013();
        let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(8));
        let model = NnmfModel {
            w: Matrix::from_fn(5, 2, |i, j| ((i + j) % 3) as f64 * 0.5),
            h: Matrix::from_fn(2, 8, |i, j| ((i * 8 + j) % 4) as f64 * 0.25 + 0.05),
            loss: 0.3,
            iterations: 5,
            converged: true,
            winning_seed: 1,
            recovery: NnmfRecovery::default(),
        };
        let artifact = FittedModel::new("toy", cs, &space, &model, Backend::Dense).expect("valid");
        QueryEngine::with_precision(artifact, cs, pdc12(), Precision::F32).expect("engine")
    }

    #[test]
    fn precision_parses_and_defaults() {
        assert_eq!(Precision::parse("f32"), Some(Precision::F32));
        assert_eq!(Precision::parse(" F64 "), Some(Precision::F64));
        assert_eq!(Precision::parse("single"), Some(Precision::F32));
        assert_eq!(Precision::parse("half"), None);
        assert_eq!(Precision::default(), Precision::F64);
        assert_eq!(toy_engine().precision(), Precision::F64);
        assert_eq!(toy_engine_f32().precision(), Precision::F32);
        assert_eq!(Precision::F32.as_str(), "f32");
    }

    #[test]
    fn f32_fold_in_tracks_f64_within_bound() {
        let e64 = toy_engine();
        let e32 = toy_engine_f32();
        let codes = &e64.model().tag_codes;
        let queries: Vec<CourseQuery> = (0..4)
            .map(|i| {
                CourseQuery::new(
                    format!("q{i}"),
                    vec![CourseLabel::Cs1],
                    codes.iter().skip(i).step_by(2).cloned().collect(),
                )
            })
            .collect();
        let mut batch = Matrix::zeros(queries.len(), e64.n_tags());
        for (i, q) in queries.iter().enumerate() {
            batch.row_mut(i).copy_from_slice(&e64.vectorize(q).unwrap());
        }
        let w64 = e64.fold_in_batch(&batch).unwrap();
        let w32 = e32.fold_in_batch(&batch).unwrap();
        let err = fold_in_max_rel_err(&w64, &w32);
        assert!(
            err <= F32_FOLD_IN_MAX_REL_ERR,
            "f32 fold-in error {err} exceeds bound {F32_FOLD_IN_MAX_REL_ERR}"
        );
        // CSR queries take the same narrowed path.
        let csr = anchors_linalg::CsrMatrix::from_dense(&batch);
        assert_eq!(
            e32.fold_in_batch(&csr).unwrap(),
            w32,
            "dense and CSR f32 batches must match bitwise"
        );
    }

    #[test]
    fn f32_fold_in_rejects_what_f64_rejects() {
        let e32 = toy_engine_f32();
        let wrong = Matrix::zeros(2, 3);
        assert!(matches!(
            e32.fold_in_batch(&wrong),
            Err(ServeError::QueryShape {
                expected: 8,
                found: 3
            })
        ));
        let mut nan = Matrix::zeros(1, 8);
        nan.set(0, 5, f64::NAN);
        assert!(e32.fold_in_batch(&nan).is_err(), "NaN batch must fail");
    }

    #[test]
    fn vectorize_maps_codes_to_columns() {
        let engine = toy_engine();
        let code = engine.model().tag_codes[3].clone();
        let q = CourseQuery::new("q", vec![CourseLabel::Cs1], vec![code]);
        let row = engine.vectorize(&q).unwrap();
        assert_eq!(row[3], 1.0);
        assert_eq!(row.iter().sum::<f64>(), 1.0);
        // A real CS2013 code outside the 8-tag space folds to nothing but
        // is not an error.
        let outside = CourseQuery::new(
            "q2",
            vec![],
            vec![cs2013().node(cs2013().leaf_items()[20]).code.clone()],
        );
        assert_eq!(engine.vectorize(&outside).unwrap().iter().sum::<f64>(), 0.0);
        // A code unknown to the ontology is an error.
        let bad = CourseQuery::new("q3", vec![], vec!["NO.SUCH.t1".into()]);
        assert!(matches!(
            engine.vectorize(&bad),
            Err(ServeError::UnknownTag { .. })
        ));
    }

    #[test]
    fn fold_in_checks_query_shape() {
        let engine = toy_engine();
        let wrong = Matrix::zeros(2, 3);
        assert!(matches!(
            engine.fold_in_batch(&wrong),
            Err(ServeError::QueryShape {
                expected: 8,
                found: 3
            })
        ));
    }

    #[test]
    fn batch_and_single_queries_agree() {
        let engine = toy_engine();
        let codes = &engine.model().tag_codes;
        let queries: Vec<CourseQuery> = (0..4)
            .map(|i| {
                CourseQuery::new(
                    format!("q{i}"),
                    vec![CourseLabel::Cs1],
                    codes.iter().skip(i).step_by(2).cloned().collect(),
                )
            })
            .collect();
        let batched = engine.query_batch(&queries).unwrap();
        for (q, b) in queries.iter().zip(&batched) {
            let single = engine.query(q).unwrap();
            assert_eq!(single.loadings, b.loadings, "{}", q.name);
            assert_eq!(single.mixture, b.mixture);
            assert_eq!(single.flavors, b.flavors);
        }
        // Mixtures are normalized.
        for r in &batched {
            let s: f64 = r.mixture.iter().sum();
            assert!(s == 0.0 || (s - 1.0).abs() < 1e-12);
        }
    }
}
