//! Crash-safe versioned on-disk artifact registry.
//!
//! A registry is a directory of `<stem>-v<N>.json` / `<stem>-v<N>.bin`
//! artifacts for one [`Artifact`] kind — `model-v*` for the default
//! [`FittedModel`], `text-v*` for `Registry<TextModel>`; different
//! kinds can share a directory because each registry scans only its own
//! stem. One logical *version* may exist in either (or, after a format
//! migration, both) of the [`ArtifactFormat`]s, and every format-level
//! concern is delegated to the artifact's codecs through the
//! [`Artifact`] seam. Versions are monotonically increasing and claimed with
//! `create_new`, so a version number, once taken, always refers to the
//! same artifact — even under concurrent savers, and even across a
//! quarantine (quarantined versions still count when picking the next
//! number).
//!
//! Durability protocol, in write order:
//!
//! 1. **claim** — `create_new(model-v<N>.<ext>)` atomically reserves the
//!    version; collisions retry with the next number.
//! 2. **write** — the encoded artifact goes to a hidden
//!    `.model-v<N>.<ext>.tmp`, which is fsynced before step 3.
//! 3. **rename** — the temp file atomically replaces the claim file, so
//!    readers only ever see nothing, an (obviously invalid) empty claim,
//!    or complete bytes.
//! 4. **sync dir** — the directory itself is fsynced, making the rename
//!    durable.
//!
//! Every artifact ends in an FNV-1a-64 checksum (a `#fnv1a:<16-hex>`
//! trailer line for JSON, a raw 8-byte trailer for binary) which
//! [`Registry::load`] verifies before trusting any field, so damage a
//! parser would accept — a partial read that happens to end at a token
//! boundary, bit rot inside a number — still surfaces as a typed
//! [`ServeError::ChecksumMismatch`].
//!
//! A half-written file can therefore never be mistaken for a model, and
//! [`Registry::load_latest`] *falls back*: corrupt versions are skipped
//! (newest first) until a good one answers. [`Registry::recover`] is the
//! startup sweep — it deletes stale temp files, classifies every version,
//! and moves corrupt versions aside as `*.quarantined` (never deleting
//! bytes an operator might want to examine). An optional retention cap
//! garbage-collects old *good* versions after each save; corrupt-only
//! versions are left for `recover` so evidence is never GC'd.
//!
//! **A version is one unit.** When a version exists in both formats it is
//! *good* if any of its files decodes, quarantined only when every file
//! is corrupt (all of them move together), and GC'd only as a whole —
//! recovery and retention never split a version's files apart.

use crate::artifact::FittedModel;
use crate::codec::{Artifact, ArtifactFormat};
use crate::error::ServeError;
use crate::fsio::{FileOps, RealFs};
use std::io::ErrorKind;
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::Arc;

pub use crate::codec::fnv1a_64;

/// Suffix of in-flight temp files (which also get a leading dot).
const TMP_SUFFIX: &str = ".tmp";
/// Suffix corrupt artifacts are renamed to by [`Registry::recover`].
const QUARANTINE_SUFFIX: &str = ".quarantined";
/// Bound on version-claim retries under pathological contention.
const CLAIM_RETRIES: u64 = 4096;

/// What kind of registry entry a directory name is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryKind {
    /// A (claimed or complete) `<stem>-v<N>.<ext>`.
    Model,
    /// A stale `.<stem>-v<N>.<ext>.tmp` from an interrupted save.
    Tmp,
    /// A `<stem>-v<N>.<ext>.quarantined` moved aside by `recover`.
    Quarantined,
}

/// Parse one directory entry name (for the given artifact stem) into
/// `(version, format, kind)`. Entries of *other* stems parse to `None`,
/// which is what lets registries of different artifact kinds share one
/// directory without seeing each other's files.
fn parse_entry(stem: &str, name: &str) -> Option<(u64, ArtifactFormat, EntryKind)> {
    let (base, kind) = if let Some(base) = name.strip_prefix('.') {
        (base.strip_suffix(TMP_SUFFIX)?, EntryKind::Tmp)
    } else if let Some(base) = name.strip_suffix(QUARANTINE_SUFFIX) {
        (base, EntryKind::Quarantined)
    } else {
        (name, EntryKind::Model)
    };
    let rest = base.strip_prefix(stem)?.strip_prefix("-v")?;
    let (version, ext) = rest.split_once('.')?;
    let format = ArtifactFormat::from_extension(ext)?;
    Some((version.parse::<u64>().ok()?, format, kind))
}

/// Versions an external subsystem needs kept alive across retention GC.
///
/// The registry itself only knows its own stem, but artifact kinds can
/// *reference* each other: a fold-in `delta-v<N>` chains from the full
/// `model-v<M>` it was solved against, and GC'ing that base would leave
/// the delta dangling ([`ServeError::DeltaBaseMissing`]). A pin source
/// closes the loop without coupling the registry to any particular
/// artifact kind: [`Registry::with_pins`] installs one, and
/// [`Registry::gc`] consults it on every pass — pinned versions survive
/// no matter how old they are, and are reconsidered the next pass (once
/// the deltas are compacted away, the pin disappears and the base is
/// collectable again).
pub trait VersionPins: Send + Sync {
    /// Versions that must not be GC'd right now. Evaluated per GC pass.
    fn pinned_versions(&self) -> Vec<u64>;
}

/// What [`Registry::recover`] found and did.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Versions that verified clean, ascending.
    pub good: Vec<u64>,
    /// Versions moved to `*.quarantined` (every file of each), with the
    /// defect that condemned each.
    pub quarantined: Vec<(u64, ServeError)>,
    /// Stale temp files deleted.
    pub swept_tmp: usize,
}

/// A directory of versioned artifacts of one [`Artifact`] kind.
///
/// The kind defaults to [`FittedModel`] (the historical `model-v<N>.*`
/// registry); `Registry<TextModel>` versions `text-v<N>.*` files with
/// the same durability protocol. Two registries of different kinds can
/// share a directory — each scans only its own stem.
pub struct Registry<A: Artifact = FittedModel> {
    dir: PathBuf,
    ops: Arc<dyn FileOps>,
    retention: Option<usize>,
    format: ArtifactFormat,
    pins: Option<Arc<dyn VersionPins>>,
    _kind: PhantomData<fn() -> A>,
}

// Manual impls: deriving would wrongly require `A: Debug`/`A: Clone`,
// but the registry never stores an `A`.
impl<A: Artifact> std::fmt::Debug for Registry<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("stem", &A::STEM)
            .field("dir", &self.dir)
            .field("retention", &self.retention)
            .field("format", &self.format)
            .field("pinned", &self.pins.is_some())
            .finish()
    }
}

impl<A: Artifact> Clone for Registry<A> {
    fn clone(&self) -> Self {
        Registry {
            dir: self.dir.clone(),
            ops: Arc::clone(&self.ops),
            retention: self.retention,
            format: self.format,
            pins: self.pins.clone(),
            _kind: PhantomData,
        }
    }
}

impl<A: Artifact> Registry<A> {
    /// Open (creating if needed) a registry directory on the real
    /// filesystem, sweeping any temp files a crashed save left behind.
    /// New saves use the format `ANCHORS_ARTIFACT_FORMAT` selects
    /// (default JSON); loads fall back to the other format per version.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ServeError> {
        Self::open_with(dir, Arc::new(RealFs))
    }

    /// Open a registry over an injected [`FileOps`] — the seam the fault
    /// suite uses to put weather between the registry and the disk.
    pub fn open_with(dir: impl Into<PathBuf>, ops: Arc<dyn FileOps>) -> Result<Self, ServeError> {
        let dir = dir.into();
        ops.create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let registry = Registry {
            dir,
            ops,
            retention: None,
            format: ArtifactFormat::from_env(),
            pins: None,
            _kind: PhantomData,
        };
        registry.sweep_tmp()?;
        Ok(registry)
    }

    /// Keep only the newest `keep` *good* versions after each save
    /// (minimum 1). Corrupt-only versions are never GC'd — they are
    /// [`recover`](Self::recover)'s evidence.
    pub fn with_retention(mut self, keep: usize) -> Self {
        self.retention = Some(keep.max(1));
        self
    }

    /// Install a pin source: versions it reports survive every retention
    /// GC pass regardless of age. See [`VersionPins`].
    pub fn with_pins(mut self, pins: Arc<dyn VersionPins>) -> Self {
        self.pins = Some(pins);
        self
    }

    /// Override the save/load-preference format (bypassing the
    /// environment selection).
    pub fn with_format(mut self, format: ArtifactFormat) -> Self {
        self.format = format;
        self
    }

    /// The format new saves are written in.
    pub fn format(&self) -> ArtifactFormat {
        self.format
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, version: u64, format: ArtifactFormat) -> PathBuf {
        self.dir
            .join(format!("{}-v{version}.{}", A::STEM, format.extension()))
    }

    fn tmp_path_for(&self, version: u64, format: ArtifactFormat) -> PathBuf {
        self.dir.join(format!(
            ".{}-v{version}.{}{TMP_SUFFIX}",
            A::STEM,
            format.extension()
        ))
    }

    fn quarantine_path_for(&self, version: u64, format: ArtifactFormat) -> PathBuf {
        self.dir.join(format!(
            "{}-v{version}.{}{QUARANTINE_SUFFIX}",
            A::STEM,
            format.extension()
        ))
    }

    /// On-disk path of `version` in this registry's active format —
    /// where a save lands and a load looks first. Exposed for tooling
    /// and fault-injection tests; artifacts should be written through
    /// [`Registry::save`], never directly.
    pub fn path_of(&self, version: u64) -> PathBuf {
        self.path_for(version, self.format)
    }

    fn tmp_path_of(&self, version: u64) -> PathBuf {
        self.tmp_path_for(version, self.format)
    }

    #[cfg(test)]
    fn quarantine_path_of(&self, version: u64) -> PathBuf {
        self.quarantine_path_for(version, self.format)
    }

    /// All `(version, format, kind)` entries, unsorted.
    fn scan(&self) -> Result<Vec<(u64, ArtifactFormat, EntryKind)>, ServeError> {
        let names = self
            .ops
            .read_dir_names(&self.dir)
            .map_err(|e| io_err(&self.dir, e))?;
        Ok(names
            .iter()
            .filter_map(|n| parse_entry(A::STEM, n))
            .collect())
    }

    /// All versions present, ascending, each listed once no matter how
    /// many formats carry it. Files that do not match the artifact naming
    /// scheme — including temp and quarantined files — are ignored (the
    /// registry may share a directory with sidecars).
    pub fn list(&self) -> Result<Vec<u64>, ServeError> {
        let mut versions: Vec<u64> = self
            .scan()?
            .into_iter()
            .filter(|&(_, _, kind)| kind == EntryKind::Model)
            .map(|(v, _, _)| v)
            .collect();
        versions.sort_unstable();
        versions.dedup();
        Ok(versions)
    }

    /// The formats version `v` currently exists in (Model files only),
    /// in [`ArtifactFormat::ALL`] order.
    fn formats_of(&self, version: u64) -> Result<Vec<ArtifactFormat>, ServeError> {
        let present: Vec<ArtifactFormat> = self
            .scan()?
            .into_iter()
            .filter(|&(v, _, kind)| v == version && kind == EntryKind::Model)
            .map(|(_, f, _)| f)
            .collect();
        Ok(ArtifactFormat::ALL
            .into_iter()
            .filter(|f| present.contains(f))
            .collect())
    }

    /// The next unclaimed version number: one past the newest version
    /// ever taken, in *either* format and *including* quarantined ones —
    /// a version number is never reused once any artifact has carried it.
    fn next_version(&self) -> Result<u64, ServeError> {
        Ok(self
            .scan()?
            .into_iter()
            .filter(|&(_, _, kind)| kind != EntryKind::Tmp)
            .map(|(v, _, _)| v)
            .max()
            .unwrap_or(0)
            + 1)
    }

    /// Delete stale temp files of both formats; returns how many were
    /// swept.
    fn sweep_tmp(&self) -> Result<usize, ServeError> {
        let mut swept = 0;
        for (version, format, kind) in self.scan()? {
            if kind == EntryKind::Tmp {
                let path = self.tmp_path_for(version, format);
                match self.ops.remove_file(&path) {
                    Ok(()) => swept += 1,
                    // A concurrent save may have renamed it away already.
                    Err(e) if e.kind() == ErrorKind::NotFound => {}
                    Err(e) => return Err(io_err(&path, e)),
                }
            }
        }
        Ok(swept)
    }

    /// Persist a model under the next version number; returns it.
    ///
    /// The version is claimed with an atomic `create_new` (retrying past
    /// collisions), the artifact is encoded by the active format's codec
    /// and written to a temp file, fsynced, renamed over the claim, and
    /// the directory is fsynced — the full crash-safe protocol from the
    /// module docs. On failure the claim and temp file are withdrawn
    /// (best effort; a crash instead leaves them for
    /// [`recover`](Self::recover)).
    pub fn save(&self, model: &A) -> Result<u64, ServeError> {
        let mut version = self.next_version()?;
        let claim_cap = version + CLAIM_RETRIES;
        let path = loop {
            let path = self.path_of(version);
            match self.ops.create_new(&path) {
                Ok(()) => break path,
                Err(e) if e.kind() == ErrorKind::AlreadyExists && version < claim_cap => {
                    version += 1;
                }
                Err(e) => return Err(io_err(&path, e)),
            }
        };
        let tmp = self.tmp_path_of(version);
        let written = self
            .ops
            .write_durable(&tmp, &model.encode_as(self.format))
            .map_err(|e| io_err(&tmp, e))
            .and_then(|()| self.ops.rename(&tmp, &path).map_err(|e| io_err(&path, e)))
            .and_then(|()| {
                self.ops
                    .sync_dir(&self.dir)
                    .map_err(|e| io_err(&self.dir, e))
            });
        if let Err(e) = written {
            // Withdraw the claim and the torn temp so a retry can reuse
            // the number; if *this* cleanup dies too, recover() sweeps.
            let _ = self.ops.remove_file(&tmp);
            let _ = self.ops.remove_file(&path);
            return Err(e);
        }
        if let Some(keep) = self.retention {
            self.gc(keep)?;
        }
        Ok(version)
    }

    /// Read one artifact file's raw bytes through the seam. JSON flows
    /// through `read_to_string` (the historical fault-injection path);
    /// binary through `read_bytes`.
    fn read_raw(&self, path: &Path, format: ArtifactFormat) -> std::io::Result<Vec<u8>> {
        match format {
            ArtifactFormat::Json => self.ops.read_to_string(path).map(String::into_bytes),
            ArtifactFormat::Bin => self.ops.read_bytes(path),
        }
    }

    /// Load one version from one specific format.
    fn load_as(&self, version: u64, format: ArtifactFormat) -> Result<A, ServeError> {
        let path = self.path_for(version, format);
        let source = path.display().to_string();
        // Zero-copy read path: only when the seam itself says mapping is
        // safe (FaultyFs says no, keeping chaos coverage intact).
        #[cfg(feature = "mmap")]
        if format == ArtifactFormat::Bin && self.ops.supports_mmap() {
            return match crate::binary::mmap::map_file(&path) {
                Ok(mapping) => A::decode_as(format, &mapping, &source),
                Err(e) if e.kind() == ErrorKind::NotFound => {
                    Err(ServeError::VersionNotFound { version })
                }
                Err(e) => Err(io_err(&path, e)),
            };
        }
        let bytes = match self.read_raw(&path, format) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == ErrorKind::NotFound => {
                return Err(ServeError::VersionNotFound { version })
            }
            Err(e) => return Err(io_err(&path, e)),
        };
        A::decode_as(format, &bytes, &source)
    }

    /// Load one version, verifying its checksum before parsing.
    ///
    /// The registry's own format is probed first, then the other — so a
    /// version saved as JSON still loads from a registry configured for
    /// binary (and vice versa), and a corrupt file in one format falls
    /// back to a good sibling in the other. Transient I/O propagates;
    /// the version is corrupt only if every present file is.
    pub fn load(&self, version: u64) -> Result<A, ServeError> {
        let mut first_defect = None;
        for format in [self.format, self.format.other()] {
            match self.load_as(version, format) {
                Ok(model) => return Ok(model),
                Err(ServeError::VersionNotFound { .. }) => {}
                Err(e) if e.is_corruption() => {
                    if first_defect.is_none() {
                        first_defect = Some(e);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(first_defect.unwrap_or(ServeError::VersionNotFound { version }))
    }

    /// Load the newest *good* version, returning `(version, model)`.
    ///
    /// Corrupt versions (bad checksum, unparsable, wrong schema) are
    /// skipped, newest first, until one verifies — a torn newest artifact
    /// degrades service to the previous model instead of taking it down.
    /// Transient I/O errors propagate (typed retryable) rather than
    /// masking a healthy newer version behind an older one. Errors only
    /// if the registry is empty or *no* version is good; the error names
    /// the newest version's defect.
    pub fn load_latest(&self) -> Result<(u64, A), ServeError> {
        let versions = self.list()?;
        let mut newest_defect = None;
        for &version in versions.iter().rev() {
            match self.load(version) {
                Ok(model) => return Ok((version, model)),
                Err(e) if e.is_corruption() => {
                    if newest_defect.is_none() {
                        newest_defect = Some(e);
                    }
                }
                // Raced a GC or a quarantine; the version is simply gone.
                Err(ServeError::VersionNotFound { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Err(newest_defect.unwrap_or(ServeError::EmptyRegistry))
    }

    /// Startup recovery scan: sweep stale temp files, verify every
    /// version, and move all-corrupt versions aside as
    /// `model-v<N>.<ext>.quarantined` — bytes are preserved for
    /// post-mortems, never deleted. A version with *any* decodable file
    /// is good and is left whole (a corrupt sibling stays beside it);
    /// when every file of a version is corrupt, every file moves — the
    /// version is quarantined as a unit, never split. Returns what was
    /// found. Transient I/O errors propagate; rerun `recover` to
    /// continue.
    pub fn recover(&self) -> Result<RecoveryReport, ServeError> {
        let mut report = RecoveryReport {
            swept_tmp: self.sweep_tmp()?,
            ..RecoveryReport::default()
        };
        for version in self.list()? {
            match self.load(version) {
                Ok(_) => report.good.push(version),
                Err(defect) if defect.is_corruption() => {
                    for format in self.formats_of(version)? {
                        let from = self.path_for(version, format);
                        let to = self.quarantine_path_for(version, format);
                        match self.ops.rename(&from, &to) {
                            Ok(()) => {}
                            // Raced another recover; the file already moved.
                            Err(e) if e.kind() == ErrorKind::NotFound => {}
                            Err(e) => return Err(io_err(&from, e)),
                        }
                    }
                    // Make the quarantine itself durable, best effort.
                    let _ = self.ops.sync_dir(&self.dir);
                    report.quarantined.push((version, defect));
                }
                Err(ServeError::VersionNotFound { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(report)
    }

    /// Garbage-collect old **good** versions, keeping the newest `keep`
    /// of them. A pruned version loses *all* its files (both formats —
    /// GC never splits a version); versions whose every file is corrupt
    /// are skipped entirely (left for [`recover`](Self::recover)), and
    /// versions the installed [`VersionPins`] source reports — bases
    /// that live fold-in deltas still chain from — are held back even
    /// when older than the retention window. Returns the versions
    /// deleted.
    pub fn gc(&self, keep: usize) -> Result<Vec<u64>, ServeError> {
        let keep = keep.max(1);
        let mut good = Vec::new();
        for version in self.list()? {
            // Cheap verification: the checksum, not a full parse. Any
            // verifying file makes the whole version good.
            for format in self.formats_of(version)? {
                let path = self.path_for(version, format);
                match self.read_raw(&path, format) {
                    Ok(bytes) => {
                        if A::verify_as(format, &bytes, &path.display().to_string()).is_ok() {
                            good.push(version);
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::NotFound => {}
                    Err(e) => return Err(io_err(&path, e)),
                }
            }
        }
        let pinned: Vec<u64> = self
            .pins
            .as_ref()
            .map(|p| p.pinned_versions())
            .unwrap_or_default();
        let excess = good.len().saturating_sub(keep);
        let mut pruned = Vec::with_capacity(excess);
        for &version in &good[..excess] {
            if pinned.contains(&version) {
                continue;
            }
            for format in self.formats_of(version)? {
                let path = self.path_for(version, format);
                match self.ops.remove_file(&path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == ErrorKind::NotFound => {}
                    Err(e) => return Err(io_err(&path, e)),
                }
            }
            pruned.push(version);
        }
        Ok(pruned)
    }

    /// Delete one version outright — every file of it, both formats —
    /// and make the deletion durable. This is the compaction hook: once
    /// a refresh has folded a delta into a newly published full model,
    /// the delta's registry entry is dead weight and is removed as a
    /// whole unit. Returns whether any file existed. Quarantined files
    /// of the version are left alone (they are `recover`'s evidence).
    pub fn remove(&self, version: u64) -> Result<bool, ServeError> {
        let mut removed = false;
        for format in self.formats_of(version)? {
            let path = self.path_for(version, format);
            match self.ops.remove_file(&path) {
                Ok(()) => removed = true,
                Err(e) if e.kind() == ErrorKind::NotFound => {}
                Err(e) => return Err(io_err(&path, e)),
            }
        }
        if removed {
            let _ = self.ops.sync_dir(&self.dir);
        }
        Ok(removed)
    }
}

fn io_err(path: &Path, e: std::io::Error) -> ServeError {
    ServeError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
        transient: matches!(
            e.kind(),
            ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, FaultyFs};
    use anchors_curricula::cs2013;
    use anchors_factor::{NnmfModel, NnmfRecovery};
    use anchors_linalg::{Backend, Matrix};
    use anchors_materials::TagSpace;
    use std::fs;

    fn toy_model(loss: f64) -> FittedModel {
        let cs = cs2013();
        let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(5));
        let model = NnmfModel {
            w: Matrix::from_fn(3, 2, |i, j| (i + j) as f64 * 0.5),
            h: Matrix::from_fn(2, 5, |i, j| (i * 5 + j) as f64 * 0.1),
            loss,
            iterations: 9,
            converged: true,
            winning_seed: 42,
            recovery: NnmfRecovery::default(),
        };
        FittedModel::new("toy", cs, &space, &model, Backend::Dense).expect("valid")
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "anchors-serve-registry-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tmp_registry(tag: &str) -> Registry {
        Registry::open(tmp_dir(tag)).expect("open")
    }

    /// Byte-level damage that works for either format: truncate the file
    /// to `num/den` of its length. The checksum catches it regardless of
    /// what the bytes mean.
    fn truncate_artifact(reg: &Registry, version: u64, num: usize, den: usize) {
        let path = reg.path_of(version);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() * num / den]).unwrap();
    }

    /// Byte-level damage: flip one bit mid-file (payload, not trailer).
    fn flip_artifact_byte(reg: &Registry, version: u64) {
        let path = reg.path_of(version);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, bytes).unwrap();
    }

    #[test]
    fn versions_are_monotonic_and_listable() {
        let reg = tmp_registry("mono");
        assert_eq!(reg.list().unwrap(), Vec::<u64>::new());
        assert!(matches!(reg.load_latest(), Err(ServeError::EmptyRegistry)));
        let v1 = reg.save(&toy_model(0.5)).unwrap();
        let v2 = reg.save(&toy_model(0.25)).unwrap();
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(reg.list().unwrap(), vec![1, 2]);
        let (latest, model) = reg.load_latest().unwrap();
        assert_eq!(latest, 2);
        assert_eq!(model.loss, 0.25);
        assert_eq!(reg.load(1).unwrap().loss, 0.5);
        assert!(matches!(
            reg.load(7),
            Err(ServeError::VersionNotFound { version: 7 })
        ));
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn corrupt_artifacts_are_detected_not_served() {
        let reg = tmp_registry("corrupt");
        let v = reg.save(&toy_model(0.5)).unwrap();
        truncate_artifact(&reg, v, 1, 2);
        let err = reg.load(v).unwrap_err();
        assert!(err.is_corruption(), "truncation is typed corruption: {err}");
        // The next save still picks a fresh version above the corrupt one.
        let v2 = reg.save(&toy_model(0.1)).unwrap();
        assert_eq!(v2, 2);
        assert_eq!(reg.load(v2).unwrap().loss, 0.1);
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn checksum_catches_damage_json_would_accept() {
        // Intrinsically a JSON-text scenario: pin the format so the
        // tamper site exists regardless of the ambient env selection.
        let reg = tmp_registry("checksum").with_format(ArtifactFormat::Json);
        let v = reg.save(&toy_model(0.5)).unwrap();
        let path = reg.path_of(v);
        // Flip one digit inside the JSON: still perfectly parsable, but
        // not the bytes that were saved.
        let text = fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("\"iterations\":9", "\"iterations\":8", 1);
        assert_ne!(text, tampered, "tamper site must exist");
        fs::write(&path, tampered).unwrap();
        match reg.load(v) {
            Err(ServeError::ChecksumMismatch {
                source,
                expected,
                found,
            }) => {
                assert!(source.contains("model-v1.json"), "{source}");
                assert_ne!(expected, found);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn load_latest_falls_back_past_corrupt_versions() {
        let reg = tmp_registry("fallback");
        reg.save(&toy_model(0.5)).unwrap();
        reg.save(&toy_model(0.25)).unwrap();
        let v3 = reg.save(&toy_model(0.125)).unwrap();
        // Corrupt the newest two; the oldest must answer.
        for v in [2, 3] {
            truncate_artifact(&reg, v, 1, 3);
        }
        let (v, model) = reg.load_latest().unwrap();
        assert_eq!(v, 1);
        assert_eq!(model.loss, 0.5);
        // With every version damaged, the newest defect is reported.
        truncate_artifact(&reg, 1, 1, 3);
        assert!(reg.load_latest().unwrap_err().is_corruption());
        assert_eq!(v3, 3);
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn recover_quarantines_but_never_deletes() {
        let reg = tmp_registry("recover");
        reg.save(&toy_model(0.5)).unwrap();
        reg.save(&toy_model(0.25)).unwrap();
        reg.save(&toy_model(0.125)).unwrap();
        // Damage v2 and leave a stale temp file behind.
        flip_artifact_byte(&reg, 2);
        fs::write(reg.tmp_path_of(9), "torn").unwrap();

        let report = reg.recover().unwrap();
        assert_eq!(report.good, vec![1, 3]);
        assert_eq!(report.swept_tmp, 1);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].0, 2);
        assert!(report.quarantined[0].1.is_corruption());
        // The bytes moved, they did not vanish.
        assert!(reg.quarantine_path_of(2).exists());
        assert!(!reg.path_of(2).exists());
        assert_eq!(reg.list().unwrap(), vec![1, 3]);
        // Quarantined versions still count: the number 2 is never reused.
        assert_eq!(reg.next_version().unwrap(), 4);
        // A clean registry recovers to a no-op.
        let again = reg.recover().unwrap();
        assert_eq!(again.good, vec![1, 3]);
        assert!(again.quarantined.is_empty());
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn retention_gc_keeps_newest_good_versions() {
        let reg = tmp_registry("gc").with_retention(2);
        for loss in [0.5, 0.4, 0.3, 0.2] {
            reg.save(&toy_model(loss)).unwrap();
        }
        assert_eq!(reg.list().unwrap(), vec![3, 4], "cap of 2 enforced");
        // Corrupt the newest, then save: GC must not delete v3, the
        // newest *good* version besides the fresh save.
        truncate_artifact(&reg, 4, 1, 2);
        let v5 = reg.save(&toy_model(0.1)).unwrap();
        assert_eq!(v5, 5);
        let listed = reg.list().unwrap();
        assert!(listed.contains(&3), "good v3 survives: {listed:?}");
        assert!(listed.contains(&4), "corrupt v4 is evidence, not garbage");
        assert!(listed.contains(&5));
        let (v, _) = reg.load_latest().unwrap();
        assert_eq!(v, 5);
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn pinned_versions_survive_retention_gc() {
        use std::sync::Mutex;
        #[derive(Default)]
        struct Pins(Mutex<Vec<u64>>);
        impl VersionPins for Pins {
            fn pinned_versions(&self) -> Vec<u64> {
                self.0.lock().unwrap().clone()
            }
        }
        let pins = Arc::new(Pins::default());
        let reg = tmp_registry("pins")
            .with_retention(2)
            .with_pins(pins.clone());
        let v1 = reg.save(&toy_model(0.9)).unwrap();
        *pins.0.lock().unwrap() = vec![v1];
        for loss in [0.5, 0.4, 0.3] {
            reg.save(&toy_model(loss)).unwrap();
        }
        let listed = reg.list().unwrap();
        assert!(
            listed.contains(&v1),
            "pinned base survives three saves past the cap: {listed:?}"
        );
        assert_eq!(listed, vec![1, 3, 4], "unpinned old versions still GC");
        // Dropping the pin makes the base collectable on the next pass.
        pins.0.lock().unwrap().clear();
        reg.save(&toy_model(0.2)).unwrap();
        let listed = reg.list().unwrap();
        assert!(
            !listed.contains(&v1),
            "unpinned base is collected: {listed:?}"
        );
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn remove_deletes_a_version_as_one_unit() {
        let reg = tmp_registry("remove");
        let v1 = reg.save(&toy_model(0.5)).unwrap();
        let v2 = reg.save(&toy_model(0.4)).unwrap();
        // Give v1 a sibling in the other format so removal must take both.
        let other = reg.format().other();
        let model = reg.load(v1).unwrap();
        fs::write(reg.path_for(v1, other), model.encode_as(other)).unwrap();
        assert!(reg.remove(v1).unwrap());
        assert_eq!(reg.list().unwrap(), vec![v2]);
        assert!(!reg.remove(v1).unwrap(), "second remove is a no-op");
        assert!(
            matches!(reg.load(v1), Err(ServeError::VersionNotFound { .. })),
            "removed version is gone in every format"
        );
        // Version numbers are never reused even after removal.
        assert_eq!(reg.save(&toy_model(0.3)).unwrap(), 3);
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn concurrent_savers_claim_distinct_versions() {
        use std::sync::Arc as StdArc;
        let reg = StdArc::new(tmp_registry("race"));
        const THREADS: usize = 4;
        const SAVES: usize = 5;
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let reg = StdArc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                (0..SAVES)
                    .map(|s| reg.save(&toy_model((t * SAVES + s) as f64)).unwrap())
                    .collect::<Vec<u64>>()
            }));
        }
        let mut versions: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("saver"))
            .collect();
        versions.sort_unstable();
        let mut expected: Vec<u64> = (1..=(THREADS * SAVES) as u64).collect();
        expected.sort_unstable();
        assert_eq!(versions, expected, "every version written exactly once");
        for v in versions {
            reg.load(v)
                .unwrap_or_else(|e| panic!("v{v} unreadable: {e}"));
        }
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn open_sweeps_stale_tmp_files() {
        let dir = tmp_dir("sweep");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(".model-v7.json.tmp"), "half a model").unwrap();
        fs::write(dir.join(".model-v8.bin.tmp"), "half a model").unwrap();
        fs::write(dir.join("unrelated.txt"), "sidecar").unwrap();
        let reg: Registry = Registry::open(&dir).unwrap();
        assert!(!dir.join(".model-v7.json.tmp").exists(), "json tmp swept");
        assert!(!dir.join(".model-v8.bin.tmp").exists(), "bin tmp swept");
        assert!(dir.join("unrelated.txt").exists(), "sidecars untouched");
        assert_eq!(reg.list().unwrap(), Vec::<u64>::new());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_fails_save_but_registry_stays_consistent() {
        let fs_seam = Arc::new(FaultyFs::new(FaultPlan::none(11).with_torn_write(1.0)));
        let dir = tmp_dir("torn-save");
        fs_seam.set_enabled(false);
        let reg = Registry::open_with(&dir, Arc::clone(&fs_seam) as Arc<dyn FileOps>).unwrap();
        reg.save(&toy_model(0.5)).unwrap();
        fs_seam.set_enabled(true);
        let err = reg.save(&toy_model(0.25)).unwrap_err();
        assert!(!err.is_transient(), "torn write is not retry-as-is: {err}");
        // The failed save left nothing behind and the old model answers.
        fs_seam.set_enabled(false);
        assert_eq!(reg.list().unwrap(), vec![1]);
        let (v, model) = reg.load_latest().unwrap();
        assert_eq!((v, model.loss), (1, 0.5));
        assert!(
            fs_seam
                .counters()
                .torn_writes
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1
        );
        // And the version number freed by the cleanup is reusable.
        assert_eq!(reg.save(&toy_model(0.125)).unwrap(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_faults_surface_as_retryable_then_heal() {
        let fs_seam = Arc::new(FaultyFs::new(
            FaultPlan::none(13)
                .with_transient_error(1.0)
                .with_max_faults(2),
        ));
        let dir = tmp_dir("transient");
        fs_seam.set_enabled(false);
        let reg = Registry::open_with(&dir, Arc::clone(&fs_seam) as Arc<dyn FileOps>).unwrap();
        reg.save(&toy_model(0.5)).unwrap();
        fs_seam.set_enabled(true);
        // Retry until the budget is spent: the typed transient flag is
        // exactly what a retry loop keys on.
        let mut attempts = 0;
        let loaded = loop {
            attempts += 1;
            match reg.load_latest() {
                Ok(got) => break got,
                Err(e) => assert!(e.is_transient(), "only transient faults injected: {e}"),
            }
            assert!(attempts < 10, "budget of 2 must heal quickly");
        };
        assert_eq!(loaded.0, 1);
        assert!(attempts > 1, "at least one injected failure observed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn binary_registry_roundtrips_and_names_bin_files() {
        let reg = tmp_registry("binfmt").with_format(ArtifactFormat::Bin);
        let v = reg.save(&toy_model(0.5)).unwrap();
        assert!(reg.dir().join(format!("model-v{v}.bin")).exists());
        assert!(!reg.dir().join(format!("model-v{v}.json")).exists());
        let (latest, model) = reg.load_latest().unwrap();
        assert_eq!((latest, model.loss), (v, 0.5));
        assert_eq!(model.w, toy_model(0.5).w, "W survives binary round-trip");
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn load_falls_back_to_the_other_format() {
        let dir = tmp_dir("xfmt");
        let json_reg = Registry::open(&dir)
            .unwrap()
            .with_format(ArtifactFormat::Json);
        let bin_reg = Registry::open(&dir)
            .unwrap()
            .with_format(ArtifactFormat::Bin);
        let v1 = json_reg.save(&toy_model(0.5)).unwrap();
        let v2 = bin_reg.save(&toy_model(0.25)).unwrap();
        assert_eq!((v1, v2), (1, 2), "one version sequence across formats");
        // Each registry reads the other's artifacts transparently.
        assert_eq!(bin_reg.load(v1).unwrap().loss, 0.5);
        assert_eq!(json_reg.load(v2).unwrap().loss, 0.25);
        assert_eq!(json_reg.list().unwrap(), vec![1, 2]);
        // A corrupt own-format file falls back to a good sibling.
        let sibling = bin_reg.path_for(v1, ArtifactFormat::Bin);
        fs::write(
            &sibling,
            ArtifactFormat::Bin.codec().encode(&toy_model(0.5)),
        )
        .unwrap();
        truncate_artifact(&json_reg, v1, 1, 2);
        assert_eq!(bin_reg.load(v1).unwrap().loss, 0.5, "bin sibling answers");
        assert_eq!(
            json_reg.load(v1).unwrap().loss,
            0.5,
            "fallback crosses formats"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_treats_a_version_as_one_unit() {
        let reg = tmp_registry("unit");
        let v = reg.save(&toy_model(0.5)).unwrap();
        // Give v1 a sibling in the other format, then corrupt only the
        // primary: the version stays good and nothing is quarantined.
        let other = reg.format().other();
        fs::write(
            reg.path_for(v, other),
            other.codec().encode(&toy_model(0.5)),
        )
        .unwrap();
        truncate_artifact(&reg, v, 1, 2);
        let report = reg.recover().unwrap();
        assert_eq!(report.good, vec![v], "any good file keeps the version");
        assert!(report.quarantined.is_empty());
        assert!(reg.path_of(v).exists(), "corrupt sibling left in place");
        assert!(reg.path_for(v, other).exists());

        // Now corrupt the sibling too: the version is quarantined whole.
        let bytes = fs::read(reg.path_for(v, other)).unwrap();
        fs::write(reg.path_for(v, other), &bytes[..bytes.len() / 2]).unwrap();
        let report = reg.recover().unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].0, v);
        assert!(
            reg.quarantine_path_of(v).exists(),
            "primary-format file quarantined"
        );
        assert!(
            reg.quarantine_path_for(v, other).exists(),
            "sibling quarantined with it — never split"
        );
        assert!(!reg.path_of(v).exists());
        assert!(!reg.path_for(v, other).exists());
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn gc_prunes_a_version_as_one_unit() {
        let reg = tmp_registry("gc-unit");
        for loss in [0.5, 0.4, 0.3] {
            reg.save(&toy_model(loss)).unwrap();
        }
        // v1 exists in both formats; pruning must take both files.
        let other = reg.format().other();
        fs::write(
            reg.path_for(1, other),
            other.codec().encode(&toy_model(0.5)),
        )
        .unwrap();
        let pruned = reg.gc(2).unwrap();
        assert_eq!(pruned, vec![1]);
        assert!(!reg.path_of(1).exists(), "primary pruned");
        assert!(!reg.path_for(1, other).exists(), "sibling pruned with it");
        assert_eq!(reg.list().unwrap(), vec![2, 3]);
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn next_version_counts_both_formats() {
        let reg = tmp_registry("nextv");
        let other = reg.format().other();
        fs::write(
            reg.path_for(5, other),
            other.codec().encode(&toy_model(0.5)),
        )
        .unwrap();
        assert_eq!(reg.save(&toy_model(0.25)).unwrap(), 6);
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn entry_names_parse_and_ignore_sidecars() {
        assert_eq!(
            parse_entry("model", "model-v12.json"),
            Some((12, ArtifactFormat::Json, EntryKind::Model))
        );
        assert_eq!(
            parse_entry("model", "model-v12.bin"),
            Some((12, ArtifactFormat::Bin, EntryKind::Model))
        );
        assert_eq!(
            parse_entry("model", ".model-v3.json.tmp"),
            Some((3, ArtifactFormat::Json, EntryKind::Tmp))
        );
        assert_eq!(
            parse_entry("model", ".model-v3.bin.tmp"),
            Some((3, ArtifactFormat::Bin, EntryKind::Tmp))
        );
        assert_eq!(
            parse_entry("model", "model-v8.json.quarantined"),
            Some((8, ArtifactFormat::Json, EntryKind::Quarantined))
        );
        assert_eq!(
            parse_entry("model", "model-v8.bin.quarantined"),
            Some((8, ArtifactFormat::Bin, EntryKind::Quarantined))
        );
        assert_eq!(
            parse_entry("text", "text-v2.json"),
            Some((2, ArtifactFormat::Json, EntryKind::Model))
        );
        for bogus in [
            "model-vX.json",
            "model-v1.json.bak",
            "model-v1.binx",
            "notes.txt",
            ".hidden",
            "model-v1",
            "text-v2.json",
        ] {
            assert_eq!(parse_entry("model", bogus), None, "{bogus}");
        }
        assert_eq!(
            parse_entry("text", "model-v1.json"),
            None,
            "stems never cross"
        );
    }

    fn toy_text_model() -> anchors_text::TextModel {
        let cs = cs2013();
        let codes: Vec<String> = cs
            .leaf_items()
            .into_iter()
            .take(2)
            .map(|id| cs.node(id).code.clone())
            .collect();
        let config = anchors_text::FeaturizerConfig {
            n_buckets: 16,
            ..anchors_text::FeaturizerConfig::default()
        };
        anchors_text::TextModel {
            name: "toy-text".into(),
            guideline: cs.name.clone(),
            fingerprint: cs.fingerprint(),
            tag_codes: codes,
            config,
            idf: vec![1.0; 16],
            weights: Matrix::from_fn(2, 16, |i, j| (i + j) as f64 * 0.25),
            bias: vec![0.0, 0.1],
            thresholds: vec![0.5, 0.5],
            train_docs: 4,
            train_seed: 11,
            train_f1: 1.0,
        }
    }

    /// Two registries over the *same* directory, one per artifact kind:
    /// stems keep their version sequences and recovery scans independent.
    #[test]
    fn text_and_model_registries_share_a_directory() {
        let dir = tmp_dir("shared-stems");
        let models: Registry = Registry::open(&dir).unwrap();
        let texts: Registry<anchors_text::TextModel> = Registry::open(&dir).unwrap();

        let mv = models.save(&toy_model(0.5)).unwrap();
        let tv1 = texts.save(&toy_text_model()).unwrap();
        let tv2 = texts.save(&toy_text_model()).unwrap();
        assert_eq!((mv, tv1, tv2), (1, 1, 2), "independent version sequences");
        assert_eq!(models.list().unwrap(), vec![1]);
        assert_eq!(texts.list().unwrap(), vec![1, 2]);

        // Corrupt the newest text artifact: its recovery quarantines it,
        // the model registry's scan never touches it.
        truncate_artifact_at(&texts.path_of(tv2));
        let report = texts.recover().unwrap();
        let quarantined: Vec<u64> = report.quarantined.iter().map(|(v, _)| *v).collect();
        assert_eq!(quarantined, vec![tv2]);
        assert!(models.recover().unwrap().quarantined.is_empty());
        let (latest, reloaded) = texts.load_latest().unwrap();
        assert_eq!(latest, tv1);
        assert_eq!(reloaded, toy_text_model());
        let (latest, _) = models.load_latest().unwrap();
        assert_eq!(latest, mv, "model registry unaffected");
    }

    fn truncate_artifact_at(path: &std::path::Path) {
        let bytes = fs::read(path).unwrap();
        fs::write(path, &bytes[..bytes.len() / 2]).unwrap();
    }
}
