//! Crash-safe versioned on-disk model registry.
//!
//! A registry is a directory of `model-v<N>.json` artifacts. Versions are
//! monotonically increasing and claimed with `create_new`, so a version
//! number, once taken, always refers to the same artifact — even under
//! concurrent savers, and even across a quarantine (quarantined versions
//! still count when picking the next number).
//!
//! Durability protocol, in write order:
//!
//! 1. **claim** — `create_new(model-v<N>.json)` atomically reserves the
//!    version; collisions retry with the next number.
//! 2. **write** — the framed artifact goes to a hidden
//!    `.model-v<N>.json.tmp`, which is fsynced before step 3.
//! 3. **rename** — the temp file atomically replaces the claim file, so
//!    readers only ever see nothing, an (obviously invalid) empty claim,
//!    or complete bytes.
//! 4. **sync dir** — the directory itself is fsynced, making the rename
//!    durable.
//!
//! Every artifact carries a trailer line `#fnv1a:<16-hex>` holding the
//! FNV-1a-64 checksum of the JSON payload above it. [`Registry::load`]
//! verifies the trailer before parsing, so damage the JSON parser would
//! accept — a partial read that happens to end at a token boundary, bit
//! rot inside a number — still surfaces as a typed
//! [`ServeError::ChecksumMismatch`].
//!
//! A half-written file can therefore never be mistaken for a model, and
//! [`Registry::load_latest`] *falls back*: corrupt versions are skipped
//! (newest first) until a good one answers. [`Registry::recover`] is the
//! startup sweep — it deletes stale temp files, classifies every version,
//! and moves corrupt artifacts aside as `model-v<N>.json.quarantined`
//! (never deleting bytes an operator might want to examine). An optional
//! retention cap garbage-collects old *good* versions after each save;
//! corrupt files are left for `recover` so evidence is never GC'd.

use crate::artifact::FittedModel;
use crate::error::ServeError;
use crate::fsio::{FileOps, RealFs};
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Filename prefix/suffix of artifact files.
const PREFIX: &str = "model-v";
const SUFFIX: &str = ".json";
/// Suffix of in-flight temp files (which also get a leading dot).
const TMP_SUFFIX: &str = ".tmp";
/// Suffix corrupt artifacts are renamed to by [`Registry::recover`].
const QUARANTINE_SUFFIX: &str = ".quarantined";
/// Prefix of the checksum trailer line appended to every artifact.
const CHECKSUM_PREFIX: &str = "#fnv1a:";
/// Bound on version-claim retries under pathological contention.
const CLAIM_RETRIES: u64 = 4096;

/// FNV-1a-64 over raw bytes — same constants as
/// `Ontology::fingerprint`, kept dependency-free.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Wrap an artifact JSON payload with its checksum trailer.
fn frame(payload: &str) -> String {
    format!(
        "{payload}\n{CHECKSUM_PREFIX}{:016x}\n",
        fnv1a_64(payload.as_bytes())
    )
}

/// Split framed text back into its payload, verifying the trailer.
fn unframe<'a>(text: &'a str, source: &str) -> Result<&'a str, ServeError> {
    let corrupt = |detail: &str| ServeError::Corrupt {
        source: source.to_string(),
        detail: detail.to_string(),
    };
    let body = text
        .strip_suffix('\n')
        .ok_or_else(|| corrupt("missing checksum trailer (no trailing newline)"))?;
    let (payload, trailer) = body
        .rsplit_once('\n')
        .ok_or_else(|| corrupt("missing checksum trailer line"))?;
    let hex = trailer
        .strip_prefix(CHECKSUM_PREFIX)
        .ok_or_else(|| corrupt("final line is not a checksum trailer"))?;
    let expected = u64::from_str_radix(hex, 16)
        .map_err(|_| corrupt("checksum trailer is not 16 hex digits"))?;
    let found = fnv1a_64(payload.as_bytes());
    if found != expected {
        return Err(ServeError::ChecksumMismatch {
            source: source.to_string(),
            expected,
            found,
        });
    }
    Ok(payload)
}

/// What kind of registry entry a directory name is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryKind {
    /// A (claimed or complete) `model-v<N>.json`.
    Model,
    /// A stale `.model-v<N>.json.tmp` from an interrupted save.
    Tmp,
    /// A `model-v<N>.json.quarantined` moved aside by `recover`.
    Quarantined,
}

/// Parse one directory entry name into `(version, kind)`.
fn parse_entry(name: &str) -> Option<(u64, EntryKind)> {
    let (stem, kind) = if let Some(stem) = name.strip_prefix('.') {
        (stem.strip_suffix(TMP_SUFFIX)?, EntryKind::Tmp)
    } else if let Some(stem) = name.strip_suffix(QUARANTINE_SUFFIX) {
        (stem, EntryKind::Quarantined)
    } else {
        (name, EntryKind::Model)
    };
    let version = stem
        .strip_prefix(PREFIX)?
        .strip_suffix(SUFFIX)?
        .parse::<u64>()
        .ok()?;
    Some((version, kind))
}

/// What [`Registry::recover`] found and did.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Versions that verified clean, ascending.
    pub good: Vec<u64>,
    /// Versions moved to `*.quarantined`, with the defect that condemned
    /// each.
    pub quarantined: Vec<(u64, ServeError)>,
    /// Stale temp files deleted.
    pub swept_tmp: usize,
}

/// A directory of versioned model artifacts.
#[derive(Debug, Clone)]
pub struct Registry {
    dir: PathBuf,
    ops: Arc<dyn FileOps>,
    retention: Option<usize>,
}

impl Registry {
    /// Open (creating if needed) a registry directory on the real
    /// filesystem, sweeping any temp files a crashed save left behind.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ServeError> {
        Self::open_with(dir, Arc::new(RealFs))
    }

    /// Open a registry over an injected [`FileOps`] — the seam the fault
    /// suite uses to put weather between the registry and the disk.
    pub fn open_with(dir: impl Into<PathBuf>, ops: Arc<dyn FileOps>) -> Result<Self, ServeError> {
        let dir = dir.into();
        ops.create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let registry = Registry {
            dir,
            ops,
            retention: None,
        };
        registry.sweep_tmp()?;
        Ok(registry)
    }

    /// Keep only the newest `keep` *good* versions after each save
    /// (minimum 1). Corrupt files are never GC'd — they are
    /// [`recover`](Self::recover)'s evidence.
    pub fn with_retention(mut self, keep: usize) -> Self {
        self.retention = Some(keep.max(1));
        self
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, version: u64) -> PathBuf {
        self.dir.join(format!("{PREFIX}{version}{SUFFIX}"))
    }

    fn tmp_path_of(&self, version: u64) -> PathBuf {
        self.dir
            .join(format!(".{PREFIX}{version}{SUFFIX}{TMP_SUFFIX}"))
    }

    fn quarantine_path_of(&self, version: u64) -> PathBuf {
        self.dir
            .join(format!("{PREFIX}{version}{SUFFIX}{QUARANTINE_SUFFIX}"))
    }

    /// All `(version, kind)` entries, unsorted.
    fn scan(&self) -> Result<Vec<(u64, EntryKind)>, ServeError> {
        let names = self
            .ops
            .read_dir_names(&self.dir)
            .map_err(|e| io_err(&self.dir, e))?;
        Ok(names.iter().filter_map(|n| parse_entry(n)).collect())
    }

    /// All versions present, ascending. Files that do not match the
    /// artifact naming scheme — including temp and quarantined files —
    /// are ignored (the registry may share a directory with sidecars).
    pub fn list(&self) -> Result<Vec<u64>, ServeError> {
        let mut versions: Vec<u64> = self
            .scan()?
            .into_iter()
            .filter(|&(_, kind)| kind == EntryKind::Model)
            .map(|(v, _)| v)
            .collect();
        versions.sort_unstable();
        Ok(versions)
    }

    /// The next unclaimed version number: one past the newest version
    /// ever taken, *including* quarantined ones — a version number is
    /// never reused once any artifact has carried it.
    fn next_version(&self) -> Result<u64, ServeError> {
        Ok(self
            .scan()?
            .into_iter()
            .filter(|&(_, kind)| kind != EntryKind::Tmp)
            .map(|(v, _)| v)
            .max()
            .unwrap_or(0)
            + 1)
    }

    /// Delete stale temp files; returns how many were swept.
    fn sweep_tmp(&self) -> Result<usize, ServeError> {
        let mut swept = 0;
        for (version, kind) in self.scan()? {
            if kind == EntryKind::Tmp {
                let path = self.tmp_path_of(version);
                match self.ops.remove_file(&path) {
                    Ok(()) => swept += 1,
                    // A concurrent save may have renamed it away already.
                    Err(e) if e.kind() == ErrorKind::NotFound => {}
                    Err(e) => return Err(io_err(&path, e)),
                }
            }
        }
        Ok(swept)
    }

    /// Persist a model under the next version number; returns it.
    ///
    /// The version is claimed with an atomic `create_new` (retrying past
    /// collisions), the artifact is written checksum-framed to a temp
    /// file, fsynced, renamed over the claim, and the directory is
    /// fsynced — the full crash-safe protocol from the module docs. On
    /// failure the claim and temp file are withdrawn (best effort; a
    /// crash instead leaves them for [`recover`](Self::recover)).
    pub fn save(&self, model: &FittedModel) -> Result<u64, ServeError> {
        let mut version = self.next_version()?;
        let claim_cap = version + CLAIM_RETRIES;
        let path = loop {
            let path = self.path_of(version);
            match self.ops.create_new(&path) {
                Ok(()) => break path,
                Err(e) if e.kind() == ErrorKind::AlreadyExists && version < claim_cap => {
                    version += 1;
                }
                Err(e) => return Err(io_err(&path, e)),
            }
        };
        let tmp = self.tmp_path_of(version);
        let written = self
            .ops
            .write_durable(&tmp, frame(&model.to_json()).as_bytes())
            .map_err(|e| io_err(&tmp, e))
            .and_then(|()| self.ops.rename(&tmp, &path).map_err(|e| io_err(&path, e)))
            .and_then(|()| {
                self.ops
                    .sync_dir(&self.dir)
                    .map_err(|e| io_err(&self.dir, e))
            });
        if let Err(e) = written {
            // Withdraw the claim and the torn temp so a retry can reuse
            // the number; if *this* cleanup dies too, recover() sweeps.
            let _ = self.ops.remove_file(&tmp);
            let _ = self.ops.remove_file(&path);
            return Err(e);
        }
        if let Some(keep) = self.retention {
            self.gc(keep)?;
        }
        Ok(version)
    }

    /// Load one version, verifying its checksum trailer before parsing.
    pub fn load(&self, version: u64) -> Result<FittedModel, ServeError> {
        let path = self.path_of(version);
        let text = match self.ops.read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == ErrorKind::NotFound => {
                return Err(ServeError::VersionNotFound { version })
            }
            Err(e) => return Err(io_err(&path, e)),
        };
        let source = path.display().to_string();
        let payload = unframe(&text, &source)?;
        FittedModel::from_json(payload, &source)
    }

    /// Load the newest *good* version, returning `(version, model)`.
    ///
    /// Corrupt versions (bad checksum, unparsable, wrong schema) are
    /// skipped, newest first, until one verifies — a torn newest artifact
    /// degrades service to the previous model instead of taking it down.
    /// Transient I/O errors propagate (typed retryable) rather than
    /// masking a healthy newer version behind an older one. Errors only
    /// if the registry is empty or *no* version is good; the error names
    /// the newest version's defect.
    pub fn load_latest(&self) -> Result<(u64, FittedModel), ServeError> {
        let versions = self.list()?;
        let mut newest_defect = None;
        for &version in versions.iter().rev() {
            match self.load(version) {
                Ok(model) => return Ok((version, model)),
                Err(e) if e.is_corruption() => {
                    if newest_defect.is_none() {
                        newest_defect = Some(e);
                    }
                }
                // Raced a GC or a quarantine; the version is simply gone.
                Err(ServeError::VersionNotFound { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Err(newest_defect.unwrap_or(ServeError::EmptyRegistry))
    }

    /// Startup recovery scan: sweep stale temp files, verify every
    /// version, and move corrupt artifacts aside as
    /// `model-v<N>.json.quarantined` — bytes are preserved for
    /// post-mortems, never deleted. Returns what was found. Transient
    /// I/O errors propagate; rerun `recover` to continue.
    pub fn recover(&self) -> Result<RecoveryReport, ServeError> {
        let mut report = RecoveryReport {
            swept_tmp: self.sweep_tmp()?,
            ..RecoveryReport::default()
        };
        for version in self.list()? {
            match self.load(version) {
                Ok(_) => report.good.push(version),
                Err(defect) if defect.is_corruption() => {
                    let from = self.path_of(version);
                    let to = self.quarantine_path_of(version);
                    self.ops.rename(&from, &to).map_err(|e| io_err(&from, e))?;
                    // Make the quarantine itself durable, best effort.
                    let _ = self.ops.sync_dir(&self.dir);
                    report.quarantined.push((version, defect));
                }
                Err(ServeError::VersionNotFound { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(report)
    }

    /// Garbage-collect old **good** versions, keeping the newest `keep`
    /// of them. Corrupt files are skipped (left for
    /// [`recover`](Self::recover)); returns the versions deleted.
    pub fn gc(&self, keep: usize) -> Result<Vec<u64>, ServeError> {
        let keep = keep.max(1);
        let mut good = Vec::new();
        for version in self.list()? {
            // Cheap verification: the checksum trailer, not a full parse.
            let path = self.path_of(version);
            match self.ops.read_to_string(&path) {
                Ok(text) => {
                    if unframe(&text, &path.display().to_string()).is_ok() {
                        good.push(version);
                    }
                }
                Err(e) if e.kind() == ErrorKind::NotFound => {}
                Err(e) => return Err(io_err(&path, e)),
            }
        }
        let excess = good.len().saturating_sub(keep);
        let mut pruned = Vec::with_capacity(excess);
        for &version in &good[..excess] {
            let path = self.path_of(version);
            match self.ops.remove_file(&path) {
                Ok(()) => pruned.push(version),
                Err(e) if e.kind() == ErrorKind::NotFound => {}
                Err(e) => return Err(io_err(&path, e)),
            }
        }
        Ok(pruned)
    }
}

fn io_err(path: &Path, e: std::io::Error) -> ServeError {
    ServeError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
        transient: matches!(
            e.kind(),
            ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, FaultyFs};
    use anchors_curricula::cs2013;
    use anchors_factor::{NnmfModel, NnmfRecovery};
    use anchors_linalg::{Backend, Matrix};
    use anchors_materials::TagSpace;
    use std::fs;

    fn toy_model(loss: f64) -> FittedModel {
        let cs = cs2013();
        let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(5));
        let model = NnmfModel {
            w: Matrix::from_fn(3, 2, |i, j| (i + j) as f64 * 0.5),
            h: Matrix::from_fn(2, 5, |i, j| (i * 5 + j) as f64 * 0.1),
            loss,
            iterations: 9,
            converged: true,
            winning_seed: 42,
            recovery: NnmfRecovery::default(),
        };
        FittedModel::new("toy", cs, &space, &model, Backend::Dense).expect("valid")
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "anchors-serve-registry-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tmp_registry(tag: &str) -> Registry {
        Registry::open(tmp_dir(tag)).expect("open")
    }

    #[test]
    fn versions_are_monotonic_and_listable() {
        let reg = tmp_registry("mono");
        assert_eq!(reg.list().unwrap(), Vec::<u64>::new());
        assert!(matches!(reg.load_latest(), Err(ServeError::EmptyRegistry)));
        let v1 = reg.save(&toy_model(0.5)).unwrap();
        let v2 = reg.save(&toy_model(0.25)).unwrap();
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(reg.list().unwrap(), vec![1, 2]);
        let (latest, model) = reg.load_latest().unwrap();
        assert_eq!(latest, 2);
        assert_eq!(model.loss, 0.25);
        assert_eq!(reg.load(1).unwrap().loss, 0.5);
        assert!(matches!(
            reg.load(7),
            Err(ServeError::VersionNotFound { version: 7 })
        ));
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn corrupt_artifacts_are_detected_not_served() {
        let reg = tmp_registry("corrupt");
        let v = reg.save(&toy_model(0.5)).unwrap();
        // Truncate the artifact on disk.
        let path = reg.path_of(v);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        match reg.load(v) {
            Err(ServeError::Corrupt { source, .. }) => {
                assert!(source.contains("model-v1.json"), "{source}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // The next save still picks a fresh version above the corrupt one.
        let v2 = reg.save(&toy_model(0.1)).unwrap();
        assert_eq!(v2, 2);
        assert_eq!(reg.load(v2).unwrap().loss, 0.1);
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn checksum_catches_damage_json_would_accept() {
        let reg = tmp_registry("checksum");
        let v = reg.save(&toy_model(0.5)).unwrap();
        let path = reg.path_of(v);
        // Flip one digit inside the JSON: still perfectly parsable, but
        // not the bytes that were saved.
        let text = fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("\"iterations\":9", "\"iterations\":8", 1);
        assert_ne!(text, tampered, "tamper site must exist");
        fs::write(&path, tampered).unwrap();
        match reg.load(v) {
            Err(ServeError::ChecksumMismatch {
                source,
                expected,
                found,
            }) => {
                assert!(source.contains("model-v1.json"), "{source}");
                assert_ne!(expected, found);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn load_latest_falls_back_past_corrupt_versions() {
        let reg = tmp_registry("fallback");
        reg.save(&toy_model(0.5)).unwrap();
        reg.save(&toy_model(0.25)).unwrap();
        let v3 = reg.save(&toy_model(0.125)).unwrap();
        // Corrupt the newest two; the oldest must answer.
        for v in [2, 3] {
            let path = reg.path_of(v);
            let text = fs::read_to_string(&path).unwrap();
            fs::write(&path, &text[..text.len() / 3]).unwrap();
        }
        let (v, model) = reg.load_latest().unwrap();
        assert_eq!(v, 1);
        assert_eq!(model.loss, 0.5);
        // With every version damaged, the newest defect is reported.
        let path = reg.path_of(1);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 3]).unwrap();
        assert!(reg.load_latest().unwrap_err().is_corruption());
        assert_eq!(v3, 3);
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn recover_quarantines_but_never_deletes() {
        let reg = tmp_registry("recover");
        reg.save(&toy_model(0.5)).unwrap();
        reg.save(&toy_model(0.25)).unwrap();
        reg.save(&toy_model(0.125)).unwrap();
        // Damage v2 and leave a stale temp file behind.
        let path = reg.path_of(2);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("0.25", "9.99")).unwrap();
        fs::write(reg.tmp_path_of(9), "torn").unwrap();

        let report = reg.recover().unwrap();
        assert_eq!(report.good, vec![1, 3]);
        assert_eq!(report.swept_tmp, 1);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].0, 2);
        assert!(report.quarantined[0].1.is_corruption());
        // The bytes moved, they did not vanish.
        assert!(reg.quarantine_path_of(2).exists());
        assert!(!reg.path_of(2).exists());
        assert_eq!(reg.list().unwrap(), vec![1, 3]);
        // Quarantined versions still count: the number 2 is never reused.
        assert_eq!(reg.next_version().unwrap(), 4);
        // A clean registry recovers to a no-op.
        let again = reg.recover().unwrap();
        assert_eq!(again.good, vec![1, 3]);
        assert!(again.quarantined.is_empty());
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn retention_gc_keeps_newest_good_versions() {
        let reg = tmp_registry("gc").with_retention(2);
        for loss in [0.5, 0.4, 0.3, 0.2] {
            reg.save(&toy_model(loss)).unwrap();
        }
        assert_eq!(reg.list().unwrap(), vec![3, 4], "cap of 2 enforced");
        // Corrupt the newest, then save: GC must not delete v3, the
        // newest *good* version besides the fresh save.
        let path = reg.path_of(4);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        let v5 = reg.save(&toy_model(0.1)).unwrap();
        assert_eq!(v5, 5);
        let listed = reg.list().unwrap();
        assert!(listed.contains(&3), "good v3 survives: {listed:?}");
        assert!(listed.contains(&4), "corrupt v4 is evidence, not garbage");
        assert!(listed.contains(&5));
        let (v, _) = reg.load_latest().unwrap();
        assert_eq!(v, 5);
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn concurrent_savers_claim_distinct_versions() {
        use std::sync::Arc as StdArc;
        let reg = StdArc::new(tmp_registry("race"));
        const THREADS: usize = 4;
        const SAVES: usize = 5;
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let reg = StdArc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                (0..SAVES)
                    .map(|s| reg.save(&toy_model((t * SAVES + s) as f64)).unwrap())
                    .collect::<Vec<u64>>()
            }));
        }
        let mut versions: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("saver"))
            .collect();
        versions.sort_unstable();
        let mut expected: Vec<u64> = (1..=(THREADS * SAVES) as u64).collect();
        expected.sort_unstable();
        assert_eq!(versions, expected, "every version written exactly once");
        for v in versions {
            reg.load(v)
                .unwrap_or_else(|e| panic!("v{v} unreadable: {e}"));
        }
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn open_sweeps_stale_tmp_files() {
        let dir = tmp_dir("sweep");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(".model-v7.json.tmp"), "half a model").unwrap();
        fs::write(dir.join("unrelated.txt"), "sidecar").unwrap();
        let reg = Registry::open(&dir).unwrap();
        assert!(!dir.join(".model-v7.json.tmp").exists(), "tmp swept");
        assert!(dir.join("unrelated.txt").exists(), "sidecars untouched");
        assert_eq!(reg.list().unwrap(), Vec::<u64>::new());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_fails_save_but_registry_stays_consistent() {
        let fs_seam = Arc::new(FaultyFs::new(FaultPlan::none(11).with_torn_write(1.0)));
        let dir = tmp_dir("torn-save");
        fs_seam.set_enabled(false);
        let reg = Registry::open_with(&dir, Arc::clone(&fs_seam) as Arc<dyn FileOps>).unwrap();
        reg.save(&toy_model(0.5)).unwrap();
        fs_seam.set_enabled(true);
        let err = reg.save(&toy_model(0.25)).unwrap_err();
        assert!(!err.is_transient(), "torn write is not retry-as-is: {err}");
        // The failed save left nothing behind and the old model answers.
        fs_seam.set_enabled(false);
        assert_eq!(reg.list().unwrap(), vec![1]);
        let (v, model) = reg.load_latest().unwrap();
        assert_eq!((v, model.loss), (1, 0.5));
        assert!(
            fs_seam
                .counters()
                .torn_writes
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1
        );
        // And the version number freed by the cleanup is reusable.
        assert_eq!(reg.save(&toy_model(0.125)).unwrap(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_faults_surface_as_retryable_then_heal() {
        let fs_seam = Arc::new(FaultyFs::new(
            FaultPlan::none(13)
                .with_transient_error(1.0)
                .with_max_faults(2),
        ));
        let dir = tmp_dir("transient");
        fs_seam.set_enabled(false);
        let reg = Registry::open_with(&dir, Arc::clone(&fs_seam) as Arc<dyn FileOps>).unwrap();
        reg.save(&toy_model(0.5)).unwrap();
        fs_seam.set_enabled(true);
        // Retry until the budget is spent: the typed transient flag is
        // exactly what a retry loop keys on.
        let mut attempts = 0;
        let loaded = loop {
            attempts += 1;
            match reg.load_latest() {
                Ok(got) => break got,
                Err(e) => assert!(e.is_transient(), "only transient faults injected: {e}"),
            }
            assert!(attempts < 10, "budget of 2 must heal quickly");
        };
        assert_eq!(loaded.0, 1);
        assert!(attempts > 1, "at least one injected failure observed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn frame_unframe_roundtrip_and_trailer_damage() {
        let payload = r#"{"k":1}"#;
        let framed = frame(payload);
        assert_eq!(unframe(&framed, "t").unwrap(), payload);
        // Any single-character damage to the trailer is caught.
        let no_newline = framed.trim_end().to_string();
        assert!(matches!(
            unframe(&no_newline, "t"),
            Err(ServeError::Corrupt { .. })
        ));
        let bad_hex = framed.replace(CHECKSUM_PREFIX, "#fnv1a:zz");
        assert!(unframe(&bad_hex, "t").is_err());
        let payload_tampered = framed.replacen("\"k\":1", "\"k\":2", 1);
        assert!(matches!(
            unframe(&payload_tampered, "t"),
            Err(ServeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn entry_names_parse_and_ignore_sidecars() {
        assert_eq!(parse_entry("model-v12.json"), Some((12, EntryKind::Model)));
        assert_eq!(parse_entry(".model-v3.json.tmp"), Some((3, EntryKind::Tmp)));
        assert_eq!(
            parse_entry("model-v8.json.quarantined"),
            Some((8, EntryKind::Quarantined))
        );
        for bogus in [
            "model-vX.json",
            "model-v1.json.bak",
            "notes.txt",
            ".hidden",
            "model-v1",
        ] {
            assert_eq!(parse_entry(bogus), None, "{bogus}");
        }
    }
}
