//! Versioned on-disk model registry.
//!
//! A registry is a directory of `model-v<N>.json` artifacts. Versions are
//! monotonically increasing: `save` assigns `max(existing) + 1`, so a
//! version number, once taken, always refers to the same artifact.
//! Corrupt artifacts surface as typed [`ServeError::Corrupt`] values with
//! the offending path — a half-written file can never be mistaken for a
//! model.

use crate::artifact::FittedModel;
use crate::error::ServeError;
use std::fs;
use std::path::{Path, PathBuf};

/// Filename prefix/suffix of artifact files.
const PREFIX: &str = "model-v";
const SUFFIX: &str = ".json";

/// A directory of versioned model artifacts.
#[derive(Debug, Clone)]
pub struct Registry {
    dir: PathBuf,
}

impl Registry {
    /// Open (creating if needed) a registry directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ServeError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        Ok(Registry { dir })
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, version: u64) -> PathBuf {
        self.dir.join(format!("{PREFIX}{version}{SUFFIX}"))
    }

    /// All versions present, ascending. Files that do not match the
    /// artifact naming scheme are ignored (the registry may share a
    /// directory with sidecar files).
    pub fn list(&self) -> Result<Vec<u64>, ServeError> {
        let mut versions = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&self.dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(v) = name
                .strip_prefix(PREFIX)
                .and_then(|rest| rest.strip_suffix(SUFFIX))
                .and_then(|v| v.parse::<u64>().ok())
            {
                versions.push(v);
            }
        }
        versions.sort_unstable();
        Ok(versions)
    }

    /// Persist a model under the next version number; returns it.
    ///
    /// The artifact is written to a temporary file first and renamed into
    /// place, so a crash mid-write leaves no `model-v*.json` that could
    /// parse as truncated garbage.
    pub fn save(&self, model: &FittedModel) -> Result<u64, ServeError> {
        let version = self.list()?.last().copied().unwrap_or(0) + 1;
        let path = self.path_of(version);
        let tmp = self.dir.join(format!(".{PREFIX}{version}{SUFFIX}.tmp"));
        fs::write(&tmp, model.to_json()).map_err(|e| io_err(&tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        Ok(version)
    }

    /// Load one version.
    pub fn load(&self, version: u64) -> Result<FittedModel, ServeError> {
        let path = self.path_of(version);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(ServeError::VersionNotFound { version })
            }
            Err(e) => return Err(io_err(&path, e)),
        };
        FittedModel::from_json(&text, &path.display().to_string())
    }

    /// Load the newest version, returning `(version, model)`.
    pub fn load_latest(&self) -> Result<(u64, FittedModel), ServeError> {
        let version = *self.list()?.last().ok_or(ServeError::EmptyRegistry)?;
        Ok((version, self.load(version)?))
    }
}

fn io_err(path: &Path, e: std::io::Error) -> ServeError {
    ServeError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anchors_curricula::cs2013;
    use anchors_factor::{NnmfModel, NnmfRecovery};
    use anchors_linalg::{Backend, Matrix};
    use anchors_materials::TagSpace;

    fn toy_model(loss: f64) -> FittedModel {
        let cs = cs2013();
        let space = TagSpace::from_tags(cs.leaf_items().into_iter().take(5));
        let model = NnmfModel {
            w: Matrix::from_fn(3, 2, |i, j| (i + j) as f64 * 0.5),
            h: Matrix::from_fn(2, 5, |i, j| (i * 5 + j) as f64 * 0.1),
            loss,
            iterations: 9,
            converged: true,
            winning_seed: 42,
            recovery: NnmfRecovery::default(),
        };
        FittedModel::new("toy", cs, &space, &model, Backend::Dense).expect("valid")
    }

    fn tmp_registry(tag: &str) -> Registry {
        let dir = std::env::temp_dir().join(format!(
            "anchors-serve-registry-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        Registry::open(dir).expect("open")
    }

    #[test]
    fn versions_are_monotonic_and_listable() {
        let reg = tmp_registry("mono");
        assert_eq!(reg.list().unwrap(), Vec::<u64>::new());
        assert!(matches!(reg.load_latest(), Err(ServeError::EmptyRegistry)));
        let v1 = reg.save(&toy_model(0.5)).unwrap();
        let v2 = reg.save(&toy_model(0.25)).unwrap();
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(reg.list().unwrap(), vec![1, 2]);
        let (latest, model) = reg.load_latest().unwrap();
        assert_eq!(latest, 2);
        assert_eq!(model.loss, 0.25);
        assert_eq!(reg.load(1).unwrap().loss, 0.5);
        assert!(matches!(
            reg.load(7),
            Err(ServeError::VersionNotFound { version: 7 })
        ));
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn corrupt_artifacts_are_detected_not_served() {
        let reg = tmp_registry("corrupt");
        let v = reg.save(&toy_model(0.5)).unwrap();
        // Truncate the artifact on disk.
        let path = reg.path_of(v);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        match reg.load(v) {
            Err(ServeError::Corrupt { source, .. }) => {
                assert!(source.contains("model-v1.json"), "{source}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // The next save still picks a fresh version above the corrupt one.
        let v2 = reg.save(&toy_model(0.1)).unwrap();
        assert_eq!(v2, 2);
        assert_eq!(reg.load(v2).unwrap().loss, 0.1);
        let _ = fs::remove_dir_all(reg.dir());
    }
}
