//! The artifact codec seam.
//!
//! [`Registry`](crate::registry::Registry) persists [`FittedModel`]s but
//! does not care how their bytes are laid out — that is a [`Codec`]'s
//! job. Two codecs exist:
//!
//! * [`JsonCodec`] — the original human-inspectable format: the
//!   [`FittedModel::to_json`] document framed with a `#fnv1a:<16-hex>`
//!   checksum trailer line. Best for debugging and small models.
//! * [`BinaryCodec`](crate::binary::BinaryCodec) — a versioned
//!   little-endian layout with an aligned header and raw `f64` factor
//!   sections, built for 100k-course artifacts where re-parsing a
//!   hundred megabytes of decimal floats on every reload is the
//!   bottleneck. See [`crate::binary`] for the byte layout.
//!
//! Both formats end in an FNV-1a-64 checksum over everything before it,
//! so torn writes and partial reads surface as typed
//! [`ServeError::ChecksumMismatch`] no matter which codec wrote the
//! file. [`ArtifactFormat`] names the two formats, maps them to file
//! extensions (`model-v<N>.json` / `model-v<N>.bin`), and picks the
//! registry's default from the `ANCHORS_ARTIFACT_FORMAT` environment
//! variable.

use crate::artifact::FittedModel;
use crate::binary::BinaryCodec;
use crate::error::ServeError;
use std::fmt;

/// Prefix of the checksum trailer line appended to every JSON artifact.
pub(crate) const CHECKSUM_PREFIX: &str = "#fnv1a:";

/// Environment variable selecting the registry's save/load-preference
/// format: `json` (default) or `bin`.
pub const FORMAT_ENV: &str = "ANCHORS_ARTIFACT_FORMAT";

/// FNV-1a-64 over raw bytes — same constants as
/// `Ontology::fingerprint`, kept dependency-free.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a-64 folded over 8-byte little-endian words (zero-padded tail),
/// with the byte length mixed in last so padding cannot alias a longer
/// payload. One multiply per 8 bytes instead of per byte, so verifying a
/// multi-megabyte factor section costs a fraction of a millisecond — the
/// binary codec's trailer uses this variant; the JSON trailer keeps the
/// byte-serial [`fnv1a_64`] for compatibility with existing artifacts.
pub fn fnv1a_64_words(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for w in &mut chunks {
        h ^= u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(PRIME);
    }
    h ^= bytes.len() as u64;
    h.wrapping_mul(PRIME)
}

/// The on-disk formats an artifact file can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArtifactFormat {
    /// Checksummed JSON (`.json`) — human-inspectable, bitwise `f64`
    /// round-trip through the decimal codec.
    #[default]
    Json,
    /// Versioned little-endian binary (`.bin`) — raw `f64` sections, no
    /// parse step, mmap-able.
    Bin,
}

impl ArtifactFormat {
    /// Both formats, JSON first (the historical default).
    pub const ALL: [ArtifactFormat; 2] = [ArtifactFormat::Json, ArtifactFormat::Bin];

    /// The file extension this format uses (without the dot).
    pub fn extension(self) -> &'static str {
        match self {
            ArtifactFormat::Json => "json",
            ArtifactFormat::Bin => "bin",
        }
    }

    /// The format a file extension (without the dot) denotes, if any.
    pub fn from_extension(ext: &str) -> Option<Self> {
        match ext {
            "json" => Some(ArtifactFormat::Json),
            "bin" => Some(ArtifactFormat::Bin),
            _ => None,
        }
    }

    /// Parse a format name as the `ANCHORS_ARTIFACT_FORMAT` variable
    /// spells it.
    pub fn parse(name: &str) -> Option<Self> {
        Self::from_extension(name.trim())
    }

    /// The format `ANCHORS_ARTIFACT_FORMAT` selects, defaulting to JSON.
    /// Unrecognized values fall back to the default rather than failing:
    /// a typo in an env var must not take down a server that has a
    /// perfectly good registry to serve from.
    pub fn from_env() -> Self {
        std::env::var(FORMAT_ENV)
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }

    /// The codec that reads and writes this format.
    pub fn codec(self) -> &'static dyn Codec {
        match self {
            ArtifactFormat::Json => &JsonCodec,
            ArtifactFormat::Bin => &BinaryCodec,
        }
    }

    /// The other format — the fallback order `Registry::load` probes.
    pub fn other(self) -> Self {
        match self {
            ArtifactFormat::Json => ArtifactFormat::Bin,
            ArtifactFormat::Bin => ArtifactFormat::Json,
        }
    }
}

impl fmt::Display for ArtifactFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.extension())
    }
}

/// One on-disk representation of a [`FittedModel`].
///
/// Implementations must be self-checking: `decode` and `verify` reject
/// any bytes that are not exactly what `encode` produced (truncation,
/// bit rot, tampering) with a typed corruption error — never a panic —
/// because the registry feeds them whatever the disk hands back.
pub trait Codec: fmt::Debug + Send + Sync {
    /// The format this codec reads and writes.
    fn format(&self) -> ArtifactFormat;

    /// Serialize a model to its complete on-disk byte sequence
    /// (checksum included).
    fn encode(&self, model: &FittedModel) -> Vec<u8>;

    /// Parse and fully validate on-disk bytes. `source` labels errors
    /// (file path or `"<memory>"`).
    fn decode(&self, bytes: &[u8], source: &str) -> Result<FittedModel, ServeError>;

    /// Cheap integrity check — the checksum, not a full parse. Used by
    /// retention GC to classify files as good without decoding factor
    /// sections.
    fn verify(&self, bytes: &[u8], source: &str) -> Result<(), ServeError>;
}

/// A model kind the [`Registry`](crate::registry::Registry) can
/// version: anything that knows how to lay itself out (and check
/// itself) in every [`ArtifactFormat`].
///
/// This is the seam that lets one registry implementation serve
/// multiple artifact kinds — [`FittedModel`] (`model-v<N>.*`) and
/// `TextModel` (`text-v<N>.*`) — with identical durability, checksum,
/// quarantine, fallback, and GC semantics. [`Artifact::STEM`]
/// namespaces the kinds inside a shared directory: two kinds never
/// collide on filenames, and each kind's version counter is its own.
///
/// The same self-checking contract as [`Codec`] applies: `decode` and
/// `verify` must reject any bytes `encode` did not produce with a typed
/// corruption error, never a panic.
pub trait Artifact: Sized + Send + Sync {
    /// Filename stem: artifacts live at `<STEM>-v<N>.<ext>`.
    const STEM: &'static str;

    /// Serialize to the complete on-disk byte sequence for `format`
    /// (checksum included).
    fn encode_as(&self, format: ArtifactFormat) -> Vec<u8>;

    /// Parse and fully validate on-disk bytes in `format`.
    fn decode_as(format: ArtifactFormat, bytes: &[u8], source: &str) -> Result<Self, ServeError>;

    /// Cheap integrity check — checksum only, no full parse.
    fn verify_as(format: ArtifactFormat, bytes: &[u8], source: &str) -> Result<(), ServeError>;
}

impl Artifact for FittedModel {
    const STEM: &'static str = "model";

    fn encode_as(&self, format: ArtifactFormat) -> Vec<u8> {
        format.codec().encode(self)
    }

    fn decode_as(format: ArtifactFormat, bytes: &[u8], source: &str) -> Result<Self, ServeError> {
        format.codec().decode(bytes, source)
    }

    fn verify_as(format: ArtifactFormat, bytes: &[u8], source: &str) -> Result<(), ServeError> {
        format.codec().verify(bytes, source)
    }
}

/// The checksummed-JSON codec: [`FittedModel::to_json`] plus a
/// `#fnv1a:<16-hex>` trailer line.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonCodec;

/// Wrap an artifact JSON payload with its checksum trailer. Public so
/// out-of-crate [`Artifact`] kinds (the text model, fold-in deltas) share
/// the exact framing the registry's recovery machinery expects.
pub fn frame(payload: &str) -> String {
    format!(
        "{payload}\n{CHECKSUM_PREFIX}{:016x}\n",
        fnv1a_64(payload.as_bytes())
    )
}

/// Split framed text back into its payload, verifying the trailer.
pub fn unframe<'a>(text: &'a str, source: &str) -> Result<&'a str, ServeError> {
    let corrupt = |detail: &str| ServeError::Corrupt {
        source: source.to_string(),
        detail: detail.to_string(),
    };
    let body = text
        .strip_suffix('\n')
        .ok_or_else(|| corrupt("missing checksum trailer (no trailing newline)"))?;
    let (payload, trailer) = body
        .rsplit_once('\n')
        .ok_or_else(|| corrupt("missing checksum trailer line"))?;
    let hex = trailer
        .strip_prefix(CHECKSUM_PREFIX)
        .ok_or_else(|| corrupt("final line is not a checksum trailer"))?;
    let expected = u64::from_str_radix(hex, 16)
        .map_err(|_| corrupt("checksum trailer is not 16 hex digits"))?;
    let found = fnv1a_64(payload.as_bytes());
    if found != expected {
        return Err(ServeError::ChecksumMismatch {
            source: source.to_string(),
            expected,
            found,
        });
    }
    Ok(payload)
}

/// Decode the UTF-8 layer of a JSON artifact, typing invalid bytes as
/// corruption (a partial read can end mid-codepoint).
fn as_text<'a>(bytes: &'a [u8], source: &str) -> Result<&'a str, ServeError> {
    std::str::from_utf8(bytes).map_err(|e| ServeError::Corrupt {
        source: source.to_string(),
        detail: format!("artifact is not valid UTF-8: {e}"),
    })
}

impl Codec for JsonCodec {
    fn format(&self) -> ArtifactFormat {
        ArtifactFormat::Json
    }

    fn encode(&self, model: &FittedModel) -> Vec<u8> {
        frame(&model.to_json()).into_bytes()
    }

    fn decode(&self, bytes: &[u8], source: &str) -> Result<FittedModel, ServeError> {
        let payload = unframe(as_text(bytes, source)?, source)?;
        FittedModel::from_json(payload, source)
    }

    fn verify(&self, bytes: &[u8], source: &str) -> Result<(), ServeError> {
        unframe(as_text(bytes, source)?, source).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_unframe_roundtrip_and_trailer_damage() {
        let payload = r#"{"k":1}"#;
        let framed = frame(payload);
        assert_eq!(unframe(&framed, "t").unwrap(), payload);
        // Any single-character damage to the trailer is caught.
        let no_newline = framed.trim_end().to_string();
        assert!(matches!(
            unframe(&no_newline, "t"),
            Err(ServeError::Corrupt { .. })
        ));
        let bad_hex = framed.replace(CHECKSUM_PREFIX, "#fnv1a:zz");
        assert!(unframe(&bad_hex, "t").is_err());
        let payload_tampered = framed.replacen("\"k\":1", "\"k\":2", 1);
        assert!(matches!(
            unframe(&payload_tampered, "t"),
            Err(ServeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn format_names_extensions_and_env() {
        assert_eq!(ArtifactFormat::Json.extension(), "json");
        assert_eq!(ArtifactFormat::Bin.extension(), "bin");
        assert_eq!(
            ArtifactFormat::from_extension("json"),
            Some(ArtifactFormat::Json)
        );
        assert_eq!(
            ArtifactFormat::from_extension("bin"),
            Some(ArtifactFormat::Bin)
        );
        assert_eq!(ArtifactFormat::from_extension("bak"), None);
        assert_eq!(ArtifactFormat::parse(" bin "), Some(ArtifactFormat::Bin));
        assert_eq!(ArtifactFormat::Json.other(), ArtifactFormat::Bin);
        assert_eq!(ArtifactFormat::Bin.other(), ArtifactFormat::Json);
        assert_eq!(format!("{}", ArtifactFormat::Bin), "bin");
        assert_eq!(ArtifactFormat::Json.codec().format(), ArtifactFormat::Json);
        assert_eq!(ArtifactFormat::Bin.codec().format(), ArtifactFormat::Bin);
    }

    #[test]
    fn json_codec_rejects_invalid_utf8() {
        let err = JsonCodec.decode(&[0xFF, 0xFE, 0x00], "t").unwrap_err();
        assert!(matches!(err, ServeError::Corrupt { .. }), "{err}");
        assert!(JsonCodec.verify(&[0xFF], "t").is_err());
    }
}
